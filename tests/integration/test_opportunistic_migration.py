"""The Section 4.2.2 optimisation: opportunistic migration copies."""

import dataclasses

import pytest

from repro import simulate
from repro.config import PopularityLayoutConfig, SimulationConfig
from repro.traces.synthetic import synthetic_storage_trace


@pytest.fixture(scope="module")
def trace():
    return synthetic_storage_trace(duration_ms=10.0, seed=5)


def opportunistic_config():
    return dataclasses.replace(
        SimulationConfig(),
        layout=PopularityLayoutConfig(opportunistic_copies=True))


class TestOpportunisticCopies:
    def test_same_migrations_less_energy(self, trace):
        standard = simulate(trace, technique="pl")
        opportunistic = simulate(trace, config=opportunistic_config(),
                                 technique="pl")
        assert opportunistic.migrations == standard.migrations
        assert (opportunistic.energy.migration
                <= standard.energy.migration + 1e-12)

    def test_never_worse_overall(self, trace):
        standard = simulate(trace, technique="dma-ta-pl", cp_limit=0.10)
        opportunistic = simulate(trace, config=opportunistic_config(),
                                 technique="dma-ta-pl", cp_limit=0.10)
        assert (opportunistic.energy_joules
                <= standard.energy_joules * 1.01)

    def test_layout_still_converges(self, trace):
        """Copies may stall for traffic, but the plan must still apply:
        the layout mapping changes immediately (translation table), so
        the alignment benefit shows regardless of copy pacing."""
        base = simulate(trace, technique="baseline")
        opportunistic = simulate(trace, config=opportunistic_config(),
                                 technique="dma-ta-pl", cp_limit=0.10)
        assert opportunistic.utilization_factor > base.utilization_factor

    def test_run_terminates_with_parked_copies(self, trace):
        """Parked copies at trace end must not hang the simulation."""
        result = simulate(trace, config=opportunistic_config(),
                          technique="pl")
        assert result.duration_cycles <= trace.duration_cycles * 1.5

    def test_energy_accounting_still_consistent(self, trace):
        result = simulate(trace, config=opportunistic_config(),
                          technique="dma-ta-pl", cp_limit=0.10)
        result.energy.validate()
        result.time.validate()
        assert result.time.serving_dma == pytest.approx(
            result.requests * 4.0, rel=1e-6)
