"""Cross-validation: the fluid engine against the per-request reference.

The fluid engine's closed-form accrual must agree with the per-request
precise engine on every energy bucket (within a small tolerance — the
fluid model smears request-granularity effects). This is the central
argument for trusting the fast engine's results.
"""

import pytest

from repro import simulate
from repro.traces.synthetic import synthetic_database_trace, synthetic_storage_trace

#: Relative tolerance on per-bucket energies. The fluid model is exact
#: for periodic streams; residual differences come from partial overlap
#: at stream boundaries.
TOLERANCE = 0.05


def compare(trace, config, technique, mu=None):
    fluid = simulate(trace, config=config, technique=technique, mu=mu)
    precise = simulate(trace, config=config, technique=technique, mu=mu,
                       engine="precise")
    return fluid, precise


def assert_buckets_close(fluid, precise, skip=("idle_threshold",)):
    for bucket, value in fluid.energy.as_dict().items():
        if bucket in skip:
            continue  # tiny absolute magnitude, noisy in relative terms
        other = precise.energy.as_dict()[bucket]
        scale = max(fluid.energy.total, 1e-15)
        assert value == pytest.approx(other, rel=TOLERANCE,
                                      abs=0.02 * scale), bucket


class TestBaselineEquivalence:
    def test_storage_trace(self, paper_config):
        trace = synthetic_storage_trace(duration_ms=2.0,
                                        transfers_per_ms=50, seed=3)
        fluid, precise = compare(trace, paper_config, "baseline")
        assert_buckets_close(fluid, precise)
        assert fluid.utilization_factor == pytest.approx(
            precise.utilization_factor, abs=0.02)
        assert fluid.requests == precise.requests

    def test_database_trace(self, paper_config):
        trace = synthetic_database_trace(duration_ms=1.0,
                                         transfers_per_ms=50, seed=4)
        fluid, precise = compare(trace, paper_config, "baseline")
        assert_buckets_close(fluid, precise)
        assert fluid.proc_accesses == precise.proc_accesses


class TestAlignmentEquivalence:
    def test_dma_ta(self, paper_config):
        trace = synthetic_storage_trace(duration_ms=2.0,
                                        transfers_per_ms=50, seed=3)
        fluid, precise = compare(trace, paper_config, "dma-ta", mu=100.0)
        assert_buckets_close(fluid, precise)
        assert fluid.utilization_factor == pytest.approx(
            precise.utilization_factor, abs=0.03)

    def test_savings_agree(self, paper_config):
        trace = synthetic_storage_trace(duration_ms=2.0,
                                        transfers_per_ms=100, seed=5)
        fb = simulate(trace, config=paper_config, technique="baseline")
        ft = simulate(trace, config=paper_config, technique="dma-ta",
                      mu=100.0)
        pb = simulate(trace, config=paper_config, technique="baseline",
                      engine="precise")
        pt = simulate(trace, config=paper_config, technique="dma-ta",
                      mu=100.0, engine="precise")
        assert ft.energy_savings_vs(fb) == pytest.approx(
            pt.energy_savings_vs(pb), abs=0.04)
