"""Technique-level behaviour: savings ordering, guarantees, PL effects."""

import pytest

from repro import simulate
from repro.config import SimulationConfig
from repro.traces.synthetic import synthetic_storage_trace


@pytest.fixture(scope="module")
def trace():
    return synthetic_storage_trace(duration_ms=10.0, transfers_per_ms=100,
                                   seed=7)


@pytest.fixture(scope="module")
def baseline(trace):
    return simulate(trace, technique="baseline")


class TestSavingsShape:
    def test_dma_ta_saves_energy(self, trace, baseline):
        ta = simulate(trace, technique="dma-ta", cp_limit=0.10)
        assert ta.energy_savings_vs(baseline) > 0.05

    def test_savings_grow_with_cp_limit(self, trace, baseline):
        """Figure 5's monotone trend (with a tolerance for noise)."""
        savings = [
            simulate(trace, technique="dma-ta",
                     cp_limit=cp).energy_savings_vs(baseline)
            for cp in (0.02, 0.10, 0.30)
        ]
        assert savings[0] < savings[1] <= savings[2] + 0.02

    def test_ta_improves_utilization(self, trace, baseline):
        ta = simulate(trace, technique="dma-ta", cp_limit=0.20)
        assert ta.utilization_factor > baseline.utilization_factor + 0.03

    def test_serving_energy_unchanged(self, trace, baseline):
        """Figure 6: serving energy is workload-determined, not policy-
        determined."""
        ta = simulate(trace, technique="dma-ta", cp_limit=0.10)
        assert ta.energy.serving_dma == pytest.approx(
            baseline.energy.serving_dma, rel=1e-6)

    def test_idle_dma_is_what_shrinks(self, trace, baseline):
        ta = simulate(trace, technique="dma-ta", cp_limit=0.20)
        assert ta.energy.idle_dma < baseline.energy.idle_dma


class TestGuarantee:
    @pytest.mark.parametrize("cp", [0.02, 0.10, 0.30])
    def test_never_violated(self, trace, cp):
        result = simulate(trace, technique="dma-ta", cp_limit=cp)
        assert not result.guarantee_violated

    @pytest.mark.parametrize("cp", [0.05, 0.20])
    def test_client_degradation_within_limit(self, trace, baseline, cp):
        result = simulate(trace, technique="dma-ta-pl", cp_limit=cp)
        assert result.client_degradation_vs(baseline) <= cp + 0.01

    def test_strict_mode_passes(self, trace):
        import dataclasses

        config = dataclasses.replace(SimulationConfig(),
                                     strict_guarantee=True)
        simulate(trace, config=config, technique="dma-ta", cp_limit=0.10)

    def test_mu_zero_behaves_like_baseline(self, trace, baseline):
        zero = simulate(trace, technique="dma-ta", mu=0.0)
        assert zero.energy_joules == pytest.approx(
            baseline.energy_joules, rel=0.01)
        assert zero.head_delay_cycles == pytest.approx(
            baseline.head_delay_cycles, rel=0.05, abs=1e5)


class TestPopularityLayout:
    def test_pl_migrates(self, trace):
        pl = simulate(trace, technique="pl")
        assert pl.migrations > 0
        assert pl.energy.migration > 0
        assert pl.table_flushes >= 1

    def test_tapl_beats_ta_on_utilization(self, trace):
        ta = simulate(trace, technique="dma-ta", cp_limit=0.10)
        tapl = simulate(trace, technique="dma-ta-pl", cp_limit=0.10)
        assert tapl.utilization_factor > ta.utilization_factor

    def test_two_groups_beat_six(self, trace, baseline):
        """Section 5.2: excessive grouping migrates itself into a loss."""
        two = simulate(trace, technique="dma-ta-pl", cp_limit=0.10)
        six = simulate(trace,
                       config=SimulationConfig().with_groups(6),
                       technique="dma-ta-pl", cp_limit=0.10)
        assert two.energy_savings_vs(baseline) >= \
               six.energy_savings_vs(baseline) - 0.01

    def test_baseline_has_no_migrations(self, baseline):
        assert baseline.migrations == 0
        assert baseline.energy.migration == 0.0
