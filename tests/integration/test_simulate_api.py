"""End-to-end behaviour of the public simulate() API."""

import pytest

from repro import simulate
from repro.errors import ConfigurationError
from repro.traces.records import DMATransfer
from repro.traces.trace import Trace


class TestSingleTransfer:
    """One 8-KB transfer: the Figure 2(a) micro-scenario."""

    @pytest.mark.parametrize("engine", ["fluid", "precise"])
    def test_one_third_utilization(self, single_transfer_trace,
                                   small_config, engine):
        result = simulate(single_transfer_trace, config=small_config,
                          technique="baseline", engine=engine)
        # Serve 4 of every ~12 cycles: uf ~ 1/3, idle_dma ~ 2x serving.
        assert result.utilization_factor == pytest.approx(1 / 3, abs=0.01)
        assert result.time.serving_dma == pytest.approx(4096.0, rel=0.01)
        assert result.time.idle_dma == pytest.approx(2 * 4096.0, rel=0.02)

    @pytest.mark.parametrize("engine", ["fluid", "precise"])
    def test_request_count(self, single_transfer_trace, small_config, engine):
        result = simulate(single_transfer_trace, config=small_config,
                          engine=engine)
        assert result.transfers == 1
        assert result.requests == 1024

    def test_serving_energy_exact(self, single_transfer_trace, small_config):
        result = simulate(single_transfer_trace, config=small_config)
        # 4096 cycles at 300 mW and 1600 MHz.
        expected = 0.3 * 4096 / 1.6e9
        assert result.energy.serving_dma == pytest.approx(expected, rel=1e-9)


class TestAlignment:
    """Three simultaneous transfers from three buses (Figure 3)."""

    def test_aligned_transfers_reach_full_utilization(self, aligned_trace,
                                                      small_config):
        result = simulate(aligned_trace, config=small_config,
                          technique="baseline")
        # Already aligned by construction: uf near 1 even in the baseline.
        assert result.utilization_factor > 0.95

    def test_nopm_reference(self, aligned_trace, small_config):
        result = simulate(aligned_trace, config=small_config,
                          technique="nopm")
        # Chips never sleep: zero transition and low-power energy.
        assert result.energy.transition == 0.0
        assert result.energy.low_power == 0.0
        assert result.wakes == 0


class TestClientAccounting:
    def test_responses_recorded(self, clients_trace, small_config):
        result = simulate(clients_trace, config=small_config)
        assert set(result.client_responses) == {0, 1}
        for response in result.client_responses.values():
            assert response > 10_000.0  # at least the base latency

    def test_technique_slows_clients_within_limit(self, clients_trace,
                                                  small_config):
        base = simulate(clients_trace, config=small_config)
        ta = simulate(clients_trace, config=small_config,
                      technique="dma-ta", cp_limit=0.10)
        degradation = ta.client_degradation_vs(base)
        assert degradation <= 0.10 + 1e-6


class TestProcessorAccesses:
    @pytest.mark.parametrize("engine", ["fluid", "precise"])
    def test_proc_served(self, proc_trace, small_config, engine):
        result = simulate(proc_trace, config=small_config, engine=engine)
        assert result.proc_accesses == 16
        # 16 cache lines x 32 cycles.
        assert result.time.serving_proc == pytest.approx(512.0, rel=0.01)


class TestValidation:
    def test_unknown_technique(self, single_transfer_trace):
        with pytest.raises(ConfigurationError):
            simulate(single_transfer_trace, technique="magic")

    def test_unknown_engine(self, single_transfer_trace):
        with pytest.raises(ConfigurationError):
            simulate(single_transfer_trace, engine="quantum")

    def test_mu_and_cp_limit_exclusive(self, clients_trace):
        with pytest.raises(ConfigurationError):
            simulate(clients_trace, technique="dma-ta", mu=1.0, cp_limit=0.1)

    def test_empty_trace(self, small_config):
        result = simulate(Trace(name="empty"), config=small_config)
        assert result.transfers == 0
        assert result.energy_joules == 0.0

    def test_page_wraparound(self, small_config):
        trace = Trace(name="big-page", records=[
            DMATransfer(time=0.0, page=10**9, size_bytes=8192)])
        result = simulate(trace, config=small_config)
        assert result.transfers == 1
