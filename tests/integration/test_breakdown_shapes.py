"""The paper's qualitative energy-breakdown claims (Figures 2b, 6, 7)."""

import pytest

from repro import simulate
from repro.traces.oltp import oltp_storage_trace
from repro.traces.synthetic import synthetic_database_trace, synthetic_storage_trace


@pytest.fixture(scope="module")
def storage_result():
    trace = synthetic_storage_trace(duration_ms=10.0, seed=2)
    return simulate(trace, technique="baseline")


class TestFigure2b:
    """Baseline breakdown: active-idle-DMA dominates and is ~2x serving."""

    def test_idle_dma_dominates(self, storage_result):
        fractions = storage_result.energy.fractions()
        assert fractions["idle_dma"] == max(fractions.values())

    def test_idle_dma_about_twice_serving(self, storage_result):
        """Direct consequence of the 3:1 bandwidth ratio (Figure 2a)."""
        e = storage_result.energy
        assert e.idle_dma / e.serving_dma == pytest.approx(2.0, rel=0.15)

    def test_idle_dma_share_in_paper_band(self, storage_result):
        """The paper reports 48-51% active-idle-DMA."""
        share = storage_result.energy.fractions()["idle_dma"]
        assert 0.40 <= share <= 0.55

    def test_threshold_waste_small(self, storage_result):
        """The paper reports only 3-4% idle-threshold waste; DMA traffic
        makes threshold effects second order."""
        share = storage_result.energy.fractions()["idle_threshold"]
        assert share < 0.05

    def test_baseline_uf_one_third(self, storage_result):
        """Section 5.3: 'without our DMA-aware techniques, the utilization
        factors are only around 0.33'."""
        assert storage_result.utilization_factor == pytest.approx(
            1 / 3, abs=0.04)


class TestFigure7:
    def test_uf_grows_with_cp_limit(self):
        trace = synthetic_storage_trace(duration_ms=10.0, seed=2)
        base = simulate(trace, technique="baseline")
        ufs = [base.utilization_factor]
        for cp in (0.10, 0.30):
            ufs.append(simulate(trace, technique="dma-ta-pl",
                                cp_limit=cp).utilization_factor)
        assert ufs[0] < ufs[1] <= ufs[2] + 0.02
        assert all(u <= 1.0 for u in ufs)


class TestDatabaseVsStorage:
    def test_db_baseline_uf_higher(self):
        """Processor accesses soak active-idle cycles (Section 5.2)."""
        st = simulate(synthetic_storage_trace(duration_ms=5.0, seed=2),
                      technique="baseline")
        db = simulate(synthetic_database_trace(duration_ms=5.0, seed=2),
                      technique="baseline")
        assert db.utilization_factor > st.utilization_factor

    def test_db_savings_lower_than_storage(self):
        st_trace = synthetic_storage_trace(duration_ms=10.0, seed=2)
        db_trace = synthetic_database_trace(duration_ms=10.0, seed=2)
        st_base = simulate(st_trace, technique="baseline")
        db_base = simulate(db_trace, technique="baseline")
        st = simulate(st_trace, technique="dma-ta-pl", cp_limit=0.10)
        db = simulate(db_trace, technique="dma-ta-pl", cp_limit=0.10)
        assert st.energy_savings_vs(st_base) > db.energy_savings_vs(db_base)


class TestOLTPStorage:
    def test_oltp_st_baseline_shape(self):
        trace = oltp_storage_trace(duration_ms=10.0)
        result = simulate(trace, technique="baseline")
        fractions = result.energy.fractions()
        assert fractions["idle_dma"] > fractions["serving_dma"]
        assert result.utilization_factor == pytest.approx(1 / 3, abs=0.08)
