"""Tier-1 gate: digest-enabled runs are BIT-identical to disabled ones,
and the divergence bisection localises faults to the exact epoch.

The digest recorder rides the same read-only event discipline as the
telemetry sampler (dedicated event kind, excluded from the precise
engine's progress horizon, cuts the vectorized kernel's batching
windows) — so the guarantee is exact float equality, not approximate
agreement. On top of that this file gates the differential machinery
itself: identical runs produce identical chains across engines and
across processes, and an injected observation skew at epoch N is
reported at exactly epoch N.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import simulate
from repro.obs.diff import (
    DigestConfig,
    DigestRecorder,
    SimRunSpec,
    diff_specs,
)
from repro.traces.synthetic import synthetic_storage_trace

TECHNIQUES = ("nopm", "baseline", "dma-ta", "pl", "dma-ta-pl")

#: One digest per DMA-TA epoch (the recorder's default period).
EPOCH_CYCLES = 2000.0


@pytest.fixture(scope="module")
def trace():
    return synthetic_storage_trace(duration_ms=1.0, transfers_per_ms=100,
                                   seed=51)


def run_pair(trace, config, technique, engine):
    mu = 2.0 if "dma-ta" in technique else None
    plain = simulate(trace, config=config, technique=technique,
                     engine=engine, mu=mu)
    recorder = DigestRecorder(DigestConfig(epoch_cycles=EPOCH_CYCLES))
    digested = simulate(trace, config=config, technique=technique,
                        engine=engine, mu=mu, digests=recorder)
    return plain, digested


def assert_bit_identical(plain, digested):
    assert plain.energy.as_dict() == digested.energy.as_dict()
    assert plain.time.as_dict() == digested.time.as_dict()
    assert plain.duration_cycles == digested.duration_cycles
    assert plain.requests == digested.requests
    assert plain.migrations == digested.migrations
    assert plain.head_delay_cycles == digested.head_delay_cycles
    assert plain.extra_service_cycles == digested.extra_service_cycles


@pytest.mark.parametrize("technique", TECHNIQUES)
class TestBitExactness:
    def test_fluid(self, trace, paper_config, technique):
        plain, digested = run_pair(trace, paper_config, technique, "fluid")
        assert_bit_identical(plain, digested)
        assert digested.digests.ticks > 100

    def test_precise(self, trace, paper_config, technique):
        plain, digested = run_pair(trace, paper_config, technique,
                                   "precise")
        assert_bit_identical(plain, digested)
        assert digested.digests.ticks > 100


class TestChainDeterminism:
    def test_same_run_same_chain(self, trace):
        spec = SimRunSpec(trace=trace, technique="dma-ta", mu=2.0)
        config = DigestConfig(epoch_cycles=EPOCH_CYCLES)
        tip_1 = spec.runner()(config).chain_tip
        tip_2 = spec.runner()(config).chain_tip
        assert tip_1 == tip_2

    def test_precise_matches_precise_scalar(self, trace):
        config = DigestConfig(epoch_cycles=EPOCH_CYCLES)
        vec = SimRunSpec(trace=trace, technique="dma-ta-pl", mu=2.0,
                         engine="precise").runner()(config)
        scalar = SimRunSpec(trace=trace, technique="dma-ta-pl", mu=2.0,
                            engine="precise-scalar").runner()(config)
        assert vec.ticks == scalar.ticks
        assert vec.chain_tip == scalar.chain_tip
        assert vec.rows == scalar.rows

    def test_chain_survives_process_boundary(self, tmp_path):
        """The digest chain is a function of the run alone — a fresh
        interpreter computes the same tip (no set-ordering or id()
        contamination)."""
        script = (
            "import json, sys\n"
            "from repro.obs.diff import DigestConfig, SimRunSpec\n"
            "from repro.traces.synthetic import synthetic_storage_trace\n"
            "trace = synthetic_storage_trace(duration_ms=0.5,\n"
            "                                transfers_per_ms=80, seed=9)\n"
            "spec = SimRunSpec(trace=trace, technique='dma-ta', mu=2.0)\n"
            "trail = spec.runner()(DigestConfig(epoch_cycles=2000.0))\n"
            "print(json.dumps({'tip': trail.chain_tip,\n"
            "                  'ticks': trail.ticks}))\n")
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p)
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        remote = json.loads(out.stdout)

        local_trace = synthetic_storage_trace(duration_ms=0.5,
                                              transfers_per_ms=80, seed=9)
        local = SimRunSpec(trace=local_trace, technique="dma-ta",
                           mu=2.0).runner()(
            DigestConfig(epoch_cycles=2000.0))
        assert remote["ticks"] == local.ticks
        assert remote["tip"] == local.chain_tip


class TestSkewLocalisation:
    @pytest.mark.parametrize("epoch", [0, 7, 100])
    def test_injected_skew_diverges_at_exactly_that_epoch(self, trace,
                                                          epoch):
        spec_a = SimRunSpec(trace=trace, technique="dma-ta", mu=2.0)
        spec_b = SimRunSpec(trace=trace, technique="dma-ta", mu=2.0,
                            inject_skew_epoch=epoch)
        report = diff_specs(spec_a, spec_b, epoch_cycles=EPOCH_CYCLES,
                            collect_causes=False)
        assert not report.identical
        assert report.epoch == epoch
        assert report.divergence is not None
        assert report.divergence.name == "degradation_cycles"

    def test_no_skew_is_identical(self, trace):
        spec = SimRunSpec(trace=trace, technique="dma-ta", mu=2.0)
        report = diff_specs(spec, spec, epoch_cycles=EPOCH_CYCLES,
                            collect_causes=False)
        assert report.identical
        assert report.summary_line().startswith("diff.identical:")


class TestCliExitCodes:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        from repro.cli import main

        path = tmp_path_factory.mktemp("diff") / "st.jsonl"
        assert main(["generate", "synthetic-st", "-o", str(path),
                     "--duration-ms", "1", "--seed", "51"]) == 0
        return path

    def test_identical_exits_zero(self, trace_file, capsys):
        from repro.cli import main

        code = main(["diff", str(trace_file), "--technique", "dma-ta"])
        out = capsys.readouterr().out
        assert code == 0
        assert "diff.identical:" in out

    def test_injected_skew_exits_two_naming_the_epoch(self, trace_file,
                                                      capsys):
        from repro.cli import main

        code = main(["diff", str(trace_file), "--technique", "dma-ta",
                     "--inject-epoch-skew", "7"])
        out = capsys.readouterr().out
        assert code == 2
        assert "diff.divergence: epoch=7 field=degradation_cycles" in out

    def test_missing_trace_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["diff", str(tmp_path / "nope.jsonl")])
        assert code == 1
