"""Integration: the fair bus-sharing mode and base-layout options."""

import dataclasses

import pytest

from repro import simulate
from repro.config import BusConfig, SimulationConfig
from repro.errors import ConfigurationError
from repro.traces.synthetic import synthetic_storage_trace


@pytest.fixture(scope="module")
def trace():
    return synthetic_storage_trace(duration_ms=5.0, transfers_per_ms=150,
                                   seed=13)


def with_sharing(sharing):
    return dataclasses.replace(SimulationConfig(),
                               buses=BusConfig(sharing=sharing))


class TestFairSharing:
    def test_runs_and_conserves_work(self, trace):
        result = simulate(trace, config=with_sharing("fair"),
                          technique="baseline")
        assert result.time.serving_dma == pytest.approx(
            result.requests * 4.0, rel=1e-6)
        result.energy.validate()

    def test_fair_stretches_transfers(self, trace):
        """Concurrent transfers on one bus slow each other under fair
        sharing, so chips spend longer active-idle than under FIFO."""
        fifo = simulate(trace, config=with_sharing("fifo"),
                        technique="baseline")
        fair = simulate(trace, config=with_sharing("fair"),
                        technique="baseline")
        assert fair.time.idle_dma > fifo.time.idle_dma
        assert fair.energy_joules > fifo.energy_joules

    def test_fair_mode_with_dma_ta(self, trace):
        result = simulate(trace, config=with_sharing("fair"),
                          technique="dma-ta", cp_limit=0.10)
        assert not result.guarantee_violated
        assert result.requests == 0 or result.time.serving_dma > 0


class TestBaseLayouts:
    @pytest.mark.parametrize("layout", ["random", "sequential",
                                        "interleaved"])
    def test_all_layouts_run(self, trace, layout):
        config = dataclasses.replace(SimulationConfig(),
                                     base_layout=layout)
        result = simulate(trace, config=config, technique="baseline")
        assert result.transfers == len(trace.transfers)
        result.energy.validate()

    def test_unknown_layout_rejected(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SimulationConfig(), base_layout="fancy")

    def test_layouts_change_placement_not_work(self, trace):
        results = {}
        for layout in ("random", "sequential"):
            config = dataclasses.replace(SimulationConfig(),
                                         base_layout=layout)
            results[layout] = simulate(trace, config=config,
                                       technique="baseline")
        assert (results["random"].time.serving_dma
                == pytest.approx(results["sequential"].time.serving_dma,
                                 rel=1e-9))

    def test_sequential_concentrates_small_working_sets(self, trace):
        """A sequential fill packs the (page-id dense) working set onto
        few chips, giving natural concurrency that a random spread
        lacks — visible as a higher baseline utilization factor."""
        seq = simulate(trace, config=dataclasses.replace(
            SimulationConfig(), base_layout="sequential"),
            technique="baseline")
        rnd = simulate(trace, config=dataclasses.replace(
            SimulationConfig(), base_layout="random"),
            technique="baseline")
        assert seq.utilization_factor >= rnd.utilization_factor - 0.02
