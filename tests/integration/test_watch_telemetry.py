"""End-to-end telemetry: migration waves on drift workloads, CUSUM
fault injection through the tracer pipeline, and the `repro watch` verb.

These are the issue's acceptance scenarios: a drift-diurnal zoo workload
must show its re-migration waves as distinct steps in the
``migration_waves`` series, and an injected mid-run degradation spike
must surface as a ``telemetry.anomaly`` event in the existing tracer
stream, not just in the sampler's own list.
"""

import numpy as np
import pytest

from repro import simulate
from repro.cli import main
from repro.config import (
    BusConfig,
    MemoryConfig,
    PopularityLayoutConfig,
    SimulationConfig,
)
from repro.obs.tracer import RingTracer
from repro.obs.telemetry import TelemetryConfig, TelemetrySampler
from repro.traces.io import write_trace
from repro.traces.synthetic import synthetic_storage_trace
from repro.traces.zoo import drift_diurnal_trace


@pytest.fixture
def drift_config():
    memory = MemoryConfig(num_chips=8, chip_bytes=1 << 20, page_bytes=8192)
    return SimulationConfig(
        memory=memory,
        buses=BusConfig(count=3),
        layout=PopularityLayoutConfig(interval_cycles=1_000_000.0),
    )


class TestMigrationWavesVisible:
    def test_drift_diurnal_waves_are_distinct_steps(self, drift_config):
        trace = drift_diurnal_trace(duration_ms=6.0, num_pages=1024,
                                    transfers_per_ms=200.0, phases=3,
                                    seed=11)
        sampler = TelemetrySampler(TelemetryConfig(sample_cycles=50_000.0))
        result = simulate(trace, config=drift_config,
                          technique="dma-ta-pl", cp_limit=0.10,
                          telemetry=sampler)
        assert result.migrations > 0
        ts, waves = sampler.series("migration_waves")
        # The wave counter is a nondecreasing step function whose final
        # value counts the distinct migration bursts the run performed.
        assert np.all(np.diff(waves) >= 0)
        assert waves[-1] >= 2, f"waves series topped out at {waves[-1]}"
        # Each wave is a *distinct* step: strictly positive jumps at
        # separate sample times, not one cumulative ramp.
        jumps = np.flatnonzero(np.diff(waves) > 0)
        assert len(jumps) >= 2
        assert ts[jumps[-1]] > ts[jumps[0]]
        # And the cumulative page-move series steps with it.
        _, migrations = sampler.series("migrations")
        assert migrations[-1] == result.migrations


class TestCusumFaultInjection:
    @pytest.mark.parametrize("engine", ["fluid", "precise"])
    def test_injected_spike_raises_anomaly_into_tracer(self, engine):
        trace = synthetic_storage_trace(duration_ms=1.0,
                                        transfers_per_ms=100, seed=51)
        tracer = RingTracer()
        sampler = TelemetrySampler(TelemetryConfig(
            sample_cycles=2000.0, inject_spike_cycles=500_000.0,
            inject_spike_at_frac=0.5))
        simulate(trace, technique="dma-ta", mu=2.0, engine=engine,
                 tracer=tracer, telemetry=sampler)
        spikes = [a for a in sampler.anomalies
                  if a.kind == "degradation-cusum"
                  and a.ts >= 0.5 * trace.duration_cycles]
        assert spikes, (
            f"CUSUM missed the injected spike; got {sampler.anomalies}")
        # The alarm also rode the existing tracer/audit pipeline.
        events = [e for e in tracer.events
                  if e.name == "telemetry.anomaly"]
        assert any(e.args["kind"] == "degradation-cusum"
                   and e.ts >= 0.5 * trace.duration_cycles
                   for e in events)

    def test_no_spike_no_late_alarms(self):
        # Control: the same run without injection stays quiet in the
        # second half (any onset alarms settle during warmup traffic).
        trace = synthetic_storage_trace(duration_ms=1.0,
                                        transfers_per_ms=100, seed=51)
        sampler = TelemetrySampler(TelemetryConfig(sample_cycles=2000.0))
        simulate(trace, technique="dma-ta", mu=2.0, telemetry=sampler)
        late = [a for a in sampler.anomalies
                if a.kind == "degradation-cusum"
                and a.ts >= 0.5 * trace.duration_cycles]
        assert late == []


class TestWatchVerb:
    @pytest.fixture
    def trace_file(self, tmp_path):
        trace = synthetic_storage_trace(duration_ms=0.5,
                                        transfers_per_ms=60, seed=3)
        path = tmp_path / "trace.jsonl"
        write_trace(trace, path)
        return path

    def test_watch_smoke(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "telemetry.jsonl"
        port_file = tmp_path / "port"
        code = main(["watch", str(trace_file), "--technique", "dma-ta",
                     "--mu", "2.0", "--no-browser", "--serve-port", "0",
                     "--linger-s", "0", "--port-file", str(port_file),
                     "--telemetry-out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "dashboard: http://127.0.0.1:" in out
        assert "telemetry:" in out and "samples" in out
        assert int(port_file.read_text().strip()) > 0
        assert out_path.exists()
        assert out_path.read_text().count('"telemetry.sample"') > 10

    def test_watch_spike_prints_greppable_anomaly(self, trace_file,
                                                  capsys):
        code = main(["watch", str(trace_file), "--technique", "dma-ta",
                     "--mu", "2.0", "--no-browser", "--serve-port", "0",
                     "--linger-s", "0", "--sample-cycles", "2000",
                     "--inject-spike", "500000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry.anomaly: degradation-cusum" in out

    def test_watch_validates_technique_args(self, trace_file, capsys):
        code = main(["watch", str(trace_file), "--technique", "dma-ta",
                     "--cp-limit", "0.1", "--mu", "5"])
        assert code == 2
        assert "error" in capsys.readouterr().err
