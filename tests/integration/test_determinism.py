"""Reproducibility: identical inputs must give identical outputs."""

import pytest

from repro import simulate
from repro.traces.oltp import oltp_storage_trace
from repro.traces.synthetic import synthetic_database_trace, synthetic_storage_trace


class TestSimulationDeterminism:
    @pytest.mark.parametrize("technique", ["baseline", "dma-ta",
                                           "dma-ta-pl"])
    def test_same_run_twice(self, technique):
        trace = synthetic_storage_trace(duration_ms=4.0, seed=33)
        a = simulate(trace, technique=technique, mu=50.0)
        b = simulate(trace, technique=technique, mu=50.0)
        assert a.energy.as_dict() == b.energy.as_dict()
        assert a.time.as_dict() == b.time.as_dict()
        assert a.client_responses == b.client_responses
        assert a.controller_stats == b.controller_stats

    def test_layout_seed_changes_results(self):
        trace = synthetic_storage_trace(duration_ms=4.0, seed=33)
        a = simulate(trace, technique="baseline", seed=0)
        b = simulate(trace, technique="baseline", seed=1)
        # Different page scattering -> different chip-level coincidences.
        assert a.chip_energy != b.chip_energy

    def test_precise_engine_deterministic(self):
        trace = synthetic_storage_trace(duration_ms=1.0, seed=34)
        a = simulate(trace, technique="baseline", engine="precise")
        b = simulate(trace, technique="baseline", engine="precise")
        assert a.energy.as_dict() == b.energy.as_dict()


class TestGeneratorDeterminism:
    def test_synthetic_generators(self):
        for maker in (synthetic_storage_trace, synthetic_database_trace):
            a = maker(duration_ms=2.0, seed=9)
            b = maker(duration_ms=2.0, seed=9)
            assert a.records == b.records
            assert a.clients == b.clients

    def test_oltp_generator(self):
        a = oltp_storage_trace(duration_ms=2.0, seed=9)
        b = oltp_storage_trace(duration_ms=2.0, seed=9)
        assert a.records == b.records

    def test_different_seeds_differ(self):
        a = synthetic_storage_trace(duration_ms=2.0, seed=1)
        b = synthetic_storage_trace(duration_ms=2.0, seed=2)
        assert a.records != b.records
