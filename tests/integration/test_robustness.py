"""Robustness: adversarial and degenerate inputs must not corrupt state."""

import pytest

from repro import simulate
from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.traces.records import DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

MB = 1 << 20


@pytest.fixture
def config():
    return SimulationConfig(
        memory=MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192),
        buses=BusConfig(count=3))


def run(records, config, technique="baseline", **kw):
    trace = Trace(name="hostile", records=list(records),
                  duration_cycles=300_000.0)
    return simulate(trace, config=config, technique=technique, **kw)


class TestDegenerateTraces:
    def test_all_records_at_time_zero(self, config):
        records = [DMATransfer(time=0.0, page=p, size_bytes=8192)
                   for p in range(10)]
        result = run(records, config)
        result.energy.validate()
        assert result.transfers == 10
        assert result.time.serving_dma == pytest.approx(10 * 4096.0,
                                                        rel=1e-6)

    def test_identical_records(self, config):
        records = [DMATransfer(time=500.0, page=3, size_bytes=8192)] * 5
        result = run(records, config)
        assert result.transfers == 5

    def test_single_byte_transfer(self, config):
        result = run([DMATransfer(time=0.0, page=0, size_bytes=1)], config)
        assert result.requests == 1
        assert result.time.serving_dma == pytest.approx(4.0)

    def test_huge_transfer(self, config):
        result = run([DMATransfer(time=0.0, page=0,
                                  size_bytes=1 << 22)], config)
        assert result.requests == (1 << 22) // 8

    def test_gigantic_processor_burst(self, config):
        result = run([ProcessorBurst(time=0.0, page=0, count=100_000)],
                     config)
        assert result.proc_accesses == 100_000
        assert result.time.serving_proc == pytest.approx(100_000 * 32.0)

    def test_record_beyond_declared_duration(self, config):
        trace = Trace(name="late", records=[
            DMATransfer(time=1e6, page=0, size_bytes=8192)],
            duration_cycles=10.0)
        result = simulate(trace, config=config)
        assert result.duration_cycles >= 1e6

    def test_records_dense_burst(self, config):
        """1000 transfers within 1k cycles: extreme bus queueing."""
        records = [DMATransfer(time=float(i), page=i % 50,
                               size_bytes=512) for i in range(1000)]
        result = run(records, config)
        assert result.transfers == 1000
        result.energy.validate()
        # Work conservation under saturation.
        assert result.time.serving_dma == pytest.approx(
            result.requests * 4.0, rel=1e-6)

    def test_dense_burst_under_dma_ta(self, config):
        records = [DMATransfer(time=float(i), page=i % 50,
                               size_bytes=512) for i in range(500)]
        result = run(records, config, technique="dma-ta", mu=50.0)
        assert result.transfers == 500
        assert not result.guarantee_violated

    def test_pl_with_single_page_workload(self, config):
        """Everything hot on one page: PL must not thrash."""
        records = [DMATransfer(time=2000.0 * i, page=7, size_bytes=8192)
                   for i in range(50)]
        result = run(records, config, technique="dma-ta-pl", mu=100.0)
        assert result.migrations <= 4  # at most one swap, once

    def test_chip_energy_reported(self, config):
        result = run([DMATransfer(time=0.0, page=0, size_bytes=8192)],
                     config)
        assert len(result.chip_energy) == 4
        assert sum(result.chip_energy) == pytest.approx(
            result.energy_joules, rel=1e-9)
        hottest = result.hottest_chips(1)[0]
        assert hottest[1] == max(result.chip_energy)
        assert 0 < result.energy_concentration(0.25) <= 1.0


class TestPlatformEdges:
    def test_single_bus(self):
        config = SimulationConfig(
            memory=MemoryConfig(num_chips=2, chip_bytes=MB,
                                page_bytes=8192),
            buses=BusConfig(count=1))
        records = [DMATransfer(time=0.0, page=0, size_bytes=8192, bus=0),
                   DMATransfer(time=100.0, page=1, size_bytes=8192, bus=0)]
        result = run(records, config, technique="dma-ta", mu=100.0)
        assert result.transfers == 2
        assert not result.guarantee_violated

    def test_single_chip(self):
        config = SimulationConfig(
            memory=MemoryConfig(num_chips=1, chip_bytes=MB,
                                page_bytes=8192))
        result = run([DMATransfer(time=0.0, page=0, size_bytes=8192)],
                     config)
        assert result.transfers == 1

    def test_many_buses_few_chips(self):
        config = SimulationConfig(
            memory=MemoryConfig(num_chips=2, chip_bytes=MB,
                                page_bytes=8192),
            buses=BusConfig(count=8))
        records = [DMATransfer(time=float(i * 10), page=i % 16,
                               size_bytes=8192) for i in range(20)]
        result = run(records, config)
        assert result.transfers == 20
        result.energy.validate()
