"""End-to-end fleet observability: byte-identical parallel sweeps, the
injected-stall recovery drill, and the live dashboard's HTTP surface.

These are the issue's acceptance scenarios: running a sweep with
``--jobs N`` under the fleet collector must not change a single result
byte relative to the serial path, an injected worker freeze must be
detected, attributed, recovered from (serial requeue) and flagged in the
merged trace, and ``repro sweep --watch`` must serve a dashboard a plain
HTTP client can read.
"""

import dataclasses
import json
import urllib.request

import pytest

from repro.analysis.sweep import sweep_cp_limit
from repro.cli import main
from repro.obs.diff import render_result_delta
from repro.obs.export import validate_chrome_trace
from repro.obs.fleet import FleetCollector, FleetConfig
from repro.obs.serve import FleetServer
from repro.traces.io import write_trace
from repro.traces.synthetic import synthetic_storage_trace

CP_LIMITS = [0.05, 0.20]


@pytest.fixture(scope="module")
def small_trace():
    return synthetic_storage_trace(duration_ms=0.5, transfers_per_ms=60,
                                   seed=9)


@pytest.fixture
def trace_file(tmp_path, small_trace):
    path = tmp_path / "st.jsonl"
    write_trace(small_trace, path)
    return str(path)


def points_as_dicts(points):
    return [dataclasses.asdict(p.result) for p in points if p.ok]


class TestFleetDeterminism:
    def test_observed_pool_matches_serial_bytes(self, small_trace):
        serial = sweep_cp_limit(small_trace, CP_LIMITS, ["dma-ta"],
                                max_workers=1)
        collector = FleetCollector(FleetConfig())
        try:
            fleet = sweep_cp_limit(small_trace, CP_LIMITS, ["dma-ta"],
                                   max_workers=2, fleet=collector)
            report = collector.report()
        finally:
            collector.close()
        assert all(p.ok for p in serial + fleet)
        # On failure, name the first disagreeing field per point rather
        # than dumping two full result lists.
        assert points_as_dicts(fleet) == points_as_dicts(serial), \
            render_result_delta(points_as_dicts(serial),
                                points_as_dicts(fleet),
                                label_a="serial", label_b="fleet")
        assert report.computed == len(CP_LIMITS) + 1  # + shared baseline
        assert report.failed == 0
        assert not report.stalls
        assert report.spans_merged > 0, "observed jobs must ship spans"


class TestStallRecoveryDrill:
    def test_injected_freeze_is_detected_and_recovered(
            self, trace_file, tmp_path, capsys):
        """The full drill through the real CLI: freeze one worker
        mid-job, watch the watchdog attribute it, requeue the job onto
        the serial path, and finish the sweep with every point ok."""
        trace_out = tmp_path / "fleet_trace.json"
        report_out = tmp_path / "fleet_report.json"
        code = main([
            "sweep", trace_file, "--technique", "dma-ta",
            "--cp-limits", "0.05,0.2", "--jobs", "2", "--no-cache",
            "--inject-stall", "cp=0.05:dma-ta", "--inject-stall-s", "4",
            "--stall-timeout", "1",
            "--fleet-trace-out", str(trace_out),
            "--fleet-report-out", str(report_out),
        ])
        out = capsys.readouterr().out
        assert code == 0, "the sweep must survive the frozen worker"
        # Detection + attribution: the greppable diagnosis names the job.
        assert "fleet.stall: job cp=0.05:dma-ta" in out
        assert "requeueing onto the serial path" in out
        # Recovery is visible in the report JSON...
        report = json.loads(report_out.read_text())
        assert report["requeued"] >= 1
        assert report["failed"] == 0
        assert len(report["stalls"]) == 1
        assert report["stalls"][0]["tag"] == "cp=0.05:dma-ta"
        # ...and the merged trace flags the stalled span.
        trace = json.loads(trace_out.read_text())
        assert validate_chrome_trace(trace) == []
        names = [e["name"] for e in trace["traceEvents"]]
        assert "STALLED cp=0.05:dma-ta" in names
        assert "fleet.stall" in names

    def test_clean_parallel_sweep_reports_no_stalls(
            self, trace_file, tmp_path, capsys):
        report_out = tmp_path / "fleet_report.json"
        code = main([
            "sweep", trace_file, "--technique", "dma-ta",
            "--cp-limits", "0.05,0.2", "--jobs", "2", "--no-cache",
            "--fleet-report-out", str(report_out),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet.stall" not in out
        report = json.loads(report_out.read_text())
        assert report["computed"] == len(CP_LIMITS) + 1
        assert report["stalls"] == []
        assert report["requeued"] == 0


class TestFleetServerSmoke:
    def http_get(self, url: str) -> str:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            assert response.status == 200
            return response.read().decode("utf-8")

    def test_dashboard_endpoints_serve_live_state(self):
        collector = FleetCollector(FleetConfig())
        server = FleetServer(collector, port=0, title="smoke-sweep")
        server.start()
        try:
            from repro.config import (BusConfig, MemoryConfig,
                                      SimulationConfig)
            from repro.exec.jobs import SimJob
            from repro.traces.records import DMATransfer
            from repro.traces.trace import Trace

            trace = Trace(
                name="t",
                records=[DMATransfer(time=1.0, page=0, size_bytes=8192)],
                duration_cycles=1000.0)
            config = SimulationConfig(
                memory=MemoryConfig(num_chips=4, chip_bytes=1 << 20,
                                    page_bytes=8192),
                buses=BusConfig(count=3))
            job = SimJob(trace, "baseline", config=config, tag="probe")
            collector.expect(1)
            collector.note_submitted(job.key(), job)
            collector.handle({"kind": "job.started", "worker": 99,
                              "key": job.key(), "tag": "probe",
                              "technique": "baseline", "mono": 0.0})

            page = self.http_get(server.url)
            assert "smoke-sweep" in page
            panels = self.http_get(server.url + "/panels")
            assert "probe" in panels
            snapshot = json.loads(self.http_get(server.url + "/fleet.json"))
            assert snapshot["total"] == 1
            assert snapshot["running"] == 1
            assert snapshot["workers"][0]["pid"] == 99
        finally:
            server.stop()
            collector.close()

    def test_cli_watch_writes_port_file_headless(self, trace_file,
                                                 tmp_path):
        port_file = tmp_path / "port"
        code = main([
            "sweep", trace_file, "--technique", "dma-ta",
            "--cp-limits", "0.05", "--jobs", "2", "--no-cache",
            "--watch", "--serve-port", "0", "--no-browser",
            "--linger-s", "0", "--port-file", str(port_file),
        ])
        assert code == 0
        assert int(port_file.read_text().strip()) > 0
