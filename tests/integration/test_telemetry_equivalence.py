"""Tier-1 gate: telemetry-enabled runs are BIT-identical to disabled ones.

The sampler is strictly read-only — it never splits a chip's energy
accrual (``touch``/``advance``), the precise engine excludes telemetry
events from its end-of-run horizon, and the vectorized kernel cuts its
batching windows at sample boundaries. That makes the guarantee exact
equality on every float, not approximate agreement — the same bar the
tracer and auditor meet. Any regression here means the observability
layer started perturbing the physics.
"""

import pytest

from repro import simulate
from repro.obs.diff import render_result_delta
from repro.obs.telemetry import TelemetryConfig, TelemetrySampler
from repro.traces.synthetic import synthetic_storage_trace

TECHNIQUES = ("nopm", "baseline", "dma-ta", "pl", "dma-ta-pl")


@pytest.fixture(scope="module")
def trace():
    return synthetic_storage_trace(duration_ms=1.0, transfers_per_ms=100,
                                   seed=51)


def run_pair(trace, config, technique, engine):
    mu = 2.0 if "dma-ta" in technique else None
    plain = simulate(trace, config=config, technique=technique,
                     engine=engine, mu=mu)
    sampler = TelemetrySampler(TelemetryConfig(sample_cycles=2000.0))
    telemetered = simulate(trace, config=config, technique=technique,
                           engine=engine, mu=mu, telemetry=sampler)
    return plain, telemetered, sampler


def assert_bit_identical(plain, telemetered):
    # On failure, name the disagreeing bucket instead of dumping two
    # dicts (bisect further with `repro diff`).
    assert plain.energy.as_dict() == telemetered.energy.as_dict(), \
        render_result_delta(plain.energy.as_dict(),
                            telemetered.energy.as_dict(),
                            label_a="plain", label_b="telemetered")
    assert plain.time.as_dict() == telemetered.time.as_dict(), \
        render_result_delta(plain.time.as_dict(),
                            telemetered.time.as_dict(),
                            label_a="plain", label_b="telemetered")
    assert plain.duration_cycles == telemetered.duration_cycles
    assert plain.requests == telemetered.requests
    assert plain.migrations == telemetered.migrations
    assert plain.head_delay_cycles == telemetered.head_delay_cycles
    assert plain.extra_service_cycles == telemetered.extra_service_cycles


@pytest.mark.parametrize("technique", TECHNIQUES)
class TestBitExactness:
    def test_fluid(self, trace, paper_config, technique):
        plain, telemetered, sampler = run_pair(trace, paper_config,
                                               technique, "fluid")
        assert_bit_identical(plain, telemetered)
        assert sampler.samples_captured > 100

    def test_precise(self, trace, paper_config, technique):
        plain, telemetered, sampler = run_pair(trace, paper_config,
                                               technique, "precise")
        assert_bit_identical(plain, telemetered)
        assert sampler.samples_captured > 100


class TestVectorizedKernel:
    def test_scalar_stepping_agrees_under_telemetry(self, trace,
                                                    paper_config):
        """Telemetry horizon cuts must not desynchronize the two
        precise stepping strategies."""
        _, vectorized, _ = run_pair(trace, paper_config, "dma-ta-pl",
                                    "precise")
        _, scalar, _ = run_pair(trace, paper_config, "dma-ta-pl",
                                "precise-scalar")
        assert vectorized.energy.as_dict() == scalar.energy.as_dict()
        assert vectorized.duration_cycles == scalar.duration_cycles


class TestSamplerSeesTheRun:
    def test_columns_populated_on_both_engines(self, trace, paper_config):
        for engine in ("fluid", "precise"):
            _, _, sampler = run_pair(trace, paper_config, "dma-ta-pl",
                                     engine)
            ts, requests = sampler.series("requests")
            assert requests[-1] > 0
            assert ts[-1] > 0
            _, power = sampler.series("power_w")
            assert power.max() > 0
