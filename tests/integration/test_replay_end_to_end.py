"""End-to-end: block-trace replay through the CLI, and drift → PL
re-migration.

The first half drives ``repro replay`` exactly as the acceptance
criterion does — committed MSR fixture, ``dma-ta-pl``, strict auditor —
with ``--time-compression`` squeezing the fixture's ~2 s of block-trace
time into a few simulated milliseconds so the test stays fast. The
second half pins the zoo's drift contract: a diurnal popularity shift
must force the popularity layout to migrate again after its initial
adaptation.
"""

import pytest

from repro.cli import main
from repro.config import (
    BusConfig,
    MemoryConfig,
    PopularityLayoutConfig,
    SimulationConfig,
)
from repro.obs import RingTracer
from repro.sim.run import simulate
from repro.traces.io import read_trace
from repro.traces.zoo import drift_diurnal_trace, flash_crowd_trace

from tests.unit.test_replay_fixtures import FIXTURES

MSR = str(FIXTURES / "msr_sample.csv")
CLOUDPHYSICS = str(FIXTURES / "cloudphysics_sample.csv")

# ~2 s of trace time -> ~4 ms simulated.
FAST = ["--time-compression", "500"]


class TestReplayCLI:
    def test_acceptance_run_passes_strict_audit(self, capsys):
        code = main(["replay", MSR, "--technique", "dma-ta-pl", *FAST])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "100 block I/Os" in out
        assert "audit" in out.lower()

    def test_cloudphysics_dialect_runs(self, capsys):
        code = main(["replay", CLOUDPHYSICS, "--dialect", "cloudphysics",
                     "--technique", "dma-ta", *FAST])
        assert code == 0, capsys.readouterr().out

    def test_output_trace_is_readable_and_replayable(self, tmp_path,
                                                     capsys):
        out_path = tmp_path / "replayed.jsonl"
        code = main(["replay", MSR, *FAST, "-o", str(out_path)])
        assert code == 0
        trace = read_trace(out_path)
        assert trace.metadata["block_ios"] == 100
        assert len(trace.transfers) == 266
        result = simulate(trace, technique="baseline")
        assert result.energy.total > 0

    def test_window_and_page_layout_flags(self, capsys):
        code = main(["replay", MSR, *FAST, "--window", "0:1.0",
                     "--page-layout", "hash", "--num-pages", "4096"])
        out = capsys.readouterr().out
        assert code == 0
        assert "block I/Os" in out

    def test_zoo_names_reach_generate_and_simulate(self, tmp_path,
                                                   capsys):
        # Zoo families are first-class workload names everywhere
        # workloads are named — here, `repro generate` + `simulate`.
        trace_path = tmp_path / "kv.jsonl"
        code = main(["generate", "kv-store", "--duration-ms", "2",
                     "-o", str(trace_path)])
        assert code == 0, capsys.readouterr().out
        trace = read_trace(trace_path)
        assert trace.metadata["family"] == "kv-store"
        code = main(["simulate", str(trace_path),
                     "--technique", "dma-ta", "--cp-limit", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dma-ta" in out


def migration_waves(trace, config):
    tracer = RingTracer()
    simulate(trace, config=config, technique="dma-ta-pl", cp_limit=0.10,
             tracer=tracer)
    return sorted({e.ts for e in tracer.events
                   if e.name == "pl.migration"})


@pytest.fixture
def drift_config():
    # 8 chips x 1 MB (1024 pages), PL interval well inside one drift
    # phase so the planner gets several looks at each popularity regime.
    memory = MemoryConfig(num_chips=8, chip_bytes=1 << 20, page_bytes=8192)
    return SimulationConfig(
        memory=memory,
        buses=BusConfig(count=3),
        layout=PopularityLayoutConfig(interval_cycles=1_000_000.0),
    )


class TestDriftForcesReMigration:
    def test_diurnal_drift_triggers_re_migration(self, drift_config):
        trace = drift_diurnal_trace(duration_ms=6.0, num_pages=1024,
                                    transfers_per_ms=200.0, phases=3,
                                    seed=11)
        waves = migration_waves(trace, drift_config)
        assert len(waves) >= 2, (
            f"diurnal drift produced no re-migration: waves={waves}")
        # Re-migrations land after the first phase boundary, i.e. the
        # planner is chasing the drift, not just settling in.
        phase_cycles = trace.duration_cycles / 3
        assert any(ts > phase_cycles for ts in waves)

    def test_flash_crowd_triggers_re_migration(self, drift_config):
        trace = flash_crowd_trace(duration_ms=6.0, num_pages=1024,
                                  base_transfers_per_ms=120.0,
                                  crowd_transfers_per_ms=600.0,
                                  crowd_pages=32, seed=11)
        waves = migration_waves(trace, drift_config)
        assert len(waves) >= 2
        crowd_start = 0.5 * trace.duration_cycles
        assert any(ts >= crowd_start for ts in waves), (
            "no migration wave after the crowd arrived")

    def test_drift_migrates_more_pages_than_stationary(self, drift_config):
        # Control: the same geometry under a stationary popularity
        # moves strictly fewer pages than under drift — the drift
        # scenarios are what forces wholesale re-migration.
        from repro.traces.zoo import kv_store_trace
        kwargs = dict(duration_ms=6.0, num_pages=1024, seed=11)
        stationary = simulate(
            kv_store_trace(requests_per_ms=200.0, **kwargs),
            config=drift_config, technique="dma-ta-pl", cp_limit=0.10)
        drifting = simulate(
            drift_diurnal_trace(transfers_per_ms=200.0, phases=3,
                                **kwargs),
            config=drift_config, technique="dma-ta-pl", cp_limit=0.10)
        assert drifting.migrations > stationary.migrations
