"""Property tests for the max-min fair allocator."""

from hypothesis import given, strategies as st

from repro.io.dma import water_fill

demands_strategy = st.lists(
    st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
    min_size=0, max_size=12)
capacity_strategy = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)


@given(demands_strategy, capacity_strategy)
def test_grants_never_exceed_demand(demands, capacity):
    grants = water_fill(demands, capacity)
    for grant, demand in zip(grants, demands):
        assert grant <= demand + 1e-9


@given(demands_strategy, capacity_strategy)
def test_total_never_exceeds_capacity(demands, capacity):
    grants = water_fill(demands, capacity)
    assert sum(grants) <= max(capacity, 0.0) + 1e-9


@given(demands_strategy, capacity_strategy)
def test_work_conserving(demands, capacity):
    """Either all demand is met or all capacity is used."""
    grants = water_fill(demands, capacity)
    total_demand = sum(demands)
    if capacity > 0 and demands:
        assert (sum(grants) >= min(total_demand, capacity) - 1e-9)


@given(demands_strategy, capacity_strategy)
def test_grants_non_negative(demands, capacity):
    assert all(g >= 0.0 for g in water_fill(demands, capacity))


@given(demands_strategy, capacity_strategy)
def test_max_min_fairness(demands, capacity):
    """No grant can be raised without lowering a smaller-or-equal one:
    every unsatisfied stream gets at least as much as any other grant."""
    grants = water_fill(demands, capacity)
    unsatisfied = [g for g, d in zip(grants, demands) if g < d - 1e-9]
    if unsatisfied:
        floor = min(unsatisfied)
        assert all(g <= floor + 1e-9 for g in grants)


@given(st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=1,
                max_size=8), capacity_strategy)
def test_permutation_invariant(demands, capacity):
    """Reordering the streams must not change anyone's grant."""
    grants = water_fill(demands, capacity)
    reversed_grants = water_fill(list(reversed(demands)), capacity)
    assert all(abs(a - b) < 1e-9
               for a, b in zip(grants, reversed(reversed_grants)))
