"""Property tests on whole simulations over randomly generated traces.

These pin the global invariants of the model: energy conservation across
buckets, exact serving-energy accounting, bounded utilization, and the
DMA-TA guarantee.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import simulate
from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.traces.records import DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

MB = 1 << 20

CONFIG = SimulationConfig(
    memory=MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192),
    buses=BusConfig(count=3),
)

transfer_strategy = st.builds(
    DMATransfer,
    time=st.floats(min_value=0.0, max_value=200_000.0),
    page=st.integers(min_value=0, max_value=511),
    size_bytes=st.sampled_from([512, 4096, 8192]),
    source=st.sampled_from(["network", "disk"]),
    is_write=st.booleans(),
)

burst_strategy = st.builds(
    ProcessorBurst,
    time=st.floats(min_value=0.0, max_value=200_000.0),
    page=st.integers(min_value=0, max_value=511),
    count=st.integers(min_value=1, max_value=64),
)

record_lists = st.lists(st.one_of(transfer_strategy, burst_strategy),
                        min_size=1, max_size=25)


def run(records, technique="baseline", mu=None):
    trace = Trace(name="prop", records=list(records),
                  duration_cycles=300_000.0)
    return simulate(trace, config=CONFIG, technique=technique, mu=mu)


@given(record_lists)
@settings(max_examples=40, deadline=None)
def test_energy_buckets_non_negative_and_consistent(records):
    result = run(records)
    result.energy.validate()
    result.time.validate()
    assert result.energy_joules > 0


@given(record_lists)
@settings(max_examples=40, deadline=None)
def test_serving_energy_exactly_matches_request_count(records):
    """Every DMA-memory request is served for exactly 4 cycles at 300 mW,
    and every processor access for 32 cycles — no more, no less."""
    result = run(records)
    expected_dma = result.requests * 4.0
    expected_proc = result.proc_accesses * 32.0
    assert result.time.serving_dma == pytest.approx(expected_dma, rel=1e-6)
    assert result.time.serving_proc == pytest.approx(expected_proc, rel=1e-6)


@given(record_lists)
@settings(max_examples=40, deadline=None)
def test_utilization_factor_in_range(records):
    result = run(records)
    assert 0.0 <= result.utilization_factor <= 1.0 + 1e-9


@given(record_lists)
@settings(max_examples=25, deadline=None)
def test_dma_ta_serves_everything_too(records):
    """Delaying transfers must never lose work."""
    base = run(records)
    aligned = run(records, technique="dma-ta", mu=50.0)
    assert aligned.requests == base.requests
    assert aligned.time.serving_dma == pytest.approx(
        base.time.serving_dma, rel=1e-6)


@given(record_lists, st.floats(min_value=1.0, max_value=500.0))
@settings(max_examples=25, deadline=None)
def test_guarantee_never_violated(records, mu):
    result = run(records, technique="dma-ta", mu=mu)
    assert not result.guarantee_violated
    assert result.avg_extra_service_cycles <= mu * 4.0 * (1 + 1e-6) + 1e-9


@given(record_lists)
@settings(max_examples=20, deadline=None)
def test_deterministic(records):
    a = run(records)
    b = run(records)
    assert a.energy_joules == b.energy_joules
    assert a.time.as_dict() == b.time.as_dict()
