"""Property tests for the fluid chip's accrual invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.energy.policies import default_dynamic_policy
from repro.energy.rdram import rdram_1600_model
from repro.memory.chip import ChipRates, FluidChip

MODEL = rdram_1600_model()
POLICY = default_dynamic_policy(MODEL)

times_strategy = st.lists(
    st.floats(min_value=0.1, max_value=100_000.0, allow_nan=False),
    min_size=1, max_size=20)


@given(times_strategy)
@settings(max_examples=60)
def test_piecewise_advance_equals_single_advance(deltas):
    """Accrual must not depend on how the timeline is chopped up."""
    times = []
    t = 0.0
    for delta in deltas:
        t += delta
        times.append(t)
    whole = FluidChip(0, MODEL, POLICY, start_asleep=False)
    whole.advance(times[-1])
    pieces = FluidChip(0, MODEL, POLICY, start_asleep=False)
    for moment in times:
        pieces.advance(moment)
    assert pieces.energy.total == pytest.approx(whole.energy.total,
                                                rel=1e-9, abs=1e-15)
    assert pieces.time.total == pytest.approx(whole.time.total, rel=1e-9)


@given(times_strategy)
@settings(max_examples=60)
def test_time_buckets_cover_elapsed_time(deltas):
    chip = FluidChip(0, MODEL, POLICY, start_asleep=False)
    t = 0.0
    for delta in deltas:
        t += delta
        chip.advance(t)
    assert chip.time.total == pytest.approx(t, rel=1e-9)


@given(st.floats(min_value=1.0, max_value=1e6))
@settings(max_examples=40)
def test_energy_bounded_by_active_power(duration):
    """No state draws more than ACTIVE power, so total energy is bounded
    by P_active * t (plus transition overshoot, which is also below
    active power in Table 1)."""
    chip = FluidChip(0, MODEL, POLICY, start_asleep=False)
    chip.advance(duration)
    bound = MODEL.active_power * duration / MODEL.frequency_hz
    assert chip.energy.total <= bound * (1 + 1e-9)


@given(st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=1.0, max_value=1e5))
@settings(max_examples=60)
def test_busy_accrual_conserves_time(dma, proc, duration):
    if dma + proc > 1.0:
        return
    chip = FluidChip(0, MODEL, POLICY, start_asleep=False)
    chip.set_busy(0.0, has_dma_stream=dma > 0,
                  rates=ChipRates(dma=dma, proc=proc))
    chip.advance(duration)
    assert chip.time.total == pytest.approx(duration, rel=1e-9)
    assert chip.time.serving_dma == pytest.approx(duration * dma, rel=1e-9)


@given(st.floats(min_value=0.0, max_value=2e6))
@settings(max_examples=60)
def test_wake_is_idempotent_and_monotone(moment):
    chip = FluidChip(0, MODEL, POLICY)
    chip.advance(moment)
    first = chip.wake(moment)
    assert first >= moment
    # A second wake during or at the end of the window is free.
    again = chip.wake(first)
    assert again == pytest.approx(first)
    assert chip.wake_count <= 1
