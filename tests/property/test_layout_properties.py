"""Property tests for layouts, migration, and the popularity machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PopularityLayoutConfig
from repro.core.layout import PopularityGrouper, hot_group_sizes
from repro.core.migration import MigrationPlanner
from repro.core.popularity import PopularityTracker
from repro.memory.address import MutableLayout, RandomLayout

NUM_CHIPS, PAGES_PER_CHIP = 4, 16
TOTAL = NUM_CHIPS * PAGES_PER_CHIP


counts_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=TOTAL - 1),
    st.integers(min_value=1, max_value=200),
    min_size=0, max_size=30)


@given(st.integers(min_value=0, max_value=64),
       st.integers(min_value=1, max_value=6))
def test_hot_group_sizes_partition(n_hot, groups):
    sizes = hot_group_sizes(n_hot, groups)
    assert sum(sizes) == n_hot
    assert all(s > 0 for s in sizes)


@given(counts_strategy)
@settings(max_examples=50)
def test_plan_is_a_partition(counts):
    cfg = PopularityLayoutConfig(num_groups=2, min_hot_references=1)
    grouper = PopularityGrouper(NUM_CHIPS, PAGES_PER_CHIP, cfg)
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    plan = grouper.build_plan(ranked)
    # Chips partition exactly into the groups.
    all_chips = sorted(c for g in plan.groups for c in g.chips)
    assert all_chips == list(range(NUM_CHIPS))
    # Every tracked page has exactly one group.
    seen = set()
    for group in plan.groups:
        for page in group.pages:
            assert page not in seen
            seen.add(page)


@given(counts_strategy, st.integers(min_value=0, max_value=99))
@settings(max_examples=50, deadline=None)
def test_migration_preserves_occupancy_and_placement(counts, seed):
    cfg = PopularityLayoutConfig(num_groups=2, min_hot_references=1)
    grouper = PopularityGrouper(NUM_CHIPS, PAGES_PER_CHIP, cfg)
    planner = MigrationPlanner(cfg)
    layout = MutableLayout(RandomLayout(NUM_CHIPS, PAGES_PER_CHIP, seed=seed))
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    plan = grouper.build_plan(ranked)
    migration = planner.plan_and_apply(plan, layout)
    # Occupancy is conserved (swaps) and within capacity.
    for chip in range(NUM_CHIPS):
        assert 0 <= layout.occupancy(chip) <= PAGES_PER_CHIP
    assert sum(layout.occupancy(c) for c in range(NUM_CHIPS)) == TOTAL
    # Every hot page ended up on a hot chip.
    hot_chips = plan.hot_chips
    for group in plan.groups:
        if group.is_cold:
            continue
        for page in group.pages:
            assert layout.chip_of(page) in hot_chips


@given(counts_strategy, st.integers(min_value=0, max_value=99))
@settings(max_examples=30, deadline=None)
def test_migration_is_idempotent(counts, seed):
    """Applying the same plan twice must do nothing the second time."""
    cfg = PopularityLayoutConfig(num_groups=2, min_hot_references=1)
    grouper = PopularityGrouper(NUM_CHIPS, PAGES_PER_CHIP, cfg)
    planner = MigrationPlanner(cfg)
    layout = MutableLayout(RandomLayout(NUM_CHIPS, PAGES_PER_CHIP, seed=seed))
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    plan = grouper.build_plan(ranked)
    planner.plan_and_apply(plan, layout)
    second = planner.plan_and_apply(plan, layout)
    assert second.num_moves == 0


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=TOTAL - 1),
                          st.integers(min_value=1, max_value=300)),
                max_size=50))
@settings(max_examples=50)
def test_tracker_counts_bounded(events):
    tracker = PopularityTracker(counter_bits=8)
    for page, count in events:
        tracker.record(page, count)
    for page, count in tracker.ranked_pages():
        assert 0 < count <= 255
    # Aging halves (rounding down) every counter.
    before = dict(tracker.ranked_pages())
    tracker.age()
    for page, count in tracker.ranked_pages():
        assert count == before[page] >> 1
