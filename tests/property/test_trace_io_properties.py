"""Property test: trace serialisation round-trips arbitrary traces."""

from hypothesis import given, settings, strategies as st

from repro.traces.io import read_trace, write_trace
from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

finite_time = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                        allow_infinity=False)

transfers = st.builds(
    DMATransfer,
    time=finite_time,
    page=st.integers(min_value=0, max_value=1_000_000),
    size_bytes=st.integers(min_value=1, max_value=1 << 20),
    source=st.sampled_from(["network", "disk"]),
    is_write=st.booleans(),
    bus=st.one_of(st.none(), st.integers(min_value=0, max_value=7)),
)

bursts = st.builds(
    ProcessorBurst,
    time=finite_time,
    page=st.integers(min_value=0, max_value=1_000_000),
    count=st.integers(min_value=1, max_value=10_000),
    window_cycles=st.floats(min_value=0.0, max_value=1e6),
    is_write=st.booleans(),
)

clients = st.dictionaries(
    st.integers(min_value=0, max_value=50),
    st.floats(min_value=0.0, max_value=1e9),
    max_size=8,
).map(lambda d: {
    k: ClientRequest(request_id=k, arrival=v, base_cycles=v / 2)
    for k, v in d.items()
})


@given(st.lists(st.one_of(transfers, bursts), max_size=30), clients,
       st.text(alphabet=st.characters(blacklist_categories=("Cs",)),
               min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_round_trip(records, client_table, name):
    import tempfile
    from pathlib import Path

    trace = Trace(name=name, records=records, clients=client_table,
                  duration_cycles=2e9,
                  metadata={"seed": 1, "note": "prop"})
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.jsonl"
        write_trace(trace, path)
        loaded = read_trace(path)
    assert loaded.name == trace.name
    assert loaded.records == trace.records
    assert loaded.clients == trace.clients
    assert loaded.duration_cycles == trace.duration_cycles
    assert loaded.metadata == trace.metadata
