"""Property: parallel, cached execution is invisible in the results.

For arbitrary small traces and job lists, ``run_many`` must return
results exactly equal — field for field — to direct serial
:func:`repro.simulate` calls, for every pool width, with the cache cold
and warm. This is the contract that lets the benches fan out and cache
without changing a single archived number.
"""

import dataclasses
import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import simulate
from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.exec import ResultCache, SimJob, run_many
from repro.traces.records import DMATransfer
from repro.traces.trace import Trace

MB = 1 << 20

CONFIG = SimulationConfig(
    memory=MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192),
    buses=BusConfig(count=3),
)

transfers = st.builds(
    DMATransfer,
    time=st.floats(min_value=0.0, max_value=100_000.0),
    page=st.integers(min_value=0, max_value=63),
    size_bytes=st.sampled_from([512, 8192]),
    source=st.sampled_from(["network", "disk"]),
)

specs = st.tuples(
    st.sampled_from(["baseline", "dma-ta", "pl", "dma-ta-pl"]),
    st.one_of(st.none(), st.floats(min_value=0.0, max_value=20.0)),
    st.integers(min_value=0, max_value=3),
)


def _same(a, b) -> bool:
    return dataclasses.asdict(a) == dataclasses.asdict(b)


@given(records=st.lists(transfers, min_size=1, max_size=6),
       job_specs=st.lists(specs, min_size=1, max_size=3))
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_run_many_equals_serial_all_widths(records, job_specs):
    trace = Trace(name="prop", records=list(records),
                  duration_cycles=150_000.0)
    jobs = [SimJob(trace, technique, config=CONFIG, mu=mu, seed=seed)
            for technique, mu, seed in job_specs]
    serial = [simulate(trace, config=CONFIG, technique=j.technique,
                       mu=j.mu, seed=j.seed) for j in jobs]

    for workers in (1, 2, 4):
        with tempfile.TemporaryDirectory() as root:
            cache = ResultCache(root=root)
            cold = run_many(jobs, max_workers=workers, cache=cache)
            assert all(o.ok for o in cold)
            assert not any(o.from_cache for o in cold)
            for outcome, reference in zip(cold, serial):
                assert _same(outcome.result, reference)

            warm = run_many(jobs, max_workers=workers, cache=cache)
            assert all(o.ok and o.from_cache for o in warm)
            for outcome, reference in zip(warm, serial):
                assert _same(outcome.result, reference)
            assert cache.stats.corrupt == 0


@given(records=st.lists(transfers, min_size=1, max_size=6),
       job_specs=st.lists(specs, min_size=1, max_size=3))
@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_fleet_observation_is_invisible_in_results(records, job_specs):
    """Attaching the fleet collector (workers stream spans, heartbeats
    and audit rollups to the parent) must not change a result byte —
    the same contract the plain pool already honours."""
    from repro.obs.fleet import FleetCollector, FleetConfig

    trace = Trace(name="prop", records=list(records),
                  duration_cycles=150_000.0)
    jobs = [SimJob(trace, technique, config=CONFIG, mu=mu, seed=seed)
            for technique, mu, seed in job_specs]
    serial = [simulate(trace, config=CONFIG, technique=j.technique,
                       mu=j.mu, seed=j.seed) for j in jobs]

    collector = FleetCollector(FleetConfig())
    try:
        observed = run_many(jobs, max_workers=2, fleet=collector)
        report = collector.report()
    finally:
        collector.close()
    assert all(o.ok for o in observed)
    for outcome, reference in zip(observed, serial):
        assert _same(outcome.result, reference)
    assert report.failed == 0
    assert not report.stalls
    # Every distinct job was either computed under observation or
    # deduplicated — none may escape the collector's ledger.
    assert report.total == len({j.key() for j in jobs})


@given(records=st.lists(transfers, min_size=1, max_size=6))
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_no_cache_never_touches_disk(records):
    trace = Trace(name="prop", records=list(records),
                  duration_cycles=150_000.0)
    jobs = [SimJob(trace, "baseline", config=CONFIG),
            SimJob(trace, "dma-ta", config=CONFIG, mu=2.0)]
    with tempfile.TemporaryDirectory() as root:
        outcomes = run_many(jobs, cache=None)
        assert all(o.ok for o in outcomes)
        cache = ResultCache(root=root)
        assert len(cache) == 0
        assert all(cache.get(o.key) is None for o in outcomes)
