"""Property tests for the block-trace replay adapter.

Three guarantees, each exercised over arbitrary generated block I/Os:

* CSV → :class:`BlockIO` → :class:`Trace` → ``write_trace`` /
  ``read_trace`` round-trips exactly;
* time-window sampling preserves per-namespace (and therefore per-bus)
  ordering and monotone timestamps;
* the offset→page layouts never emit a page outside the configured
  space, for any geometry and either layout strategy.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.config import MemoryConfig
from repro.traces.io import read_trace, write_trace
from repro.traces.records import DMATransfer
from repro.traces.replay import (
    BlockIO,
    ReplayConfig,
    read_block_csv,
    replay_for_memory,
    replay_trace,
    sample_window,
)

MB = 1 << 20

block_ios = st.builds(
    BlockIO,
    time_s=st.integers(min_value=0, max_value=10 ** 9).map(
        lambda ticks: ticks * 1e-7),
    host=st.sampled_from(["usr", "proj", "web"]),
    disk=st.integers(min_value=0, max_value=3),
    offset=st.integers(min_value=0, max_value=1 << 34).map(
        lambda o: o - o % 512),
    size_bytes=st.sampled_from([512, 1024, 4096, 8192, 16384, 65536]),
    is_write=st.booleans(),
    latency_s=st.integers(min_value=0, max_value=10 ** 6).map(
        lambda ticks: ticks * 1e-7),
)

row_lists = st.lists(block_ios, min_size=1, max_size=40)

configs = st.builds(
    ReplayConfig,
    num_pages=st.integers(min_value=1, max_value=4096),
    page_layout=st.sampled_from(["modulo", "hash"]),
    bus_assignment=st.sampled_from(["by-disk", "simulator"]),
    time_compression=st.sampled_from([1.0, 10.0, 1000.0]),
    proc_accesses_per_io=st.sampled_from([0.0, 8.0, 64.0]),
    make_clients=st.booleans(),
)


def _to_msr_csv(rows, path: Path) -> None:
    lines = ["Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"]
    for row in rows:
        ticks = round(row.time_s / 1e-7)
        latency = round(row.latency_s / 1e-7)
        op = "Write" if row.is_write else "Read"
        lines.append(f"{ticks},{row.host},{row.disk},{op},"
                     f"{row.offset},{row.size_bytes},{latency}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


@given(row_lists, configs)
@settings(max_examples=40, deadline=None)
def test_csv_to_trace_round_trips_exactly(rows, config):
    """CSV → records → JSONL → records is the identity."""
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "block.csv"
        _to_msr_csv(rows, csv_path)
        parsed = read_block_csv(csv_path, dialect="msr")
        assert len(parsed) == len(rows)
        trace = replay_trace(parsed, config=config, name="prop")

        jsonl = Path(tmp) / "trace.jsonl"
        write_trace(trace, jsonl)
        loaded = read_trace(jsonl)
    assert loaded.records == trace.records
    assert loaded.clients == trace.clients
    assert loaded.duration_cycles == trace.duration_cycles
    assert loaded.metadata == trace.metadata
    assert loaded.fingerprint() == trace.fingerprint()


@given(row_lists,
       st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
       st.floats(min_value=0.001, max_value=120.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_sampling_preserves_order(rows, start_s, duration_s):
    """A time window keeps timestamps monotone and per-disk order."""
    ordered = sorted(rows, key=lambda r: r.time_s)
    sampled = sample_window(ordered, start_s, duration_s)

    times = [r.time_s for r in sampled]
    assert times == sorted(times)
    assert all(start_s <= t < start_s + duration_s for t in times)

    # Per-namespace subsequences survive intact: sampling never reorders
    # or interleaves a disk's queue.
    def per_namespace(seq):
        queues = {}
        for row in seq:
            queues.setdefault(row.namespace, []).append(row)
        return queues

    full = per_namespace(r for r in ordered
                         if start_s <= r.time_s < start_s + duration_s)
    assert per_namespace(sampled) == full


@given(row_lists, configs)
@settings(max_examples=60, deadline=None)
def test_replay_keeps_per_bus_order_monotone(rows, config):
    """Replayed transfers stay time-sorted within every bus."""
    trace = replay_trace(rows, config=config)
    by_bus = {}
    for record in trace.records:
        if isinstance(record, DMATransfer):
            by_bus.setdefault(record.bus, []).append(record.time)
    for times in by_bus.values():
        assert times == sorted(times)


@given(row_lists,
       st.integers(min_value=1, max_value=16),
       st.sampled_from(["modulo", "hash"]))
@settings(max_examples=60, deadline=None)
def test_page_mapping_respects_geometry(rows, num_chips, layout):
    """No emitted page id ever exceeds the configured chip geometry."""
    memory = MemoryConfig(num_chips=num_chips, chip_bytes=1 * MB,
                          page_bytes=8192)
    trace = replay_for_memory(
        rows, memory.total_pages,
        config=ReplayConfig(num_pages=1 << 30, page_layout=layout))
    assert trace.max_page() < memory.total_pages
    assert all(r.page >= 0 for r in trace.records)
