"""Property test: the audit energy ledger balances for any workload.

The :class:`~repro.obs.audit.Auditor` re-derives per-chip per-bucket
joules from the ``joules`` payloads the residency spans carry. For
arbitrary small traces, under every policy technique and both engines,
the replayed ledger must agree with the run's own
:class:`~repro.energy.accounting.EnergyBreakdown` — per chip and per
bucket — within float round-off, and the audit must record zero
violations on an unmodified simulator.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import simulate
from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.obs.audit import KIND_GUARANTEE, Auditor
from repro.obs.export import RESIDENCY_BUCKETS
from repro.sim.run import ENGINES, TECHNIQUES
from repro.traces.records import DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

MB = 1 << 20

CONFIG = SimulationConfig(
    memory=MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192),
    buses=BusConfig(count=3),
)

transfers = st.builds(
    DMATransfer,
    time=st.floats(min_value=0.0, max_value=150_000.0),
    page=st.integers(min_value=0, max_value=63),
    size_bytes=st.sampled_from([512, 8192]),
    source=st.sampled_from(["network", "disk"]),
)

bursts = st.builds(
    ProcessorBurst,
    time=st.floats(min_value=0.0, max_value=150_000.0),
    page=st.integers(min_value=0, max_value=63),
    count=st.integers(min_value=1, max_value=32),
)

workloads = st.lists(st.one_of(transfers, bursts), min_size=1, max_size=10)


def _assert_ledger_balances(trace, technique, engine, mu=None):
    auditor = Auditor()
    result = simulate(trace, config=CONFIG, technique=technique,
                      engine=engine, mu=mu, tracer=auditor)
    report = auditor.finalize(result)
    # Colliding random transfers on this tiny platform can genuinely
    # push the live running-average monitor past the soft (1+mu)*T
    # allowance (sometimes only transiently, recovering by run end) —
    # that is a workload truth, not a ledger bug, and the detection
    # semantics are pinned deterministically in test_obs_audit.py.
    # Anything else (under-charge, drift, conservation) is a real
    # audit failure.
    unexplained = [v for v in report.violations
                   if v.kind != KIND_GUARANTEE]
    assert not unexplained, [v.as_dict() for v in unexplained]
    assert report.ledger_checked

    chip_energy = result.chip_energy
    assert set(report.ledger) <= set(range(len(chip_energy)))
    for chip_id, buckets in report.ledger.items():
        replayed = math.fsum(buckets.values())
        assert replayed == pytest.approx(
            chip_energy[chip_id], rel=1e-9,
            abs=1e-9 * max(abs(chip_energy[chip_id]), 1.0))

    accounted = result.energy.as_dict()
    for bucket in RESIDENCY_BUCKETS:
        expected = accounted.get(bucket, 0.0)
        replayed = sum(b.get(bucket, 0.0) for b in report.ledger.values())
        assert replayed == pytest.approx(
            expected, rel=1e-9, abs=1e-9 * max(abs(expected), 1.0))


@given(workloads, st.sampled_from(TECHNIQUES))
@settings(max_examples=20, deadline=None)
def test_fluid_ledger_balances_all_policies(records, technique):
    trace = Trace(name="audit-prop", records=list(records),
                  duration_cycles=250_000.0)
    mu = 1.0 if technique in ("dma-ta", "dma-ta-pl") else None
    _assert_ledger_balances(trace, technique, "fluid", mu=mu)


@given(workloads, st.sampled_from(TECHNIQUES))
@settings(max_examples=10, deadline=None)
def test_precise_ledger_balances_all_policies(records, technique):
    trace = Trace(name="audit-prop", records=list(records),
                  duration_cycles=250_000.0)
    mu = 1.0 if technique in ("dma-ta", "dma-ta-pl") else None
    _assert_ledger_balances(trace, technique, "precise", mu=mu)


@given(workloads, st.sampled_from(ENGINES))
@settings(max_examples=10, deadline=None)
def test_audited_run_is_bit_identical(records, engine):
    """Attaching the auditor must not perturb the simulation."""
    trace = Trace(name="audit-prop", records=list(records),
                  duration_cycles=250_000.0)
    bare = simulate(trace, config=CONFIG, technique="dma-ta", mu=1.0,
                    engine=engine)
    audited = simulate(trace, config=CONFIG, technique="dma-ta", mu=1.0,
                       engine=engine, tracer=Auditor())
    assert audited.energy_joules == bare.energy_joules
    assert audited.chip_energy == bare.chip_energy
    assert audited.energy.as_dict() == bare.energy.as_dict()
