"""Property test: fluid and precise engines agree on random traces.

The strongest validation in the suite: for arbitrary small workloads the
closed-form fluid engine must land within a few percent of the
per-request reference on total energy and utilization. Runs on a small
platform to keep the per-request engine fast.
"""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro import simulate
from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.traces.records import DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

MB = 1 << 20

CONFIG = SimulationConfig(
    memory=MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192),
    buses=BusConfig(count=3),
)

transfers = st.builds(
    DMATransfer,
    time=st.floats(min_value=0.0, max_value=150_000.0),
    page=st.integers(min_value=0, max_value=63),
    size_bytes=st.sampled_from([512, 8192]),
    source=st.sampled_from(["network", "disk"]),
)

bursts = st.builds(
    ProcessorBurst,
    time=st.floats(min_value=0.0, max_value=150_000.0),
    page=st.integers(min_value=0, max_value=63),
    count=st.integers(min_value=1, max_value=32),
)


@given(st.lists(st.one_of(transfers, bursts), min_size=1, max_size=12))
@settings(max_examples=25, deadline=None)
def test_engines_agree_on_baseline(records):
    trace = Trace(name="eq", records=list(records),
                  duration_cycles=250_000.0)
    fluid = simulate(trace, config=CONFIG, technique="baseline")
    precise = simulate(trace, config=CONFIG, technique="baseline",
                       engine="precise")
    assert fluid.requests == precise.requests
    assert fluid.proc_accesses == precise.proc_accesses
    assert fluid.time.serving_dma == pytest.approx(
        precise.time.serving_dma, rel=1e-6)
    assert fluid.energy_joules == pytest.approx(
        precise.energy_joules, rel=0.06,
        abs=0.02 * max(fluid.energy_joules, 1e-12))
    assert fluid.utilization_factor == pytest.approx(
        precise.utilization_factor, abs=0.05)


page_transfers = st.builds(
    DMATransfer,
    time=st.floats(min_value=0.0, max_value=150_000.0),
    page=st.integers(min_value=0, max_value=63),
    size_bytes=st.just(8192),
    source=st.sampled_from(["network", "disk"]),
)


@given(st.lists(page_transfers, min_size=1, max_size=10),
       st.floats(min_value=10.0, max_value=300.0))
@example(
    # A mined regression: three same-instant transfers plus near-coincident
    # arrivals at t~96-108k cycles put the fluid and precise engines on
    # different gather/release schedules for the rest of the trace; the
    # energy gap reaches ~23%.
    records=[DMATransfer(time=0.0, page=0, size_bytes=8192),
             DMATransfer(time=0.0, page=1, size_bytes=8192),
             DMATransfer(time=1.0, page=1, size_bytes=8192),
             DMATransfer(time=96413.0, page=0, size_bytes=8192),
             DMATransfer(time=97386.0, page=1, size_bytes=8192),
             DMATransfer(time=96413.0, page=1, size_bytes=8192),
             DMATransfer(time=107626.0, page=1, size_bytes=8192),
             DMATransfer(time=0.0, page=0, size_bytes=8192)],
    mu=69.0)
@settings(max_examples=20, deadline=None)
def test_engines_agree_under_dma_ta(records, mu):
    # Page-sized transfers only: 64-request (512 B) transfers are short
    # enough that request-phase boundary effects — which the fluid model
    # deliberately smears — dominate their energy, and the two engines'
    # legitimately different admission instants cascade. At 1024-request
    # granularity the smearing is negligible.
    trace = Trace(name="eq-ta", records=list(records),
                  duration_cycles=250_000.0)
    fluid = simulate(trace, config=CONFIG, technique="dma-ta", mu=mu)
    precise = simulate(trace, config=CONFIG, technique="dma-ta", mu=mu,
                       engine="precise")
    assert fluid.requests == precise.requests
    assert fluid.time.serving_dma == pytest.approx(
        precise.time.serving_dma, rel=1e-6)
    # Alignment decisions may differ at instants where chip state is
    # borderline between the two models, and at these mu values (10-300x
    # the per-request service time — far beyond any calibrated CP-Limit)
    # one divergent release can reschedule every later gather. Measured
    # worst cases sit near 25% (see the mined example above), so the
    # bound asserts tracking, not near-equality; the baseline test keeps
    # the tight bound where the models must genuinely coincide.
    assert fluid.energy_joules == pytest.approx(
        precise.energy_joules, rel=0.35,
        abs=0.05 * max(fluid.energy_joules, 1e-12))
