"""Shared fixtures: a small platform and tiny traces for fast tests."""

from __future__ import annotations

import pytest

from repro.config import (
    BusConfig,
    MemoryConfig,
    PopularityLayoutConfig,
    SimulationConfig,
)
from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

MB = 1 << 20


@pytest.fixture
def small_memory() -> MemoryConfig:
    """8 chips of 1 MB (128 pages each) — small but structurally real."""
    return MemoryConfig(num_chips=8, chip_bytes=1 * MB, page_bytes=8192)


@pytest.fixture
def small_config(small_memory) -> SimulationConfig:
    return SimulationConfig(
        memory=small_memory,
        buses=BusConfig(count=3),
        layout=PopularityLayoutConfig(interval_cycles=200_000.0),
    )


@pytest.fixture
def paper_config() -> SimulationConfig:
    """The paper's full Section 5.1 platform (32 chips, 3 PCI-X buses)."""
    return SimulationConfig()


def make_transfer(time: float, page: int = 0, size: int = 8192,
                  source: str = "network", bus: int | None = None,
                  request_id: int | None = None) -> DMATransfer:
    return DMATransfer(time=time, page=page, size_bytes=size, source=source,
                       bus=bus, request_id=request_id)


@pytest.fixture
def single_transfer_trace() -> Trace:
    """One 8-KB transfer at t=1000 cycles."""
    return Trace(name="single",
                 records=[make_transfer(1000.0, page=5)],
                 duration_cycles=200_000.0)


@pytest.fixture
def aligned_trace() -> Trace:
    """Three simultaneous transfers on three buses to the same page.

    The textbook DMA-TA scenario: if served together they saturate one
    chip (k = 3 buses at a 3:1 bandwidth ratio).
    """
    records = [make_transfer(1000.0, page=7, bus=b) for b in range(3)]
    return Trace(name="aligned", records=records, duration_cycles=200_000.0)


@pytest.fixture
def clients_trace() -> Trace:
    """Two client requests, each served by one transfer."""
    records = [
        make_transfer(1000.0, page=1, request_id=0),
        make_transfer(50_000.0, page=2, request_id=1),
    ]
    clients = {
        0: ClientRequest(request_id=0, arrival=500.0, base_cycles=10_000.0),
        1: ClientRequest(request_id=1, arrival=49_000.0, base_cycles=10_000.0),
    }
    return Trace(name="clients", records=records, clients=clients,
                 duration_cycles=200_000.0)


@pytest.fixture
def proc_trace() -> Trace:
    """A processor burst followed by a transfer on the same page."""
    records = [
        ProcessorBurst(time=1000.0, page=3, count=16),
        make_transfer(4000.0, page=3),
    ]
    return Trace(name="proc", records=records, duration_cycles=200_000.0)
