"""Units for the PL migration planner (Section 4.2)."""

import pytest

from repro.config import PopularityLayoutConfig
from repro.core.layout import PopularityGrouper
from repro.core.migration import MigrationPlanner, PageMove
from repro.memory.address import MutableLayout, SequentialLayout


NUM_CHIPS, PAGES_PER_CHIP = 4, 8


def build(ranked_counts, layout=None, **cfg_overrides):
    cfg = PopularityLayoutConfig(
        num_groups=2, hot_access_fraction=0.6, min_hot_references=1,
        **cfg_overrides)
    grouper = PopularityGrouper(NUM_CHIPS, PAGES_PER_CHIP, cfg)
    planner = MigrationPlanner(cfg)
    layout = layout or MutableLayout(
        SequentialLayout(NUM_CHIPS, PAGES_PER_CHIP))
    ranked = [(page, count) for page, count in ranked_counts]
    plan = grouper.build_plan(ranked)
    migration = planner.plan_and_apply(plan, layout)
    return plan, migration, layout, planner


class TestPlanning:
    def test_hot_pages_land_on_hot_chips(self):
        # Pages 20 and 28 (chips 2 and 3) are the hot ones.
        plan, migration, layout, _ = build([(20, 50), (28, 40), (1, 5)])
        assert layout.chip_of(20) == 0
        assert layout.chip_of(28) == 0
        assert migration.num_moves > 0

    def test_pages_already_placed_stay(self):
        # Page 1 already lives on chip 0 (the hot chip).
        plan, migration, layout, _ = build([(1, 50), (2, 40)])
        assert layout.chip_of(1) == 0
        assert layout.chip_of(2) == 0
        # A full layout swaps evict correctly placed... page 1, 2 on chip 0
        # already: no moves at all.
        assert migration.num_moves == 0

    def test_swap_conserves_occupancy(self):
        _, migration, layout, _ = build([(20, 50), (28, 40)])
        for chip in range(NUM_CHIPS):
            assert layout.occupancy(chip) == PAGES_PER_CHIP

    def test_swaps_cost_two_moves(self):
        # Full layout: every relocation is a swap = 2 recorded moves.
        _, migration, layout, _ = build([(20, 50)])
        assert migration.num_moves == 2
        pages_moved = {m.page for m in migration.moves}
        assert 20 in pages_moved

    def test_copy_cycles_per_chip(self):
        _, migration, _, _ = build([(20, 50)])
        cycles = migration.copy_cycles_per_chip(page_copy_cycles=4096.0)
        # A swap touches chips 0 and 2 twice each (both directions).
        assert cycles[0] == pytest.approx(2 * 4096.0)
        assert cycles[2] == pytest.approx(2 * 4096.0)

    def test_second_interval_is_stable(self):
        counts = [(20, 50), (28, 40)]
        plan, first, layout, planner = build(counts)
        cfg = PopularityLayoutConfig(num_groups=2, hot_access_fraction=0.6,
                                     min_hot_references=1)
        grouper = PopularityGrouper(NUM_CHIPS, PAGES_PER_CHIP, cfg)
        plan2 = grouper.build_plan(list(counts))
        second = planner.plan_and_apply(plan2, layout)
        assert second.num_moves == 0


class TestTableFlushes:
    def test_flush_count(self):
        _, migration, _, _ = build(
            [(20, 50), (28, 40), (12, 30)],
            translation_table_entries=2)
        assert migration.table_flushes == -(-migration.num_moves // 2)

    def test_no_moves_no_flushes(self):
        _, migration, _, _ = build([(1, 50)])
        assert migration.num_moves == 0
        assert migration.table_flushes == 0


class TestCumulativeCounters:
    def test_planner_accumulates(self):
        cfg = PopularityLayoutConfig(num_groups=2, min_hot_references=1)
        grouper = PopularityGrouper(NUM_CHIPS, PAGES_PER_CHIP, cfg)
        planner = MigrationPlanner(cfg)
        layout = MutableLayout(SequentialLayout(NUM_CHIPS, PAGES_PER_CHIP))
        plan = grouper.build_plan([(20, 50)])
        planner.plan_and_apply(plan, layout)
        plan2 = grouper.build_plan([(28, 50)])
        planner.plan_and_apply(plan2, layout)
        assert planner.total_moves >= 2
