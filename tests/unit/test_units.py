"""Units for unit conversions."""

import pytest

from repro import units


class TestTime:
    def test_cycle_seconds_roundtrip(self):
        assert units.seconds_to_cycles(
            units.cycles_to_seconds(1234.0)) == pytest.approx(1234.0)

    def test_cycle_is_0625_ns(self):
        assert units.cycles_to_ns(1.0) == pytest.approx(0.625)

    def test_ns_to_cycles_table1_resyncs(self):
        assert units.ns_to_cycles(6.0) == pytest.approx(9.6)
        assert units.ns_to_cycles(60.0) == pytest.approx(96.0)
        assert units.ns_to_cycles(6000.0) == pytest.approx(9600.0)


class TestBandwidth:
    def test_pcix_bandwidth(self):
        # 133 MHz x 8 bytes = 1.064 GB/s.
        assert units.PCIX_BANDWIDTH == pytest.approx(1.064e9)

    def test_rdram_bandwidth(self):
        assert units.RDRAM_BANDWIDTH == pytest.approx(3.2e9)

    def test_paper_bandwidth_ratio(self):
        # "a factor of three more than the bandwidth of a PCI-X bus"
        ratio = units.RDRAM_BANDWIDTH / units.PCIX_BANDWIDTH
        assert ratio == pytest.approx(3.0, abs=0.02)

    def test_bytes_per_cycle(self):
        assert units.bandwidth_bytes_per_cycle(
            units.RDRAM_BANDWIDTH) == pytest.approx(2.0)
        # PCI-X delivers one 8-byte request every ~12 memory cycles.
        per_cycle = units.bandwidth_bytes_per_cycle(units.PCIX_BANDWIDTH)
        assert 8.0 / per_cycle == pytest.approx(12.0, abs=0.05)


class TestEnergy:
    def test_energy_joules(self):
        # 300 mW for 1600 cycles (1 us) = 0.3 uJ.
        assert units.energy_joules(0.3, 1600.0) == pytest.approx(3e-7)

    def test_mw_to_watts(self):
        assert units.mw_to_watts(300.0) == pytest.approx(0.3)

    def test_joules_to_mj(self):
        assert units.joules_to_mj(0.001) == pytest.approx(1.0)
