"""Units for the live telemetry layer (repro.obs.telemetry)."""

import json
import math
import queue

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, TelemetryError
from repro.obs.telemetry import (
    RESIDENCY_BUCKETS,
    SCALAR_COLUMNS,
    CusumDetector,
    JsonlExporter,
    PendingDriftDetector,
    PrometheusExporter,
    SseBroker,
    TelemetryConfig,
    TelemetrySampler,
    TelemetryStore,
    prometheus_series,
)
from repro.sim.fluid import FluidEngine
from repro.traces.synthetic import synthetic_storage_trace


class TestTelemetryConfig:
    def test_defaults_valid(self):
        TelemetryConfig()

    @pytest.mark.parametrize("kwargs", [
        {"sample_cycles": 0.0},
        {"sample_cycles": -5.0},
        {"capacity": 6},          # too small
        {"capacity": 9},          # odd
        {"cusum_warmup": 1},
        {"pending_warmup": 0},
        {"inject_spike_at_frac": 1.5},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(**kwargs)


class TestTelemetryStore:
    def _row(self, tick):
        return np.array([float(tick), float(tick) * 10.0])

    def test_append_and_snapshot(self):
        store = TelemetryStore(("ts", "v"), capacity=8)
        for tick in range(5):
            assert store.append(self._row(tick))
        snap = store.snapshot()
        assert len(snap) == 5
        assert snap.stride == 1
        assert snap.ticks == 5
        assert snap.dropped == 0
        assert list(snap.column("ts")) == [0, 1, 2, 3, 4]

    def test_overflow_compacts_and_doubles_stride(self):
        store = TelemetryStore(("ts", "v"), capacity=8)
        for tick in range(9):
            store.append(self._row(tick))
        snap = store.snapshot()
        # Rows 0,2,4,6 survive the compaction, then tick 8 lands.
        assert snap.stride == 2
        assert list(snap.column("ts")) == [0, 2, 4, 6, 8]

    @pytest.mark.parametrize("total", [31, 32, 100, 257])
    def test_retained_rows_match_reference_striding(self, total):
        """Row i always holds tick i * stride, no matter the stream length."""
        store = TelemetryStore(("ts", "v"), capacity=8)
        for tick in range(total):
            store.append(self._row(tick))
        snap = store.snapshot()
        expected = [i * snap.stride for i in range(len(snap))]
        assert list(snap.column("ts")) == expected
        assert snap.ticks == total
        if total > store.capacity:
            assert snap.stride > 1
            assert snap.dropped > 0

    def test_off_stride_ticks_dropped(self):
        store = TelemetryStore(("ts", "v"), capacity=8)
        for tick in range(8):
            store.append(self._row(tick))
        store.append(self._row(8))       # triggers compaction, stride=2
        assert not store.append(self._row(9))   # odd tick: dropped
        assert store.append(self._row(10))
        assert store.dropped == 1

    def test_snapshot_is_a_copy(self):
        store = TelemetryStore(("ts", "v"), capacity=8)
        store.append(self._row(0))
        snap = store.snapshot()
        store.append(self._row(1))
        assert len(snap) == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            TelemetryStore(("ts",), capacity=7)


class TestCusumDetector:
    def test_quiet_on_steady_stream(self):
        detector = CusumDetector(warmup=8)
        total, alarms = 0.0, []
        for i in range(200):
            total += 5.0
            alarm = detector.observe(i, float(i), total)
            if alarm:
                alarms.append(alarm)
        assert alarms == []

    def test_fires_once_per_sustained_shift(self):
        detector = CusumDetector(warmup=8, h_sigmas=10.0)
        total, alarms = 0.0, []
        for i in range(400):
            total += 5.0 if i < 200 else 500.0
            alarm = detector.observe(i, float(i), total)
            if alarm:
                alarms.append(alarm)
        assert len(alarms) == 1
        assert alarms[0].sample_index >= 200
        assert alarms[0].kind == "degradation-cusum"

    def test_zero_warmup_does_not_collapse_sigma_to_nothing(self):
        # An all-zero warmup leaves only the absolute floor; a later burst
        # alarms once and then the detector re-baselines at burst scale.
        detector = CusumDetector(warmup=8)
        total, alarms = 0.0, []
        for i in range(300):
            total += 0.0 if i < 50 else 100.0
            alarm = detector.observe(i, float(i), total)
            if alarm:
                alarms.append(alarm)
        assert len(alarms) == 1

    def test_adapts_to_bursty_noise(self):
        # Heavy-tailed but stationary traffic: mostly zero with regular
        # large bursts. After warmup + a little adaptation, no alarms.
        detector = CusumDetector(warmup=16)
        total, late_alarms = 0.0, []
        for i in range(600):
            total += 2000.0 if i % 10 == 0 else 0.0
            alarm = detector.observe(i, float(i), total)
            if alarm and i > 100:
                late_alarms.append(alarm)
        assert late_alarms == []


class TestPendingDriftDetector:
    def test_derives_limit_from_warmup(self):
        detector = PendingDriftDetector(warmup=4)
        for i in range(4):
            assert detector.observe(i, float(i), 1.0) is None
        # Derived limit is max(8, 4*1) = 8: 8 is fine, 9 alarms.
        assert detector.observe(4, 4.0, 8.0) is None
        alarm = detector.observe(5, 5.0, 9.0)
        assert alarm is not None
        assert alarm.kind == "slack-pending-drift"
        assert alarm.threshold == 8.0

    def test_rearms_only_below_half_limit(self):
        detector = PendingDriftDetector(warmup=1, limit=10.0)
        detector.observe(0, 0.0, 0.0)
        assert detector.observe(1, 1.0, 11.0) is not None
        assert detector.observe(2, 2.0, 12.0) is None   # still tripped
        assert detector.observe(3, 3.0, 6.0) is None    # above limit/2
        assert detector.observe(4, 4.0, 4.0) is None    # re-arms here
        assert detector.observe(5, 5.0, 11.0) is not None


class TestPrometheusNaming:
    def test_scalar_chip_and_bus_columns(self):
        assert prometheus_series("ts") == ("repro_sim_cycles", {})
        assert prometheus_series("requests") == (
            "repro_requests_total", {})
        assert prometheus_series("chip3.power_w") == (
            "repro_chip_power_watts", {"chip": "3"})
        assert prometheus_series("chip12.low_power") == (
            "repro_chip_residency_cycles",
            {"chip": "12", "bucket": "low_power"})
        assert prometheus_series("bus1.util") == (
            "repro_bus_utilization", {"bus": "1"})
        assert prometheus_series("bus0.queue_depth") == (
            "repro_bus_queue_depth", {"bus": "0"})


class TestPrometheusExporter:
    def test_render_before_any_sample_has_meta_counters(self):
        exporter = PrometheusExporter()
        text = exporter.render()
        assert "repro_telemetry_samples_total 0" in text
        assert text.endswith("\n")

    def test_render_groups_families_with_help_and_type(self):
        exporter = PrometheusExporter()
        columns = ("ts", "requests", "chip0.power_w", "chip1.power_w")
        exporter.on_bind(columns)
        exporter.on_sample(np.array([100.0, 7.0, 0.5, 0.25]), [])
        text = exporter.render()
        lines = text.splitlines()
        assert "# HELP repro_sim_cycles Simulation clock at the latest sample" in lines
        assert "# TYPE repro_sim_cycles gauge" in lines
        assert "# TYPE repro_requests_total counter" in lines
        assert 'repro_chip_power_watts{chip="0"} 0.5' in lines
        assert 'repro_chip_power_watts{chip="1"} 0.25' in lines
        # One HELP/TYPE pair per family, not per series.
        assert sum(1 for l in lines
                   if l.startswith("# TYPE repro_chip_power_watts")) == 1
        assert "repro_telemetry_samples_total 1" in lines

    def test_latest_sample_wins(self):
        exporter = PrometheusExporter()
        exporter.on_bind(("ts",))
        exporter.on_sample(np.array([1.0]), [])
        exporter.on_sample(np.array([2.0]), [])
        assert "repro_sim_cycles 2" in exporter.render()
        assert exporter.samples == 2


class TestJsonlExporter:
    def test_flat_sample_and_anomaly_lines(self, tmp_path):
        from repro.obs.telemetry import TelemetryAnomaly

        path = tmp_path / "stream.jsonl"
        exporter = JsonlExporter(path)
        exporter.on_bind(("ts", "power_w"))
        anomaly = TelemetryAnomaly(kind="degradation-cusum", ts=2.0,
                                   sample_index=1, value=9.0,
                                   threshold=3.0, message="boom")
        exporter.on_sample(np.array([1.0, 0.5]), [])
        exporter.on_sample(np.array([2.0, 0.6]), [anomaly])
        exporter.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert len(lines) == 3
        assert lines[0] == {"event": "telemetry.sample", "ts": 1.0,
                            "power_w": 0.5}
        assert lines[2]["event"] == "telemetry.anomaly"
        assert lines[2]["kind"] == "degradation-cusum"
        assert exporter.lines == 3

    def test_close_is_idempotent(self, tmp_path):
        exporter = JsonlExporter(tmp_path / "s.jsonl")
        exporter.close()
        exporter.close()

    def test_every_line_is_durable_before_close(self, tmp_path):
        """Lines must hit the disk per sample (the stream is tailed
        live by watch dashboards), and close() must not lose the tail."""
        path = tmp_path / "stream.jsonl"
        exporter = JsonlExporter(path)
        exporter.on_bind(("ts",))
        exporter.on_sample(np.array([1.0]), [])
        # Visible to a concurrent reader before close.
        assert json.loads(path.read_text().splitlines()[0])["ts"] == 1.0
        exporter.on_sample(np.array([2.0]), [])
        exporter.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[-1])["ts"] == 2.0


class TestSseBroker:
    def test_fanout_and_close_sentinel(self):
        broker = SseBroker()
        broker.on_bind(("ts",))
        a, b = broker.subscribe(), broker.subscribe()
        broker.on_sample(np.array([5.0]), [])
        assert a.get_nowait() == ("sample", '{"ts": 5.0}')
        assert b.get_nowait()[0] == "sample"
        broker.close()
        assert a.get_nowait() is None
        assert broker.closed

    def test_slow_subscriber_drops_oldest(self):
        broker = SseBroker(max_queued=2)
        broker.on_bind(("ts",))
        subscriber = broker.subscribe()
        for ts in (1.0, 2.0, 3.0):
            broker.on_sample(np.array([ts]), [])
        assert subscriber.get_nowait() == ("sample", '{"ts": 2.0}')
        assert subscriber.get_nowait() == ("sample", '{"ts": 3.0}')
        with pytest.raises(queue.Empty):
            subscriber.get_nowait()

    def test_unsubscribe_stops_delivery(self):
        broker = SseBroker()
        broker.on_bind(("ts",))
        subscriber = broker.subscribe()
        broker.unsubscribe(subscriber)
        broker.on_sample(np.array([1.0]), [])
        with pytest.raises(queue.Empty):
            subscriber.get_nowait()

    def test_publish_rides_the_same_bounded_queues(self):
        """The generic entry point (used by the fleet collector) must
        share the drop-oldest discipline of the sample path."""
        broker = SseBroker(max_queued=2)
        subscriber = broker.subscribe()
        for index in range(5):
            broker.publish("fleet", f'{{"seq": {index}}}')
        assert subscriber.get_nowait() == ("fleet", '{"seq": 3}')
        assert subscriber.get_nowait() == ("fleet", '{"seq": 4}')
        with pytest.raises(queue.Empty):
            subscriber.get_nowait()

    def test_publish_and_samples_interleave_in_order(self):
        broker = SseBroker()
        broker.on_bind(("ts",))
        subscriber = broker.subscribe()
        broker.on_sample(np.array([1.0]), [])
        broker.publish("stall", '{"worker": 2}')
        broker.on_sample(np.array([2.0]), [])
        events = [subscriber.get_nowait()[0] for _ in range(3)]
        assert events == ["sample", "stall", "sample"]

    def test_disconnecting_consumer_never_stalls_the_publisher(self):
        """A consumer that walks away mid-stream (browser tab closed)
        must not block or starve the remaining subscribers."""
        broker = SseBroker(max_queued=4)
        flaky, steady = broker.subscribe(), broker.subscribe()
        for index in range(3):
            broker.publish("fleet", f'{{"seq": {index}}}')
        broker.unsubscribe(flaky)  # consumer gone, queue still full
        for index in range(3, 10):
            broker.publish("fleet", f'{{"seq": {index}}}')
        got = []
        while True:
            try:
                got.append(json.loads(steady.get_nowait()[1])["seq"])
            except queue.Empty:
                break
        assert got == [6, 7, 8, 9]  # newest survive, oldest dropped
        assert flaky.qsize() == 3  # no deliveries after unsubscribe


@pytest.fixture(scope="module")
def tiny_trace():
    return synthetic_storage_trace(duration_ms=0.5, transfers_per_ms=60,
                                   seed=3)


class TestSamplerLifecycle:
    def test_sample_before_bind_raises(self):
        sampler = TelemetrySampler()
        with pytest.raises(TelemetryError):
            sampler.sample(0.0)
        with pytest.raises(TelemetryError):
            sampler.series("ts")

    def test_double_bind_raises(self, tiny_trace):
        sampler = TelemetrySampler()
        config = SimulationConfig().with_mu(2.0)
        FluidEngine(tiny_trace, config, technique="dma-ta",
                    telemetry=sampler)
        with pytest.raises(TelemetryError):
            FluidEngine(tiny_trace, config, technique="dma-ta",
                        telemetry=sampler)

    def test_run_fills_expected_columns(self, tiny_trace):
        sampler = TelemetrySampler(TelemetryConfig(sample_cycles=5000.0))
        config = SimulationConfig().with_mu(2.0)
        engine = FluidEngine(tiny_trace, config, technique="dma-ta-pl",
                             telemetry=sampler)
        result = engine.run()
        n_chips = config.memory.num_chips
        n_buses = config.buses.count
        assert len(sampler.columns) == (len(SCALAR_COLUMNS)
                                        + n_chips * (1 + len(RESIDENCY_BUCKETS))
                                        + 2 * n_buses)
        assert sampler.samples_captured >= 2
        ts, power = sampler.series("power_w")
        assert len(ts) == len(power) > 0
        assert ts[-1] == pytest.approx(result.duration_cycles)
        assert np.all(np.diff(ts) > 0)
        assert np.all(power >= 0.0)
        # Residency-to-date only grows.
        _, low = sampler.series("chip0.low_power")
        assert np.all(np.diff(low) >= 0.0)

    def test_default_period_is_the_epoch(self, tiny_trace):
        sampler = TelemetrySampler()
        config = SimulationConfig().with_mu(2.0)
        engine = FluidEngine(tiny_trace, config, technique="dma-ta",
                             telemetry=sampler)
        assert sampler.sample_cycles == engine.controller.epoch_cycles()

    def test_spike_injection_observed_not_simulated(self, tiny_trace):
        config = SimulationConfig().with_mu(2.0)
        plain = TelemetrySampler(TelemetryConfig(sample_cycles=5000.0))
        FluidEngine(tiny_trace, config, technique="dma-ta",
                    telemetry=plain).run()
        spiked = TelemetrySampler(TelemetryConfig(
            sample_cycles=5000.0, inject_spike_cycles=1e6,
            inject_spike_at_frac=0.5))
        result = FluidEngine(tiny_trace, config, technique="dma-ta",
                             telemetry=spiked).run()
        _, deg_plain = plain.series("degradation_cycles")
        _, deg_spiked = spiked.series("degradation_cycles")
        # Exactly one observed sample carries the phantom cycles...
        assert np.sum(np.abs(deg_spiked - deg_plain) > 0) == 1
        # ...and the simulation itself never saw them.
        assert (result.head_delay_cycles
                + result.extra_service_cycles) < 1e6
