"""Units for the admission controllers (baseline and DMA-TA)."""

import pytest

from repro.config import SimulationConfig
from repro.core.controller import BaselineController
from repro.core.temporal_alignment import TemporalAlignmentController
from repro.energy.policies import default_dynamic_policy
from repro.energy.rdram import rdram_1600_model
from repro.io.dma import FluidStream, StreamKind
from repro.memory.chip import FluidChip


def make_chip(asleep=True):
    model = rdram_1600_model()
    return FluidChip(0, model, default_dynamic_policy(model),
                     start_asleep=asleep)


def make_stream(bus=0, arrival=0.0, n_req=1024):
    return FluidStream(kind=StreamKind.DMA, chip_id=0,
                       total_work=n_req * 4.0, demand=1 / 3, bus_id=bus,
                       arrival_time=arrival, num_requests=n_req)


def make_ta(mu=10.0, arrived=lambda: 0.0):
    config = SimulationConfig().with_mu(mu)
    return TemporalAlignmentController(config, arrived)


class TestBaseline:
    def test_everything_passes(self):
        controller = BaselineController()
        chip = make_chip()
        released = controller.admit(make_stream(), chip, 0.0)
        assert len(released) == 1
        assert controller.pending_count() == 0
        assert controller.epoch_cycles() is None

    def test_stats(self):
        controller = BaselineController()
        controller.admit(make_stream(), make_chip(), 0.0)
        assert controller.stats()["transfers_admitted"] == 1.0


class TestTemporalAlignment:
    def test_active_chip_passes_through(self):
        controller = make_ta()
        chip = make_chip(asleep=False)
        released = controller.admit(make_stream(), chip, 5.0)
        assert len(released) == 1
        assert controller.transfers_passed_through == 1

    def test_sleeping_chip_buffers(self):
        controller = make_ta()
        released = controller.admit(make_stream(), make_chip(), 100.0)
        assert released == []
        assert controller.pending_count() == 1

    def test_zero_mu_never_buffers(self):
        controller = make_ta(mu=0.0)
        released = controller.admit(make_stream(), make_chip(), 100.0)
        assert len(released) == 1

    def test_k_distinct_buses_release(self):
        controller = make_ta(mu=1000.0)
        chip = make_chip()
        assert controller.admit(make_stream(bus=0), chip, 0.0) == []
        assert controller.admit(make_stream(bus=1), chip, 1.0) == []
        released = controller.admit(make_stream(bus=2), chip, 2.0)
        assert len(released) == 3
        assert controller.releases_by_gather == 1
        assert controller.pending_count() == 0

    def test_same_bus_does_not_count_twice(self):
        controller = make_ta(mu=1e6)
        chip = make_chip()
        for _ in range(3):
            released = controller.admit(make_stream(bus=0), chip, 0.0)
        assert released == []
        assert controller.pending_count() == 3

    def test_pass_through_takes_riders(self):
        controller = make_ta(mu=1e6)
        sleeping = make_chip()
        controller.admit(make_stream(bus=0), sleeping, 0.0)
        active = make_chip(asleep=False)
        active.chip_id = 0  # same chip, now active
        released = controller.admit(make_stream(bus=1), active, 10.0)
        assert len(released) == 2

    def test_epoch_deadline_release(self):
        arrived = {"count": 0.0}
        controller = make_ta(mu=10.0, arrived=lambda: arrived["count"])
        chip = make_chip()
        stream = make_stream(arrival=0.0, n_req=1024)
        assert controller.admit(stream, chip, 0.0) == []
        # Way past the stream's allowance: the epoch must release it.
        releases = controller.on_epoch(1e9)
        assert 0 in releases
        assert controller.releases_by_deadline == 1

    def test_tiny_budget_passes_through(self):
        """A transfer whose waiting budget is below the epoch resolution
        is not buffered at all (the guarantee could not be honoured)."""
        controller = make_ta(mu=10.0)
        chip = make_chip()
        released = controller.admit(make_stream(n_req=4), chip, 0.0)
        assert len(released) == 1
        assert controller.pending_count() == 0

    def test_epoch_keeps_fresh_streams(self):
        controller = make_ta(mu=1e6, arrived=lambda: 1e6)
        chip = make_chip()
        controller.admit(make_stream(arrival=0.0), chip, 0.0)
        releases = controller.on_epoch(10.0)
        assert releases == {}

    def test_drain_releases_everything(self):
        controller = make_ta(mu=1e6)
        chip = make_chip()
        controller.admit(make_stream(bus=0), chip, 0.0)
        controller.admit(make_stream(bus=1), chip, 0.0)
        releases = controller.drain(100.0)
        assert len(releases[0]) == 2
        assert controller.pending_count() == 0

    def test_wake_and_proc_charges(self):
        controller = make_ta(mu=10.0)
        chip = make_chip()
        controller.admit(make_stream(), chip, 0.0)
        before = controller.slack.total_charges
        controller.on_wake(0, 96.0, 1.0, pending_requests=2)
        controller.on_proc_access(0, 32.0, dma_streams_at_chip=1, now=2.0)
        # wake: 96*2, proc: 32*(1 pending + 1 in service) = 64.
        assert controller.slack.total_charges - before == pytest.approx(
            192.0 + 64.0)

    def test_proc_charge_skipped_when_nothing_pending(self):
        controller = make_ta(mu=10.0)
        before = controller.slack.total_charges
        controller.on_proc_access(5, 32.0, dma_streams_at_chip=0, now=0.0)
        assert controller.slack.total_charges == before

    def test_stats_keys(self):
        controller = make_ta()
        stats = controller.stats()
        for key in ("transfers_buffered", "releases_by_gather",
                    "releases_by_deadline", "slack_charges"):
            assert key in stats
