"""Units for the per-page popularity tracker (Section 4.2.1)."""

import pytest

from repro.core.popularity import PopularityTracker
from repro.errors import ConfigurationError


class TestRecording:
    def test_counts_accumulate(self):
        tracker = PopularityTracker()
        tracker.record(5, 3)
        tracker.record(5, 2)
        assert tracker.count(5) == 5
        assert tracker.count(6) == 0

    def test_saturation(self):
        tracker = PopularityTracker(counter_bits=4)
        tracker.record(1, 100)
        assert tracker.count(1) == 15

    def test_zero_or_negative_ignored(self):
        tracker = PopularityTracker()
        tracker.record(1, 0)
        tracker.record(1, -5)
        assert tracker.count(1) == 0

    def test_total_recorded(self):
        tracker = PopularityTracker()
        tracker.record(1, 3)
        tracker.record(2, 4)
        assert tracker.total_recorded == 7


class TestAging:
    def test_shift_halves(self):
        tracker = PopularityTracker(aging_shift=1)
        tracker.record(1, 8)
        tracker.age()
        assert tracker.count(1) == 4

    def test_shift_drops_ones(self):
        tracker = PopularityTracker(aging_shift=1)
        tracker.record(1, 1)
        tracker.age()
        assert tracker.count(1) == 0
        assert tracker.ranked_pages() == []

    def test_reset_mode(self):
        tracker = PopularityTracker(aging_shift=0)
        tracker.record(1, 200)
        tracker.age()
        assert tracker.count(1) == 0


class TestRanking:
    def test_ranked_by_count_then_page(self):
        tracker = PopularityTracker()
        tracker.record(3, 5)
        tracker.record(1, 10)
        tracker.record(2, 5)
        assert tracker.ranked_pages() == [(1, 10), (2, 5), (3, 5)]

    def test_total_count(self):
        tracker = PopularityTracker()
        tracker.record(1, 5)
        tracker.record(2, 7)
        assert tracker.total_count() == 12


class TestHistogram:
    def test_histogram_monotone(self):
        tracker = PopularityTracker()
        for page in range(100):
            tracker.record(page, 100 - page)
        points = tracker.histogram(bins=10)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert points[-1][1] == pytest.approx(1.0)

    def test_skew_visible(self):
        """A 20-80-style workload shows up in the histogram."""
        tracker = PopularityTracker(counter_bits=16)
        for page in range(10):
            tracker.record(page, 80)
        for page in range(10, 100):
            tracker.record(page, 2)
        points = dict(tracker.histogram(bins=10))
        assert points[0.1] == pytest.approx(800 / 980, abs=0.01)

    def test_empty(self):
        assert PopularityTracker().histogram() == []


class TestValidation:
    def test_bad_counter_bits(self):
        with pytest.raises(ConfigurationError):
            PopularityTracker(counter_bits=0)

    def test_bad_aging(self):
        with pytest.raises(ConfigurationError):
            PopularityTracker(aging_shift=-1)
