"""Units for page layouts."""

import pytest

from repro.errors import LayoutError
from repro.memory.address import (
    InterleavedLayout,
    MutableLayout,
    RandomLayout,
    SequentialLayout,
)


class TestSequential:
    def test_fills_chip_by_chip(self):
        layout = SequentialLayout(num_chips=4, pages_per_chip=8)
        assert layout.chip_of(0) == 0
        assert layout.chip_of(7) == 0
        assert layout.chip_of(8) == 1
        assert layout.chip_of(31) == 3

    def test_out_of_range(self):
        layout = SequentialLayout(num_chips=4, pages_per_chip=8)
        with pytest.raises(LayoutError):
            layout.chip_of(32)
        with pytest.raises(LayoutError):
            layout.chip_of(-1)


class TestInterleaved:
    def test_round_robin(self):
        layout = InterleavedLayout(num_chips=4, pages_per_chip=8)
        assert [layout.chip_of(p) for p in range(6)] == [0, 1, 2, 3, 0, 1]


class TestRandom:
    def test_deterministic_per_seed(self):
        a = RandomLayout(4, 8, seed=42)
        b = RandomLayout(4, 8, seed=42)
        assert [a.chip_of(p) for p in range(32)] == \
               [b.chip_of(p) for p in range(32)]

    def test_different_seeds_differ(self):
        a = RandomLayout(8, 64, seed=1)
        b = RandomLayout(8, 64, seed=2)
        assert [a.chip_of(p) for p in range(512)] != \
               [b.chip_of(p) for p in range(512)]

    def test_capacity_respected(self):
        layout = RandomLayout(4, 8, seed=0)
        counts = [0] * 4
        for page in range(32):
            counts[layout.chip_of(page)] += 1
        assert counts == [8, 8, 8, 8]


class TestMutable:
    @pytest.fixture
    def layout(self):
        return MutableLayout(SequentialLayout(num_chips=4, pages_per_chip=8))

    def test_starts_full(self, layout):
        assert layout.occupancy(0) == 8
        assert layout.free_frames(0) == 0

    def test_move_updates_occupancy(self):
        # Build a layout with head-room by moving pages off chip 0 first.
        layout = MutableLayout(SequentialLayout(4, 8))
        layout.swap(0, 8)  # page 0 <-> page 8 (chips 0 and 1)
        assert layout.chip_of(0) == 1
        assert layout.chip_of(8) == 0
        assert layout.occupancy(0) == 8  # swaps conserve occupancy

    def test_move_rejects_full_destination(self, layout):
        with pytest.raises(LayoutError):
            layout.move(0, 1)

    def test_move_to_same_chip_is_noop(self, layout):
        assert layout.move(0, 0) == 0
        assert layout.occupancy(0) == 8

    def test_swap_is_capacity_safe(self, layout):
        layout.swap(0, 31)
        assert layout.chip_of(0) == 3
        assert layout.chip_of(31) == 0
        assert all(layout.occupancy(c) == 8 for c in range(4))

    def test_move_out_of_range_chip(self, layout):
        with pytest.raises(LayoutError):
            layout.move(0, 9)

    def test_occupancy_out_of_range(self, layout):
        with pytest.raises(LayoutError):
            layout.occupancy(17)
