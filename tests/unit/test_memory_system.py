"""Units for the aggregate memory system."""

import pytest

from repro.config import MemoryConfig
from repro.energy.policies import default_dynamic_policy
from repro.errors import LayoutError
from repro.memory.address import InterleavedLayout, SequentialLayout
from repro.memory.system import MemorySystem

MB = 1 << 20


@pytest.fixture
def config():
    return MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192)


@pytest.fixture
def policy(config):
    return default_dynamic_policy(config.power_model)


class TestConstruction:
    def test_one_chip_object_per_chip(self, config, policy):
        system = MemorySystem(config, policy)
        assert len(system.chips) == 4
        assert [c.chip_id for c in system.chips] == [0, 1, 2, 3]

    def test_default_layout_is_random(self, config, policy):
        system = MemorySystem(config, policy)
        chips = {system.layout.chip_of(p) for p in range(64)}
        assert len(chips) > 1

    def test_custom_layout(self, config, policy):
        layout = SequentialLayout(4, config.pages_per_chip)
        system = MemorySystem(config, policy, layout=layout)
        assert system.chip_of_page(0).chip_id == 0
        assert system.chip_of_page(config.pages_per_chip).chip_id == 1

    def test_layout_shape_mismatch_rejected(self, config, policy):
        with pytest.raises(LayoutError):
            MemorySystem(config, policy,
                         layout=SequentialLayout(8, config.pages_per_chip))
        with pytest.raises(LayoutError):
            MemorySystem(config, policy, layout=InterleavedLayout(4, 2))


class TestAggregation:
    def test_totals_sum_chips(self, config, policy):
        system = MemorySystem(config, policy)
        system.advance_all(1_000_000.0)
        total = system.total_energy()
        assert total.total == pytest.approx(
            sum(c.energy.total for c in system.chips))
        time = system.total_time()
        assert time.total == pytest.approx(4 * 1_000_000.0)

    def test_wake_counting(self, config, policy):
        system = MemorySystem(config, policy)
        system.advance_all(100_000.0)
        system.chips[0].wake(100_000.0)
        system.chips[2].wake(100_000.0)
        assert system.total_wakes() == 2

    def test_start_asleep_flag(self, config, policy):
        asleep = MemorySystem(config, policy, start_asleep=True)
        awake = MemorySystem(config, policy, start_asleep=False)
        assert asleep.chips[0].is_low_power(0.0)
        assert not awake.chips[0].is_low_power(0.0)
