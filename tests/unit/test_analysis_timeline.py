"""Units for the timeline recorder and heatmap renderer."""

import pytest

from repro import simulate
from repro.analysis.timeline import (
    SHADES,
    activity_share,
    bucketize,
    render_heatmap,
    render_row,
)
from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.errors import ConfigurationError
from repro.traces.records import DMATransfer
from repro.traces.trace import Trace

MB = 1 << 20


class TestBucketize:
    def test_full_coverage(self):
        loads = bucketize([(0.0, 100.0, 1.0)], 0.0, 100.0, 4)
        assert loads == pytest.approx([1.0, 1.0, 1.0, 1.0])

    def test_partial_interval(self):
        loads = bucketize([(0.0, 50.0, 1.0)], 0.0, 100.0, 4)
        assert loads == pytest.approx([1.0, 1.0, 0.0, 0.0])

    def test_fractional_load(self):
        loads = bucketize([(0.0, 100.0, 1 / 3)], 0.0, 100.0, 2)
        assert loads == pytest.approx([1 / 3, 1 / 3])

    def test_out_of_range_clipped(self):
        loads = bucketize([(-50.0, 150.0, 1.0)], 0.0, 100.0, 2)
        assert loads == pytest.approx([1.0, 1.0])

    def test_caps_at_one(self):
        loads = bucketize([(0.0, 100.0, 1.0), (0.0, 100.0, 1.0)],
                          0.0, 100.0, 1)
        assert loads == [1.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bucketize([], 0.0, 100.0, 0)
        with pytest.raises(ConfigurationError):
            bucketize([], 100.0, 0.0, 4)

    def test_empty_interval_list(self):
        assert bucketize([], 0.0, 100.0, 4) == [0.0, 0.0, 0.0, 0.0]

    def test_zero_width_window_rejected(self):
        with pytest.raises(ConfigurationError):
            bucketize([(0.0, 10.0, 1.0)], 50.0, 50.0, 4)

    def test_interval_entirely_past_window(self):
        loads = bucketize([(200.0, 300.0, 1.0)], 0.0, 100.0, 2)
        assert loads == [0.0, 0.0]

    def test_interval_entirely_before_window(self):
        loads = bucketize([(-300.0, -200.0, 1.0)], 0.0, 100.0, 2)
        assert loads == [0.0, 0.0]

    def test_zero_width_interval_contributes_nothing(self):
        loads = bucketize([(50.0, 50.0, 1.0)], 0.0, 100.0, 2)
        assert loads == [0.0, 0.0]


class TestRendering:
    def test_row_uses_shades(self):
        row = render_row([(0.0, 50.0, 1.0)], 0.0, 100.0, 10)
        assert len(row) == 10
        assert row[0] == SHADES[-1]
        assert row[-1] == SHADES[0]

    def test_heatmap_rows_per_chip(self):
        heatmap = render_heatmap(
            {0: [(0.0, 10.0, 1.0)], 3: []}, duration_cycles=100.0,
            width=20, title="T")
        lines = heatmap.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("chip 0")
        assert lines[2].startswith("chip 3")

    def test_empty_heatmap(self):
        assert "no timeline" in render_heatmap({}, 100.0)

    def test_activity_share(self):
        shares = activity_share({0: [(0.0, 25.0, 0.5)], 1: []}, 100.0)
        assert shares[0] == pytest.approx(0.25)
        assert shares[1] == 0.0

    def test_activity_share_empty_intervals(self):
        assert activity_share({0: []}, 100.0) == {0: 0.0}

    def test_activity_share_zero_duration(self):
        shares = activity_share({0: [(0.0, 25.0, 0.5)]}, 0.0)
        assert shares[0] == 0.0

    def test_activity_share_interval_past_duration(self):
        # An interval starting at/after the horizon is excluded; one
        # straddling it is clipped to the horizon.
        shares = activity_share(
            {0: [(200.0, 300.0, 1.0)], 1: [(50.0, 150.0, 1.0)]}, 100.0)
        assert shares[0] == 0.0
        assert shares[1] == pytest.approx(0.5)


class TestRecording:
    @pytest.fixture
    def config(self):
        return SimulationConfig(
            memory=MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192),
            buses=BusConfig(count=3))

    def test_simulate_records(self, config):
        trace = Trace(name="t", records=[
            DMATransfer(time=1000.0, page=0, size_bytes=8192)],
            duration_cycles=100_000.0)
        result = simulate(trace, config=config, record_timeline=True)
        assert result.timeline is not None
        busy_chips = [cid for cid, iv in result.timeline.items() if iv]
        assert len(busy_chips) == 1
        intervals = result.timeline[busy_chips[0]]
        total = sum(t1 - t0 for t0, t1, _ in intervals)
        assert total == pytest.approx(1024 * 12.0, rel=0.05)

    def test_off_by_default(self, config):
        trace = Trace(name="t", records=[
            DMATransfer(time=0.0, page=0, size_bytes=8192)],
            duration_cycles=50_000.0)
        result = simulate(trace, config=config)
        assert result.timeline is None

    def test_precise_engine_rejects(self, config):
        trace = Trace(name="t", records=[], duration_cycles=10.0)
        with pytest.raises(ConfigurationError):
            simulate(trace, config=config, engine="precise",
                     record_timeline=True)
