"""Units for the energy/time breakdown accumulators."""

import pytest

from repro.energy.accounting import EnergyBreakdown, TimeBreakdown
from repro.errors import SimulationError


class TestEnergyBreakdown:
    def test_total_is_sum_of_buckets(self):
        e = EnergyBreakdown(serving_dma=1.0, serving_proc=0.5, idle_dma=2.0,
                            idle_threshold=0.1, transition=0.2,
                            low_power=0.7, migration=0.3)
        assert e.total == pytest.approx(4.8)
        assert e.serving == pytest.approx(1.5)

    def test_add_accumulates(self):
        a = EnergyBreakdown(serving_dma=1.0)
        b = EnergyBreakdown(serving_dma=2.0, idle_dma=3.0)
        a.add(b)
        assert a.serving_dma == 3.0
        assert a.idle_dma == 3.0

    def test_plus_operator_is_pure(self):
        a = EnergyBreakdown(serving_dma=1.0)
        b = EnergyBreakdown(idle_dma=2.0)
        c = a + b
        assert c.serving_dma == 1.0 and c.idle_dma == 2.0
        assert a.idle_dma == 0.0 and b.serving_dma == 0.0

    def test_fractions_sum_to_one(self):
        e = EnergyBreakdown(serving_dma=1.0, idle_dma=3.0)
        fractions = e.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["idle_dma"] == pytest.approx(0.75)

    def test_fractions_empty_when_zero(self):
        assert EnergyBreakdown().fractions() == {}

    def test_validate_rejects_negative(self):
        e = EnergyBreakdown(serving_dma=-1.0)
        with pytest.raises(SimulationError):
            e.validate()

    def test_validate_tolerates_tiny_negatives(self):
        e = EnergyBreakdown(serving_dma=1.0, idle_dma=-1e-15)
        e.validate()  # float dust is fine

    def test_as_dict_includes_total(self):
        d = EnergyBreakdown(serving_dma=1.0).as_dict()
        assert d["total"] == 1.0
        assert d["serving_dma"] == 1.0

    def test_copy_is_independent(self):
        a = EnergyBreakdown(serving_dma=1.0)
        b = a.copy()
        b.serving_dma = 5.0
        assert a.serving_dma == 1.0


class TestTimeBreakdown:
    def test_active_dma_total(self):
        t = TimeBreakdown(serving_dma=4.0, idle_dma=8.0)
        assert t.active_dma_total == 12.0

    def test_utilization_factor_paper_example(self):
        """Section 5.3's example: 3:1 ratio, no interleaving -> uf = 0.33."""
        t = TimeBreakdown(serving_dma=4.0, idle_dma=8.0)
        assert t.utilization_factor() == pytest.approx(1 / 3)

    def test_utilization_factor_bounds(self):
        assert TimeBreakdown().utilization_factor() == 0.0
        full = TimeBreakdown(serving_dma=10.0)
        assert full.utilization_factor() == 1.0

    def test_proc_serving_counts_as_useful(self):
        """Processor accesses consuming active-idle cycles raise uf."""
        without = TimeBreakdown(serving_dma=4.0, idle_dma=8.0)
        with_proc = TimeBreakdown(serving_dma=4.0, idle_dma=4.0,
                                  serving_proc=4.0)
        assert with_proc.utilization_factor() > without.utilization_factor()

    def test_add(self):
        a = TimeBreakdown(serving_dma=1.0)
        a.add(TimeBreakdown(serving_dma=2.0, low_power=5.0))
        assert a.serving_dma == 3.0
        assert a.low_power == 5.0

    def test_validate_rejects_negative(self):
        with pytest.raises(SimulationError):
            TimeBreakdown(idle_dma=-5.0).validate()
