"""Units for the synthetic and OLTP trace front-ends."""

import pytest

from repro.errors import ConfigurationError
from repro.traces.oltp import oltp_database_trace, oltp_storage_trace
from repro.traces.stats import characterize, popularity_cdf, top_fraction_access_share
from repro.traces.synthetic import synthetic_database_trace, synthetic_storage_trace


class TestSyntheticStorage:
    def test_paper_recipe(self):
        """Section 5.1: Zipf alpha=1 popularity, Poisson 100 transfers/ms."""
        trace = synthetic_storage_trace(duration_ms=10.0, seed=4)
        stats = characterize(trace)
        assert stats.transfers_per_ms == pytest.approx(100.0, rel=0.15)
        assert stats.proc_accesses_per_ms == 0.0
        assert trace.metadata["zipf_alpha"] == 1.0

    def test_intensity_knob(self):
        low = synthetic_storage_trace(duration_ms=5.0, transfers_per_ms=25.0)
        high = synthetic_storage_trace(duration_ms=5.0, transfers_per_ms=400.0)
        assert len(high.transfers) > 10 * len(low.transfers)

    def test_disk_fraction(self):
        trace = synthetic_storage_trace(duration_ms=10.0, disk_fraction=0.27)
        stats = characterize(trace)
        share = stats.disk_transfers_per_ms / stats.transfers_per_ms
        assert share == pytest.approx(0.27, abs=0.05)

    def test_each_transfer_has_client(self):
        trace = synthetic_storage_trace(duration_ms=2.0)
        assert len(trace.clients) == len(trace.transfers)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic_storage_trace(disk_fraction=1.5)
        with pytest.raises(ConfigurationError):
            synthetic_storage_trace(write_fraction=-0.1)


class TestSyntheticDatabase:
    def test_paper_recipe(self):
        """100 transfers/ms with 100 proc accesses each = 10,000/ms."""
        trace = synthetic_database_trace(duration_ms=10.0, seed=4)
        stats = characterize(trace)
        assert stats.transfers_per_ms == pytest.approx(100.0, rel=0.15)
        assert stats.proc_accesses_per_transfer == pytest.approx(100.0, abs=2)

    def test_proc_sweep_axis(self):
        """The Figure 9 knob injects exact per-transfer access counts."""
        for count in (0, 50, 500):
            trace = synthetic_database_trace(
                duration_ms=2.0, proc_accesses_per_transfer=count)
            stats = characterize(trace)
            assert stats.proc_accesses_per_transfer == pytest.approx(
                count, abs=1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic_database_trace(proc_accesses_per_transfer=-1)
        with pytest.raises(ConfigurationError):
            synthetic_database_trace(burst_size=0)


class TestOLTPFrontends:
    def test_storage_name_and_duration(self):
        trace = oltp_storage_trace(duration_ms=5.0)
        assert trace.name == "OLTP-St"
        assert trace.duration_cycles == pytest.approx(5.0 * 1.6e6, rel=0.2)

    def test_database_name(self):
        trace = oltp_database_trace(duration_ms=5.0)
        assert trace.name == "OLTP-Db"


class TestStats:
    def test_popularity_cdf_monotone(self):
        trace = synthetic_storage_trace(duration_ms=5.0)
        cdf = popularity_cdf(trace, points=20)
        ys = [y for _, y in cdf]
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_zipf1_more_skewed_than_uniformish(self):
        skewed = synthetic_storage_trace(duration_ms=5.0, zipf_alpha=1.0)
        flat = synthetic_storage_trace(duration_ms=5.0, zipf_alpha=0.1)
        assert (top_fraction_access_share(skewed, 0.2)
                > top_fraction_access_share(flat, 0.2))

    def test_characterize_empty(self):
        from repro.traces.trace import Trace

        stats = characterize(Trace(name="empty"))
        assert stats.transfers == 0
        assert stats.top20_access_fraction == 0.0

    def test_popularity_cdf_empty(self):
        from repro.traces.trace import Trace

        assert popularity_cdf(Trace(name="empty")) == []
