"""Units for the plain-text chart renderers."""

import pytest

from repro.analysis.charts import bar_chart, line_chart, savings_chart
from repro.errors import ConfigurationError


class TestBarChart:
    def test_bars_scale(self):
        text = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_negative_values_marked(self):
        text = bar_chart({"loss": -0.5, "gain": 1.0}, width=10)
        assert "-" in text.splitlines()[0]

    def test_title_and_unit(self):
        text = bar_chart({"x": 3.0}, title="T", unit="%")
        assert text.startswith("T")
        assert "3%" in text

    def test_empty(self):
        assert "(no data)" in bar_chart({})

    def test_zero_values(self):
        text = bar_chart({"a": 0.0})
        assert "#" not in text

    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            bar_chart({"a": 1.0}, width=0)


class TestLineChart:
    def test_grid_dimensions(self):
        text = line_chart([0, 1, 2], [0, 1, 4], height=5, width=20)
        rows = [l for l in text.splitlines() if l.startswith("|")]
        assert len(rows) == 5

    def test_extremes_plotted(self):
        text = line_chart([0, 10], [0, 1], height=4, width=10)
        rows = [l for l in text.splitlines() if l.startswith("|")]
        assert rows[0][-1] == "*" or "*" in rows[0]  # max at top
        assert "*" in rows[-1]                        # min at bottom

    def test_labels(self):
        text = line_chart([1, 2], [3, 4], x_label="cp", y_label="savings")
        assert "cp" in text and "savings" in text

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            line_chart([1], [1, 2])

    def test_empty(self):
        assert "(no data)" in line_chart([], [])

    def test_flat_series(self):
        text = line_chart([0, 1], [5, 5], height=3, width=8)
        assert "*" in text


class TestSavingsChart:
    def test_percent_scaling(self):
        text = savings_chart({0.1: 0.25}, title="S")
        assert "25" in text

    def test_sorted_by_x(self):
        text = savings_chart({0.3: 0.1, 0.1: 0.2}, title="S")
        lines = text.splitlines()[1:]
        assert lines[0].startswith("0.1")
