"""Units for the metrics registry, report, and text rendering."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    MetricsReport,
    percentile,
    render_metrics,
)


class TestInstruments:
    def test_counter(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4.0)
        assert counter.value == 5.0

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram(self):
        hist = Histogram()
        for v in (4.0, 1.0, 3.0, 2.0):
            hist.record(v)
        assert hist.count == 4
        digest = hist.summary()
        assert digest.count == 4
        assert digest.min == 1.0
        assert digest.max == 4.0
        assert digest.mean == pytest.approx(2.5)
        assert digest.p50 == pytest.approx(2.5)

    def test_empty_histogram_summary(self):
        digest = Histogram().summary()
        assert digest == HistogramSummary()
        assert digest.count == 0


class TestPercentile:
    def test_empty_and_singleton(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0

    def test_interpolation(self):
        ordered = [0.0, 10.0]
        assert percentile(ordered, 0.5) == pytest.approx(5.0)
        assert percentile(ordered, 0.9) == pytest.approx(9.0)

    def test_endpoints(self):
        ordered = [1.0, 2.0, 3.0]
        assert percentile(ordered, 0.0) == 1.0
        assert percentile(ordered, 1.0) == 3.0


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kinds_are_namespaced_separately(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.gauge("x").set(9.0)
        report = registry.report()
        assert report.counters["x"] == 1.0
        assert report.gauges["x"] == 9.0

    def test_report_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("sim.requests").inc(12)
        registry.gauge("dma.service_bound").set(42.0)
        registry.histogram("ta.batch_size").record(2.0)
        report = registry.report(
            chip_residency={0: {"low_power": 10.0, "serving_dma": 30.0}},
            transitions={"active->nap": 3},
        )
        assert report.counters == {"sim.requests": 12.0}
        assert report.gauges == {"dma.service_bound": 42.0}
        assert report.histograms["ta.batch_size"].count == 1
        assert report.transitions == {"active->nap": 3}

    def test_report_is_a_snapshot_not_a_view(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        report = registry.report()
        counter.inc()
        assert report.counters["c"] == 1.0


class TestMetricsReport:
    def test_residency_shares(self):
        report = MetricsReport(
            chip_residency={0: {"serving_dma": 30.0, "low_power": 70.0}})
        shares = report.residency_shares(0)
        assert shares["serving_dma"] == pytest.approx(0.3)
        assert shares["low_power"] == pytest.approx(0.7)

    def test_residency_shares_zero_total(self):
        report = MetricsReport(chip_residency={0: {"low_power": 0.0}})
        assert report.residency_shares(0) == {"low_power": 0.0}

    def test_residency_shares_unknown_chip(self):
        assert MetricsReport().residency_shares(99) == {}

    def test_merge_counters(self):
        report = MetricsReport(counters={"cache.hits": 2.0})
        report.merge_counters({"cache.hits": 3.0, "cache.misses": 1.0})
        assert report.counters == {"cache.hits": 5.0, "cache.misses": 1.0}


class TestRenderMetrics:
    def test_empty_report(self):
        assert render_metrics(MetricsReport()) == "(no metrics recorded)"

    def test_sections_present(self):
        registry = MetricsRegistry()
        registry.counter("sim.requests").inc(7)
        registry.gauge("dma.service_bound").set(1.25)
        registry.histogram("ta.batch_size").record(4.0)
        report = registry.report(
            chip_residency={1: {"serving_dma": 25.0, "low_power": 75.0}},
            transitions={"active->nap": 2},
        )
        text = render_metrics(report, title="demo run")
        assert text.startswith("demo run")
        assert "counters:" in text
        assert "sim.requests" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "n=1" in text
        assert "power transitions:" in text
        assert "active->nap" in text
        assert "per-chip state residency" in text
        assert "75.0%" in text

    def test_empty_histogram_rendered(self):
        registry = MetricsRegistry()
        registry.histogram("never.recorded")
        assert "(empty)" in render_metrics(registry.report())
