"""Units for the bus model (FIFO and fair sharing)."""

import pytest

from repro.energy.rdram import rdram_1600_model
from repro.errors import ConfigurationError, SimulationError
from repro.io.bus import FluidBus
from repro.io.dma import FluidStream, StreamKind
from repro import units


def make_stream(bus=0, chip=0):
    return FluidStream(kind=StreamKind.DMA, chip_id=chip, total_work=4096.0,
                       demand=1 / 3, bus_id=bus)


@pytest.fixture
def fifo_bus():
    return FluidBus(0, units.PCIX_BANDWIDTH, rdram_1600_model())


@pytest.fixture
def fair_bus():
    return FluidBus(0, units.PCIX_BANDWIDTH, rdram_1600_model(),
                    sharing="fair")


class TestFullShare:
    def test_pcix_demand_is_one_third(self, fifo_bus):
        assert fifo_bus.full_share_demand == pytest.approx(1 / 3, abs=0.01)

    def test_fast_bus_capped_at_one(self):
        bus = FluidBus(0, 6.4e9, rdram_1600_model())
        assert bus.full_share_demand == 1.0


class TestFifo:
    def test_first_transfer_granted(self, fifo_bus):
        s = make_stream()
        assert fifo_bus.enqueue(s) is True
        assert fifo_bus.current is s

    def test_second_transfer_queues(self, fifo_bus):
        a, b = make_stream(), make_stream()
        fifo_bus.enqueue(a)
        assert fifo_bus.enqueue(b) is False
        assert list(fifo_bus.queue) == [b]
        assert fifo_bus.max_queue_depth == 1

    def test_finish_grants_next(self, fifo_bus):
        a, b = make_stream(), make_stream()
        fifo_bus.enqueue(a)
        fifo_bus.enqueue(b)
        assert fifo_bus.finish(a) is b
        assert fifo_bus.current is b

    def test_finish_last_empties(self, fifo_bus):
        a = make_stream()
        fifo_bus.enqueue(a)
        assert fifo_bus.finish(a) is None
        assert fifo_bus.current is None

    def test_finish_queued_stream_removes_it(self, fifo_bus):
        a, b = make_stream(), make_stream()
        fifo_bus.enqueue(a)
        fifo_bus.enqueue(b)
        assert fifo_bus.finish(b) is None
        assert not fifo_bus.queue

    def test_fifo_demand_is_constant(self, fifo_bus):
        fifo_bus.enqueue(make_stream())
        fifo_bus.enqueue(make_stream())
        assert fifo_bus.member_demand() == pytest.approx(
            fifo_bus.full_share_demand)
        assert fifo_bus.refresh_demands() == set()

    def test_counts_transfers(self, fifo_bus):
        for _ in range(3):
            s = make_stream()
            fifo_bus.enqueue(s)
        assert fifo_bus.transfers_carried == 3


class TestFair:
    def test_all_admitted_immediately(self, fair_bus):
        a, b = make_stream(), make_stream()
        assert fair_bus.enqueue(a) is True
        assert fair_bus.enqueue(b) is True
        assert fair_bus.members == {a, b}

    def test_demand_splits(self, fair_bus):
        a, b = make_stream(chip=1), make_stream(chip=2)
        fair_bus.enqueue(a)
        fair_bus.enqueue(b)
        touched = fair_bus.refresh_demands()
        assert touched == {1, 2}
        assert a.demand == pytest.approx(fair_bus.full_share_demand / 2)

    def test_finish_restores_demand(self, fair_bus):
        a, b = make_stream(chip=1), make_stream(chip=2)
        fair_bus.enqueue(a)
        fair_bus.enqueue(b)
        fair_bus.refresh_demands()
        fair_bus.finish(a)
        fair_bus.refresh_demands()
        assert b.demand == pytest.approx(fair_bus.full_share_demand)


class TestValidation:
    def test_wrong_bus_rejected(self, fifo_bus):
        with pytest.raises(SimulationError):
            fifo_bus.enqueue(make_stream(bus=1))

    def test_non_dma_rejected(self, fifo_bus):
        proc = FluidStream(kind=StreamKind.PROC, chip_id=0,
                           total_work=32.0, demand=1.0, bus_id=0)
        with pytest.raises(SimulationError):
            fifo_bus.enqueue(proc)

    def test_unknown_sharing_rejected(self):
        with pytest.raises(ConfigurationError):
            FluidBus(0, 1e9, rdram_1600_model(), sharing="priority")
