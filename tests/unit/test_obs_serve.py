"""Units for the watch dashboard HTTP server (repro.obs.serve) and the
HTML panel renderer (repro.obs.dashboard)."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.obs.dashboard import (
    decimate,
    low_power_share,
    render_page,
    render_panels,
)
from repro.obs.serve import TelemetryServer
from repro.obs.telemetry import (
    TelemetryConfig,
    TelemetrySampler,
    TelemetrySnapshot,
    TelemetryStore,
)
from repro.sim.fluid import FluidEngine
from repro.traces.synthetic import synthetic_storage_trace


def _get(url, timeout=5):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


@pytest.fixture(scope="module")
def finished_sampler():
    """A sampler that rode one short dma-ta-pl run to completion."""
    trace = synthetic_storage_trace(duration_ms=0.5, transfers_per_ms=60,
                                    seed=3)
    sampler = TelemetrySampler(TelemetryConfig(sample_cycles=5000.0))
    FluidEngine(trace, SimulationConfig().with_mu(2.0),
                technique="dma-ta-pl", telemetry=sampler).run()
    return sampler


@pytest.fixture
def server(finished_sampler):
    server = TelemetryServer(finished_sampler, port=0, title="unit run")
    for exporter in server.exporters:
        exporter.on_bind(finished_sampler.columns)
    snapshot = finished_sampler.store.snapshot()
    server.prometheus.on_sample(snapshot.data[-1], [])
    server.start()
    yield server
    server.stop()


class TestEndpoints:
    def test_ephemeral_port_and_url(self, server):
        assert server.port != 0
        assert server.url == f"http://127.0.0.1:{server.port}/"

    def test_index_serves_dashboard_shell(self, server):
        status, ctype, body = _get(server.url)
        assert status == 200
        assert ctype.startswith("text/html")
        assert "unit run" in body
        assert "EventSource" in body

    def test_panels_fragment(self, server):
        status, _, body = _get(server.url + "panels")
        assert status == 200
        assert body.startswith('<div id="panels">')
        assert "<svg" in body
        assert "sim clock" in body

    def test_data_json(self, server, finished_sampler):
        status, ctype, body = _get(server.url + "data.json")
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["columns"] == list(finished_sampler.columns)
        assert len(payload["rows"]) == len(finished_sampler.store.snapshot())
        assert payload["stride"] >= 1

    def test_metrics_exposition(self, server):
        status, ctype, body = _get(server.url + "metrics")
        assert status == 200
        assert "version=0.0.4" in ctype
        assert "# TYPE repro_sim_cycles gauge" in body
        assert "# TYPE repro_requests_total counter" in body
        assert body.endswith("\n")

    def test_unknown_path_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "nope")
        assert excinfo.value.code == 404

    def test_sse_delivers_published_samples(self, server):
        lines = []
        done = threading.Event()

        def reader():
            request = urllib.request.urlopen(server.url + "events",
                                             timeout=5)
            for raw in request:
                lines.append(raw.decode("utf-8"))
                if len(lines) >= 3:
                    break
            done.set()

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        # Wait until the subscriber is registered, then publish.
        for _ in range(100):
            if server.sse._subscribers:
                break
            threading.Event().wait(0.01)
        row = np.zeros(len(server.sampler.columns))
        server.sse.on_sample(row, [])
        assert done.wait(timeout=5)
        assert lines[0] == "event: sample\n"
        assert '"ts": 0.0' in lines[1]

    def test_unbound_sampler_degrades_gracefully(self):
        server = TelemetryServer(TelemetrySampler(), port=0)
        server.start()
        try:
            _, _, panels = _get(server.url + "panels")
            assert "not bound" in panels
            payload = json.loads(_get(server.url + "data.json")[2])
            assert payload == {"columns": [], "rows": [], "ticks": 0}
        finally:
            server.stop()

    def test_stop_is_clean_and_sse_wakes(self, server):
        # stop() runs in the fixture teardown; here just confirm that a
        # second explicit stop doesn't hang or raise.
        pass


class TestDashboardRendering:
    def _snapshot(self, rows):
        columns = ("ts", "power_w", "chip0.low_power", "bus0.queue_depth")
        store = TelemetryStore(columns, capacity=512)
        for row in rows:
            store.append(np.asarray(row, dtype=float))
        return store.snapshot()

    def test_decimate_keeps_ends_and_bounds_length(self):
        values = list(range(1000))
        out = decimate(values, limit=100)
        assert len(out) <= 101
        assert out[0] == 0 and out[-1] == 999

    def test_decimate_short_series_untouched(self):
        assert decimate([1.0, 2.0], limit=100) == [1.0, 2.0]

    def test_low_power_share_fraction(self):
        snapshot = self._snapshot([[100.0, 1.0, 50.0, 0.0],
                                   [200.0, 1.0, 150.0, 0.0]])
        share = low_power_share(snapshot)
        assert share == [pytest.approx(0.5), pytest.approx(0.75)]

    def test_render_panels_empty_snapshot(self):
        snapshot = self._snapshot([])
        body = render_panels(snapshot, [])
        assert "waiting for the first sample" in body

    def test_render_panels_escapes_anomaly_text(self):
        from repro.obs.telemetry import TelemetryAnomaly

        snapshot = self._snapshot([[100.0, 1.0, 50.0, 0.0]])
        anomaly = TelemetryAnomaly(kind="x<y", ts=1.0, sample_index=0,
                                   value=1.0, threshold=0.5,
                                   message="<script>")
        body = render_panels(snapshot, [anomaly])
        assert "<script>" not in body
        assert "&lt;script&gt;" in body
        assert "Bus 0 queue depth" in body

    def test_render_page_self_contained(self):
        page = render_page("my <run>", refresh_ms=250)
        assert page.startswith("<!doctype html>")
        assert "my &lt;run&gt;" in page
        assert "src=" not in page  # no external assets
        assert "250" in page
