"""Units for the low-level power-management policies."""

import math

import pytest

from repro.energy.policies import (
    AlwaysOnPolicy,
    DynamicThresholdPolicy,
    StaticPolicy,
    break_even_cycles,
    default_dynamic_policy,
)
from repro.energy.rdram import rdram_1600_model
from repro.energy.states import PowerState
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return rdram_1600_model()


class TestBreakEven:
    def test_break_even_values(self, model):
        """Break-even thresholds derived from Table 1.

        Standby ~20 cycles (matching the paper's "20-30 memory cycles"),
        nap ~61, powerdown ~485.
        """
        assert break_even_cycles(model, PowerState.STANDBY) == pytest.approx(
            19.7, abs=0.5)
        assert break_even_cycles(model, PowerState.NAP) == pytest.approx(
            60.7, abs=0.5)
        assert break_even_cycles(model, PowerState.POWERDOWN) == pytest.approx(
            485.2, abs=1.0)

    def test_break_even_monotone_in_depth(self, model):
        values = [break_even_cycles(model, s)
                  for s in (PowerState.STANDBY, PowerState.NAP,
                            PowerState.POWERDOWN)]
        assert values == sorted(values)

    def test_active_break_even_zero(self, model):
        assert break_even_cycles(model, PowerState.ACTIVE) == 0.0

    def test_dma_gap_below_first_threshold(self, model):
        """The 8-cycle gap between DMA-memory requests is below every
        break-even threshold — the root cause of the paper's waste."""
        gap = 12.0 - model.serve_cycles(8)
        assert gap < break_even_cycles(model, PowerState.STANDBY)


class TestAlwaysOn:
    def test_empty_schedule(self, model):
        policy = AlwaysOnPolicy()
        assert policy.schedule(model) == ()
        assert policy.first_threshold(model) == math.inf


class TestStatic:
    def test_immediate_parking(self, model):
        policy = StaticPolicy(state=PowerState.NAP)
        assert policy.schedule(model) == ((0.0, PowerState.NAP),)

    def test_delayed_parking(self, model):
        policy = StaticPolicy(state=PowerState.POWERDOWN, delay_cycles=100.0)
        assert policy.first_threshold(model) == 100.0

    def test_rejects_active(self):
        with pytest.raises(ConfigurationError):
            StaticPolicy(state=PowerState.ACTIVE)

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            StaticPolicy(state=PowerState.NAP, delay_cycles=-1.0)


class TestDynamic:
    def test_default_policy_schedule(self, model):
        policy = default_dynamic_policy(model)
        schedule = policy.schedule(model)
        assert [s for _, s in schedule] == [
            PowerState.STANDBY, PowerState.NAP, PowerState.POWERDOWN]
        thresholds = [t for t, _ in schedule]
        assert thresholds == sorted(thresholds)

    def test_scale(self, model):
        base = default_dynamic_policy(model)
        double = default_dynamic_policy(model, scale=2.0)
        assert double.first_threshold(model) == pytest.approx(
            2 * base.first_threshold(model))

    def test_scale_must_be_positive(self, model):
        with pytest.raises(ConfigurationError):
            default_dynamic_policy(model, scale=0.0)

    def test_from_mapping_orders_by_depth(self):
        policy = DynamicThresholdPolicy.from_mapping({
            PowerState.POWERDOWN: 500.0,
            PowerState.STANDBY: 20.0,
        })
        states = [s for s, _ in policy.thresholds_cycles]
        assert states == [PowerState.STANDBY, PowerState.POWERDOWN]

    def test_rejects_decreasing_thresholds(self):
        with pytest.raises(ConfigurationError):
            DynamicThresholdPolicy(thresholds_cycles=(
                (PowerState.STANDBY, 100.0),
                (PowerState.NAP, 50.0),
            ))

    def test_rejects_non_deepening_states(self):
        with pytest.raises(ConfigurationError):
            DynamicThresholdPolicy(thresholds_cycles=(
                (PowerState.NAP, 10.0),
                (PowerState.STANDBY, 20.0),
            ))

    def test_rejects_active_target(self):
        with pytest.raises(ConfigurationError):
            DynamicThresholdPolicy(thresholds_cycles=(
                (PowerState.ACTIVE, 10.0),))
