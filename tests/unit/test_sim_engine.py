"""Units for the event queue and the result object."""

import pytest

from repro.energy.accounting import EnergyBreakdown, TimeBreakdown
from repro.errors import SimulationError
from repro.sim.engine import EventKind, EventQueue
from repro.sim.results import SimulationResult


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, "b")
        q.push(1.0, EventKind.ARRIVAL, "a")
        assert q.pop()[2] == "a"
        assert q.pop()[2] == "b"

    def test_kind_breaks_ties(self):
        """COMPLETE before ARRIVAL at the same instant."""
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, "arrival")
        q.push(5.0, EventKind.COMPLETE, "complete")
        assert q.pop()[2] == "complete"

    def test_insertion_order_breaks_remaining_ties(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, "first")
        q.push(5.0, EventKind.ARRIVAL, "second")
        assert q.pop()[2] == "first"

    def test_now_advances(self):
        q = EventQueue()
        q.push(7.0, EventKind.EPOCH, None)
        q.pop()
        assert q.now == 7.0

    def test_push_into_past_rejected(self):
        q = EventQueue()
        q.push(10.0, EventKind.EPOCH, None)
        q.pop()
        with pytest.raises(SimulationError):
            q.push(5.0, EventKind.EPOCH, None)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, EventKind.EPOCH, None)
        assert q and len(q) == 1


def make_result(**overrides):
    defaults = dict(
        trace_name="t", technique="baseline", engine="fluid",
        duration_cycles=1000.0,
        energy=EnergyBreakdown(serving_dma=1.0, idle_dma=2.0, low_power=1.0),
        time=TimeBreakdown(serving_dma=4.0, idle_dma=8.0),
        transfers=1, requests=1024, mu=0.0, service_cycles=4.0,
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_energy_and_uf(self):
        r = make_result()
        assert r.energy_joules == pytest.approx(4.0)
        assert r.utilization_factor == pytest.approx(1 / 3)

    def test_savings(self):
        base = make_result()
        better = make_result(
            energy=EnergyBreakdown(serving_dma=1.0, idle_dma=0.5,
                                   low_power=0.5))
        assert better.energy_savings_vs(base) == pytest.approx(0.5)

    def test_avg_degradation(self):
        r = make_result(head_delay_cycles=1024.0, extra_service_cycles=0.0)
        assert r.avg_extra_service_cycles == pytest.approx(1.0)
        assert r.avg_service_degradation == pytest.approx(0.25)

    def test_client_degradation(self):
        base = make_result(client_responses={0: 100.0, 1: 200.0})
        slow = make_result(client_responses={0: 110.0, 1: 220.0})
        assert slow.client_degradation_vs(base) == pytest.approx(0.10)

    def test_client_degradation_uses_shared_requests(self):
        base = make_result(client_responses={0: 100.0})
        other = make_result(client_responses={1: 9999.0, 0: 150.0})
        assert other.client_degradation_vs(base) == pytest.approx(0.5)

    def test_client_degradation_empty(self):
        assert make_result().client_degradation_vs(make_result()) == 0.0

    def test_mean_response(self):
        r = make_result(client_responses={0: 100.0, 1: 300.0})
        assert r.mean_client_response_cycles == 200.0

    def test_summary_contains_key_lines(self):
        r = make_result(mu=5.0, migrations=3)
        text = r.summary()
        assert "idle_dma" in text
        assert "guarantee" in text
        assert "migrations: 3" in text
