"""Units for ``repro bench explain`` (repro.bench.explain): record and
metric resolution, baseline selection, the explain block, and exit
semantics. End-to-end runs use sub-millisecond synthetic traces so the
re-run legs stay fast."""

import json

import pytest

from repro.bench.explain import explain_figure, render_explain
from repro.bench.record import BenchRecord, Metric
from repro.bench.trajectory import append_records, write_json_atomic
from repro.errors import DiffError


def make_record(name="fig5_savings_vs_cplimit", figure="fig5",
                created="2026-08-07T00:00:00+00:00", bench_ms=0.5,
                metrics=()):
    return BenchRecord(
        name=name, figure=figure, created=created,
        meta={"bench_ms": bench_ms, "jobs": 1},
        metrics=list(metrics))


def fig5_metric(value, trace="Synthetic-St", technique="dma-ta",
                cp=0.1, expected=None):
    return Metric(name=f"{trace}/{technique}/cp={cp:g}", value=value,
                  unit="fraction", expected=expected)


@pytest.fixture
def bench_dirs(tmp_path):
    """(results_dir, root) with one candidate record and one committed
    baseline run of the same point at the same duration."""
    results = tmp_path / "results"
    results.mkdir()
    candidate = make_record(metrics=[fig5_metric(0.10, expected=0.06)])
    write_json_atomic(results / f"{candidate.name}.json",
                      candidate.to_dict())
    baseline = make_record(created="2026-08-01T00:00:00+00:00",
                           metrics=[fig5_metric(0.10, expected=0.06)])
    append_records([baseline], root=tmp_path)
    return results, tmp_path


class TestResolution:
    def test_unknown_figure_raises(self, bench_dirs):
        results, root = bench_dirs
        with pytest.raises(DiffError, match="no current record"):
            explain_figure("fig99", results_dir=results, root=root)

    def test_unknown_metric_raises(self, bench_dirs):
        results, root = bench_dirs
        with pytest.raises(DiffError, match="no metric"):
            explain_figure("fig5", metric_name="nope",
                           results_dir=results, root=root)

    def test_non_fig5_metric_shape_raises(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        record = make_record(
            metrics=[Metric(name="groups=2/savings", value=0.1)])
        write_json_atomic(results / f"{record.name}.json",
                          record.to_dict())
        with pytest.raises(DiffError, match="does not map back"):
            explain_figure("fig5", metric_name="groups=2/savings",
                           results_dir=results, root=tmp_path)

    def test_default_metric_is_worst_deviation(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        record = make_record(metrics=[
            fig5_metric(0.061, cp=0.02, expected=0.06),   # tiny deviation
            fig5_metric(0.50, cp=0.3, expected=0.248),    # huge deviation
            fig5_metric(0.9, cp=0.05),                    # untied
        ])
        write_json_atomic(results / f"{record.name}.json",
                          record.to_dict())
        # No baseline trajectory: the explain still resolves the metric
        # before it runs anything; run it for real (sub-ms trace).
        code, explain = explain_figure("fig5", results_dir=results,
                                       root=tmp_path, write=False)
        assert explain["metric"] == "Synthetic-St/dma-ta/cp=0.3"

    def test_missing_bench_ms_raises(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        record = make_record(bench_ms=None,
                             metrics=[fig5_metric(0.1, expected=0.06)])
        record.meta = {}
        write_json_atomic(results / f"{record.name}.json",
                          record.to_dict())
        with pytest.raises(DiffError, match="bench_ms"):
            explain_figure("fig5", results_dir=results, root=tmp_path)


class TestExplainEndToEnd:
    def test_same_duration_baseline_is_identical_exit_zero(self,
                                                           bench_dirs):
        results, root = bench_dirs
        code, explain = explain_figure(
            "fig5", metric_name="Synthetic-St/dma-ta/cp=0.1",
            results_dir=results, root=root)
        assert code == 0
        assert explain["status"] == "identical"
        assert explain["divergence"]["identical"] is True
        # The block landed on the record JSON and still parses.
        obj = json.loads(
            (results / "fig5_savings_vs_cplimit.json").read_text())
        reloaded = BenchRecord.from_dict(obj)
        assert reloaded.explain["status"] == "identical"

    def test_cross_duration_baseline_is_attributed_exit_two(self,
                                                            tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        candidate = make_record(bench_ms=0.25,
                                metrics=[fig5_metric(0.1, expected=0.06)])
        write_json_atomic(results / f"{candidate.name}.json",
                          candidate.to_dict())
        baseline = make_record(created="2026-08-01T00:00:00+00:00",
                               bench_ms=0.5,
                               metrics=[fig5_metric(0.1, expected=0.06)])
        append_records([baseline], root=tmp_path)
        code, explain = explain_figure(
            "fig5", metric_name="Synthetic-St/dma-ta/cp=0.1",
            results_dir=results, root=tmp_path, write=False)
        assert code == 2
        assert explain["status"] == "attributed"
        assert explain["baseline_bench_ms"] == 0.5
        assert "truncation" in explain["summary"]
        assert explain["energy_attribution"]  # ranked bucket shifts

    def test_render_contains_greppable_line(self, bench_dirs):
        results, root = bench_dirs
        _code, explain = explain_figure(
            "fig5", metric_name="Synthetic-St/dma-ta/cp=0.1",
            results_dir=results, root=root, write=False)
        text = render_explain("fig5", explain)
        assert "bench.explain: figure=fig5 " in text
        assert "status=identical" in text
