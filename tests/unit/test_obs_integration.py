"""End-to-end observability: traced runs on both engines.

Includes the PR's acceptance criterion: the per-chip residency folded
back out of the exported span stream must match the run's
``MetricsReport.chip_residency`` to within 1% of each chip's total.
"""

import pytest

from repro.obs import NullTracer, RingTracer
from repro.obs.export import (
    chrome_trace,
    residency_from_events,
    validate_chrome_trace,
)
from repro.sim.run import TECHNIQUES, simulate
from repro.traces.synthetic import synthetic_storage_trace


@pytest.fixture(scope="module")
def trace():
    return synthetic_storage_trace(duration_ms=3.0, seed=9)


@pytest.fixture(scope="module")
def long_trace():
    # Long enough (> 5 ms at 1.6 GHz) to cross a PL migration interval.
    return synthetic_storage_trace(duration_ms=7.0, seed=9)


def traced_run(trace, engine, technique="dma-ta-pl"):
    tracer = RingTracer()
    result = simulate(trace, technique=technique, engine=engine, mu=50.0,
                      tracer=tracer)
    return tracer, result


class TestEventStream:
    @pytest.mark.parametrize("engine", ["fluid", "precise"])
    def test_controller_and_chip_events_present(self, trace, engine):
        tracer, _ = traced_run(trace, engine)
        names = {event.name for event in tracer.events}
        assert "ta.release" in names
        assert "slack.charge_epoch" in names
        tracks = {event.track for event in tracer.events}
        assert any(track.startswith("chip:") for track in tracks)

    @pytest.mark.parametrize("engine", ["fluid", "precise"])
    def test_migration_events_present(self, long_trace, engine):
        tracer, result = traced_run(long_trace, engine)
        assert result.migrations > 0
        names = {event.name for event in tracer.events}
        assert "pl.migration" in names
        assert "pl.move" in names

    @pytest.mark.parametrize("engine", ["fluid", "precise"])
    def test_export_validates(self, trace, engine):
        tracer, result = traced_run(trace, engine)
        obj = chrome_trace(tracer.events, label=trace.name)
        assert validate_chrome_trace(obj) == []
        assert len(obj["traceEvents"]) > len(tracer.events)  # + metadata

    @pytest.mark.parametrize("engine", ["fluid", "precise"])
    def test_residency_matches_metrics_within_1pct(self, trace, engine):
        """Acceptance: folded span residency == MetricsReport residency."""
        tracer, result = traced_run(trace, engine)
        folded = residency_from_events(tracer.events)
        reported = result.metrics.chip_residency
        assert set(folded) == set(reported)
        for chip_id, buckets in reported.items():
            total = sum(buckets.values())
            assert total > 0
            for bucket, cycles in buckets.items():
                assert folded[chip_id].get(bucket, 0.0) == pytest.approx(
                    cycles, abs=0.01 * total)


class TestTracingIsInert:
    @pytest.mark.parametrize("engine", ["fluid", "precise"])
    def test_traced_equals_untraced(self, trace, engine):
        untraced = simulate(trace, technique="dma-ta-pl", engine=engine,
                            mu=50.0)
        _, traced = traced_run(trace, engine)
        assert traced.energy.total == untraced.energy.total
        assert traced.extra_service_cycles == untraced.extra_service_cycles
        assert traced.migrations == untraced.migrations

    def test_null_tracer_accepted(self, trace):
        result = simulate(trace, technique="dma-ta", mu=50.0,
                          tracer=NullTracer())
        assert result.metrics is not None

    def test_bounded_ring_does_not_disturb_run(self, trace):
        tracer = RingTracer(capacity=64)
        result = simulate(trace, technique="dma-ta-pl", mu=50.0,
                          tracer=tracer)
        assert len(tracer) == 64
        assert tracer.dropped > 0
        assert result.metrics is not None


class TestMetricsAttached:
    @pytest.mark.parametrize("technique", TECHNIQUES)
    def test_every_technique_reports_metrics(self, trace, technique):
        result = simulate(trace, technique=technique, mu=50.0)
        report = result.metrics
        assert report is not None
        assert report.counters.get("sim.transfers", 0) > 0
        assert report.chip_residency
        for buckets in report.chip_residency.values():
            assert "total" not in buckets

    @pytest.mark.parametrize("engine", ["fluid", "precise"])
    def test_transitions_counted(self, trace, engine):
        result = simulate(trace, technique="baseline", engine=engine,
                          mu=None)
        transitions = result.metrics.transitions
        assert transitions, "power-managed run should transition states"
        assert all(count > 0 for count in transitions.values())
        assert all("->" in edge for edge in transitions)

    @pytest.mark.parametrize("engine", ["fluid", "precise"])
    def test_dma_service_histogram_and_bound(self, trace, engine):
        result = simulate(trace, technique="dma-ta", engine=engine, mu=50.0)
        report = result.metrics
        digest = report.histograms["dma.service_per_request"]
        assert digest.count > 0
        assert report.gauges["dma.service_bound"] > 0

    def test_slack_violations_counter_present(self, trace):
        report = simulate(trace, technique="dma-ta", mu=50.0).metrics
        assert "slack.violations" in report.counters
