"""Units for the DMA-TA slack account (Section 4.1.2)."""

import pytest

from repro.core.slack import SlackAccount
from repro.errors import ConfigurationError


@pytest.fixture
def account():
    return SlackAccount(mu=2.0, service_cycles=4.0, num_buses=3,
                        saturating_buses=3)


class TestCredits:
    def test_credit_per_request_is_mu_T(self, account):
        assert account.credit_per_request() == pytest.approx(8.0)

    def test_slack_grows_with_arrivals(self, account):
        assert account.slack(0) == 0.0
        assert account.slack(100) == pytest.approx(800.0)

    def test_charges_reduce_slack(self, account):
        account.charge_epoch(epoch_cycles=50.0, pending_requests=4)
        assert account.slack(100) == pytest.approx(800.0 - 200.0)

    def test_wake_charge(self, account):
        account.charge_wake(wake_latency=96.0, pending_requests=2)
        assert account.total_charges == pytest.approx(192.0)

    def test_processor_charge(self, account):
        account.charge_processor(work_cycles=32.0, pending_requests=3)
        assert account.total_charges == pytest.approx(96.0)

    def test_refund(self, account):
        account.charge_epoch(100.0, 1)
        account.refund(40.0)
        assert account.slack(0) == pytest.approx(-60.0)

    def test_negative_slack_possible(self, account):
        account.charge_epoch(1000.0, 10)
        assert account.slack(0) < 0


class TestServiceUpperBound:
    def test_paper_formula(self, account):
        """U = m * T * ceil(r / k)."""
        # m = 2, T = 4, ceil(3/3) = 1.
        assert account.service_upper_bound({0: 2, 1: 1}) == pytest.approx(8.0)

    def test_more_buses_than_k(self):
        account = SlackAccount(mu=1.0, service_cycles=4.0, num_buses=6,
                               saturating_buses=3)
        # ceil(6/3) = 2 groups.
        assert account.service_upper_bound({0: 1}) == pytest.approx(8.0)

    def test_empty(self, account):
        assert account.service_upper_bound({}) == 0.0


class TestRelease:
    def test_k_distinct_buses_releases(self, account):
        assert account.should_release({0: 1, 1: 1, 2: 1}, arrived_requests=1e9)

    def test_waits_with_plenty_of_slack(self, account):
        # One pending head, lots of credit: keep gathering.
        assert not account.should_release({0: 1}, arrived_requests=10_000)

    def test_releases_when_slack_too_small(self, account):
        # n*U/2 = 1 * 4 * 1 / 2 = 2 cycles; slack from one request = 8.
        # Charge it away so the projection exceeds the slack.
        account.charge_epoch(10.0, 1)
        assert account.should_release({0: 1}, arrived_requests=1)

    def test_release_fraction(self):
        eager = SlackAccount(mu=2.0, service_cycles=4.0, num_buses=3,
                             saturating_buses=3, release_fraction=0.001)
        # A tiny fraction makes almost any projection trigger a release.
        assert eager.should_release({0: 1}, arrived_requests=2)

    def test_empty_pending_never_releases(self, account):
        assert not account.should_release({}, arrived_requests=0)


class TestValidation:
    def test_negative_mu(self):
        with pytest.raises(ConfigurationError):
            SlackAccount(mu=-1.0, service_cycles=4.0, num_buses=3,
                         saturating_buses=3)

    def test_zero_service(self):
        with pytest.raises(ConfigurationError):
            SlackAccount(mu=1.0, service_cycles=0.0, num_buses=3,
                         saturating_buses=3)

    def test_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            SlackAccount(mu=1.0, service_cycles=4.0, num_buses=3,
                         saturating_buses=3, release_fraction=0.0)
