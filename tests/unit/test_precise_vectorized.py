"""Bit-exactness of the array-timeline kernel against the scalar oracle.

The vectorized precise engine (``engine="precise"``) must be
indistinguishable from the pure event-stepping oracle
(``engine="precise-scalar"``) — not within tolerance, but bit-for-bit:
the kernel only replays the scalar engine's arithmetic in batched form
(see ``docs/ENGINES.md``). These tests pin that contract across the
paper's techniques on a small synthetic trace, plus the kernel's
fallback behaviour at the edges.
"""

import math

import pytest

from repro.config import SimulationConfig
from repro.obs.diff import render_result_delta
from repro.obs.tracer import RingTracer
from repro.sim.precise import PreciseEngine
from repro.sim.run import simulate
from repro.traces.synthetic import synthetic_storage_trace


@pytest.fixture(scope="module")
def trace():
    return synthetic_storage_trace(duration_ms=0.5, transfers_per_ms=120,
                                   seed=23)


def run_pair(trace, technique, tracer=False, mu=None):
    cfg = SimulationConfig()
    if mu is not None:
        cfg = cfg.with_mu(mu)
    tr_s = RingTracer(capacity=1_000_000) if tracer else None
    tr_v = RingTracer(capacity=1_000_000) if tracer else None
    scalar = PreciseEngine(trace, cfg, technique=technique,
                           vectorize=False, tracer=tr_s).run()
    vector = PreciseEngine(trace, cfg, technique=technique,
                           vectorize=True, tracer=tr_v).run()
    return scalar, vector, tr_s, tr_v


class TestBitExactness:
    @pytest.mark.parametrize("technique",
                             ["nopm", "baseline", "dma-ta", "pl",
                              "dma-ta-pl"])
    def test_identical_results(self, trace, technique):
        scalar, vector, _, _ = run_pair(trace, technique)
        # EnergyBreakdown and TimeBreakdown: exact float equality per
        # bucket, not approx — the kernel replays the scalar arithmetic.
        # On failure, name the disagreeing bucket (and bisect further
        # with `repro diff <trace> --engines precise,precise-scalar`).
        assert vector.energy.as_dict() == scalar.energy.as_dict(), \
            render_result_delta(scalar.energy.as_dict(),
                                vector.energy.as_dict(),
                                label_a="precise-scalar",
                                label_b="precise")
        assert vector.time.as_dict() == scalar.time.as_dict(), \
            render_result_delta(scalar.time.as_dict(),
                                vector.time.as_dict(),
                                label_a="precise-scalar",
                                label_b="precise")
        assert vector.chip_energy == scalar.chip_energy
        # Power-state transition counts, globally and per edge.
        assert vector.metrics.transitions == scalar.metrics.transitions
        assert vector.wakes == scalar.wakes
        # Timing, degradation, and client-visible outputs.
        assert vector.duration_cycles == scalar.duration_cycles
        assert vector.extra_service_cycles == scalar.extra_service_cycles
        assert vector.head_delay_cycles == scalar.head_delay_cycles
        assert vector.client_responses == scalar.client_responses
        assert vector.migrations == scalar.migrations
        assert (vector.metrics.histograms["dma.service_per_request"]
                == scalar.metrics.histograms["dma.service_per_request"])

    def test_kernel_actually_batched(self, trace):
        _, vector, _, _ = run_pair(trace, "baseline")
        batched = vector.metrics.counters["kernel.batched_requests"]
        assert batched > 0.9 * vector.requests

    def test_traced_runs_match(self, trace):
        """Tracer mode (the auditor's path) emits the same spans: same
        count, and per-bucket joules totals within float-sum noise."""
        scalar, vector, tr_s, tr_v = run_pair(trace, "dma-ta",
                                              tracer=True, mu=2.0)
        assert vector.energy.as_dict() == scalar.energy.as_dict()
        assert len(tr_v.events) == len(tr_s.events)

        def bucket_joules(tr):
            sums = {}
            for event in tr.events:
                args = getattr(event, "args", None)
                if isinstance(args, dict) and "joules" in args:
                    bucket = args.get("bucket")
                    sums[bucket] = sums.get(bucket, 0.0) + args["joules"]
            return sums

        left, right = bucket_joules(tr_s), bucket_joules(tr_v)
        assert set(left) == set(right)
        for bucket, joules in left.items():
            assert right[bucket] == pytest.approx(joules, rel=1e-12)


class TestEngineSelection:
    def test_precise_scalar_engine_name(self, trace):
        vector = simulate(trace, technique="baseline", engine="precise")
        scalar = simulate(trace, technique="baseline",
                          engine="precise-scalar")
        assert vector.energy.as_dict() == scalar.energy.as_dict()
        # The oracle disables the kernel entirely.
        assert "kernel.batches" not in scalar.metrics.counters
        assert vector.metrics.counters["kernel.batches"] > 0

    def test_kernel_disabled_for_unbatchable_geometry(self, trace):
        """A policy whose first descent threshold fires inside the
        steady idle gap must force the kernel off (the scalar engine
        would start a descent mid-stream)."""
        engine = PreciseEngine(trace, SimulationConfig(),
                               technique="baseline")
        assert engine._kernel is not None and engine._kernel.enabled
        gap = engine._bus_gap - engine._serve_cycles
        schedule = engine.chips[0].schedule
        assert schedule and schedule[0][0] >= gap  # default is batchable
