"""Units for differential observability (repro.obs.diff): config
validation, the digest ring, trail (de)serialisation, chain bisection,
result deltas, and the DiffServer."""

import json
import urllib.request

import pytest

from repro.errors import ConfigurationError, DiffError
from repro.obs.diff import (
    DigestConfig,
    DigestRecorder,
    DigestStore,
    DigestTrail,
    DivergenceReport,
    FieldDivergence,
    first_divergent_bracket,
    read_trail,
    render_result_delta,
    result_delta,
    write_trail,
)


def make_trail(ticks, chains=None, label="t", stride=1, captures=()):
    """A hand-built trail whose rows are (tick, ts, chain) triples."""
    chains = chains or [f"c{i:02d}" for i in range(ticks)]
    rows = [(i * stride, float(i * stride * 100), chains[i])
            for i in range(ticks)]
    return DigestTrail(label=label, epoch_cycles=100.0, fields=("ts",),
                       ticks=(ticks - 1) * stride + 1 if ticks else 0,
                       stride=stride, chain_tip=chains[-1] if chains else "",
                       rows=rows, captures=list(captures))


class TestDigestConfig:
    def test_defaults_valid(self):
        config = DigestConfig()
        assert config.epoch_cycles is None
        assert config.capacity == 4096

    @pytest.mark.parametrize("kwargs", [
        {"epoch_cycles": 0.0},
        {"epoch_cycles": -5.0},
        {"capacity": 7},          # odd
        {"capacity": 6},          # < 8
        {"capture_range": (-1, 4)},
        {"capture_range": (5, 2)},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            DigestConfig(**kwargs)


class TestDigestStore:
    def test_retains_everything_below_capacity(self):
        store = DigestStore(capacity=8)
        for i in range(8):
            assert store.append(float(i), f"c{i}")
        assert store.stride == 1 and store.dropped == 0
        assert [row[0] for row in store.rows()] == list(range(8))

    def test_compaction_doubles_stride_and_keeps_alignment(self):
        store = DigestStore(capacity=8)
        for i in range(64):
            store.append(float(i), f"c{i}")
        # Row i always holds tick i * stride; stride is a power of two.
        assert store.stride == 8
        ticks = [row[0] for row in store.rows()]
        assert ticks == [i * store.stride for i in range(len(ticks))]
        assert store.ticks == 64
        # dropped counts stride-rejected offers only; compaction evicts
        # already-retained rows without recounting them.
        assert store.dropped + len(ticks) <= store.ticks
        assert store.dropped > 0

    def test_equal_length_runs_retain_identical_tick_subsets(self):
        a, b = DigestStore(capacity=8), DigestStore(capacity=8)
        for i in range(100):
            a.append(float(i), f"a{i}")
            b.append(float(i), f"b{i}")
        assert [r[0] for r in a.rows()] == [r[0] for r in b.rows()]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            DigestStore(capacity=9)


class TestRecorderMisuse:
    def test_bind_is_single_use(self):
        recorder = DigestRecorder(DigestConfig())

        class FakeFluid:
            class memory:
                chips = ()
            buses = ()
            _served_requests = 0

            class controller:
                @staticmethod
                def epoch_cycles():
                    return 1000.0

                @staticmethod
                def pending_count():
                    return 0

            class config:
                class buses:
                    count = 0
            head_delay_total = 0.0
            extra_service_total = 0.0
            migrations = 0

        recorder.bind(FakeFluid())
        with pytest.raises(DiffError):
            recorder.bind(FakeFluid())


class TestTrailRoundTrip:
    def test_json_round_trip(self, tmp_path):
        trail = make_trail(5, label="fluid/dma-ta", stride=2)
        path = write_trail(trail, tmp_path / "trail.json")
        loaded = read_trail(path)
        assert loaded.label == trail.label
        assert loaded.chain_tip == trail.chain_tip
        assert loaded.rows == trail.rows
        assert loaded.stride == trail.stride

    @pytest.mark.parametrize("mutate", [
        lambda obj: obj.update(version=99),
        lambda obj: obj.update(rows="nope"),
        lambda obj: obj["rows"].append([1, 2]),        # not a triple
        lambda obj: obj["rows"].append(["x", 0.0, 3]),  # bad types
        lambda obj: obj.pop("epoch_cycles"),
    ])
    def test_malformed_trail_raises_differror(self, tmp_path, mutate):
        obj = make_trail(3).as_dict()
        mutate(obj)
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(obj), encoding="utf-8")
        with pytest.raises(DiffError):
            read_trail(path)

    def test_not_json_raises_differror(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(DiffError):
            read_trail(path)


class TestFirstDivergentBracket:
    def test_identical_trails_return_none(self):
        assert first_divergent_bracket(make_trail(10), make_trail(10)) is None

    def test_divergence_mid_run_brackets_the_flip(self):
        chains_b = [f"c{i:02d}" if i < 6 else f"x{i:02d}" for i in range(10)]
        bracket = first_divergent_bracket(
            make_trail(10), make_trail(10, chains=chains_b))
        assert bracket is not None
        lo, hi = bracket
        assert lo <= 6 <= hi  # the true flip tick lies inside the bracket

    def test_divergence_at_tick_zero(self):
        chains_b = [f"x{i:02d}" for i in range(4)]
        bracket = first_divergent_bracket(
            make_trail(4), make_trail(4, chains=chains_b))
        assert bracket is not None and bracket[1] == 0

    def test_length_mismatch_is_a_divergence(self):
        assert first_divergent_bracket(make_trail(10), make_trail(7)) \
            is not None

    def test_strided_trails_still_bracket(self):
        # Simulate compaction on one side: same chain values at the
        # retained ticks, different stride metadata is not allowed —
        # equal-length runs share strides, so build both at stride 2.
        chains_b = [f"c{i:02d}" if i < 3 else f"x{i:02d}" for i in range(5)]
        bracket = first_divergent_bracket(
            make_trail(5, stride=2), make_trail(5, chains=chains_b,
                                                stride=2))
        assert bracket is not None
        lo, hi = bracket
        assert lo < 3 * 2 + 1 and hi >= 3 * 2 - 2


class TestResultDelta:
    def test_equal_objects_yield_no_lines(self):
        assert result_delta({"a": 1, "b": [1, 2]},
                            {"a": 1, "b": [1, 2]}) == []

    def test_names_the_disagreeing_path(self):
        lines = result_delta({"energy": {"low_power": 1.0}},
                             {"energy": {"low_power": 2.0}})
        assert len(lines) == 1
        assert "low_power" in lines[0]
        assert "a=1.0" in lines[0] and "b=2.0" in lines[0]

    def test_limit_caps_output(self):
        a = {str(i): i for i in range(50)}
        b = {str(i): i + 1 for i in range(50)}
        assert len(result_delta(a, b, limit=5)) <= 6

    def test_render_names_both_labels(self):
        text = render_result_delta({"x": 1}, {"x": 2},
                                   label_a="fleet", label_b="serial")
        assert "fleet" in text and "serial" in text and "x" in text


class TestDivergenceReportShape:
    def make_report(self, identical=False):
        divergence = None if identical else FieldDivergence(
            tick=7, ts_a=16000.0, ts_b=16000.0,
            name="degradation_cycles", value_a=0.0, value_b=1.0)
        return DivergenceReport(
            identical=identical, label_a="A", label_b="B",
            ticks_a=100, ticks_b=100, epoch_cycles=2000.0,
            mode="identical" if identical else "field",
            bracket=None if identical else (6, 7),
            divergence=divergence, chain_tip="ab" * 16,
            causes_a={}, causes_b={})

    def test_summary_line_is_greppable(self):
        line = self.make_report().summary_line()
        assert line.startswith("diff.divergence: epoch=7 ")
        assert "field=degradation_cycles" in line

    def test_identical_summary_line(self):
        line = self.make_report(identical=True).summary_line()
        assert line.startswith("diff.identical: ")

    def test_as_dict_round_trips_epoch(self):
        report = self.make_report()
        assert report.epoch == 7
        assert report.as_dict()["epoch"] == 7


class TestDiffServer:
    def test_serves_report_and_json(self):
        from repro.obs.serve import DiffServer

        report = TestDivergenceReportShape().make_report()
        server = DiffServer(report, port=0)
        server.start()
        try:
            with urllib.request.urlopen(server.url, timeout=5) as response:
                page = response.read().decode("utf-8")
            assert "DIVERGED" in page
            with urllib.request.urlopen(server.url + "report.json",
                                        timeout=5) as response:
                obj = json.loads(response.read().decode("utf-8"))
            assert obj["epoch"] == 7
        finally:
            server.stop()
