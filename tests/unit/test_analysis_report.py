"""Units for the experiment-report builder."""

import pytest

from repro.analysis.report import build_report, render_report
from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.errors import ConfigurationError
from repro.traces.synthetic import synthetic_storage_trace

MB = 1 << 20


@pytest.fixture(scope="module")
def report():
    trace = synthetic_storage_trace(duration_ms=3.0, seed=17)
    config = SimulationConfig(
        memory=MemoryConfig(num_chips=8, chip_bytes=4 * MB,
                            page_bytes=8192),
        buses=BusConfig(count=3))
    return build_report(trace, config=config, cp_limits=(0.05, 0.2),
                        techniques=("dma-ta",))


class TestBuild:
    def test_matrix_shape(self, report):
        assert set(report.by_technique) == {"dma-ta"}
        assert set(report.by_technique["dma-ta"]) == {0.05, 0.2}
        assert report.baseline.technique == "baseline"

    def test_savings_accessor(self, report):
        savings = report.savings("dma-ta")
        assert set(savings) == {0.05, 0.2}
        assert all(isinstance(v, float) for v in savings.values())

    def test_savings_unknown_technique(self, report):
        assert report.savings("nothing") == {}

    def test_best(self, report):
        technique, cp, saving = report.best()
        if saving > 0:
            assert technique == "dma-ta"
            assert cp in (0.05, 0.2)

    def test_empty_cp_limits_rejected(self):
        trace = synthetic_storage_trace(duration_ms=1.0, seed=18)
        with pytest.raises(ConfigurationError):
            build_report(trace, cp_limits=())


class TestRender:
    def test_sections_present(self, report):
        text = render_report(report)
        assert "Experiment report" in text
        assert "Technique matrix" in text
        assert "savings vs CP-Limit" in text
        assert "baseline" in text

    def test_guarantee_column(self, report):
        text = render_report(report)
        assert "VIOLATED" not in text
