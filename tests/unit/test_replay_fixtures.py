"""Golden-fixture tests: committed CSVs → checked-in expected values.

The fixtures under ``tests/fixtures/`` are ~100-row block traces, one
per supported dialect; the ``expected_<dialect>.json`` files next to
them pin every externally-visible property of the parse + replay
pipeline, ending with the trace fingerprint. Any change to parsing,
page layout, client synthesis, or record canonicalisation shows up here
as an exact-value diff — update the goldens deliberately, never by
accident.
"""

import json
from pathlib import Path

import pytest

from repro.traces.replay import ReplayConfig, read_block_csv, replay_trace
from repro.traces.stats import characterize

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures"

CASES = [
    ("msr", "msr_sample.csv", "expected_msr.json"),
    ("cloudphysics", "cloudphysics_sample.csv",
     "expected_cloudphysics.json"),
]


def load_case(csv_name, expected_name):
    expected = json.loads((FIXTURES / expected_name).read_text())
    rows = read_block_csv(FIXTURES / csv_name, dialect=expected["dialect"])
    return rows, expected


def replay_fixture(csv_name, dialect):
    # Replay from the path (not the parsed rows) so metadata carries the
    # dialect and the default name matches the golden fingerprint.
    return replay_trace(FIXTURES / csv_name, ReplayConfig(),
                        dialect=dialect)


@pytest.mark.parametrize("dialect, csv_name, expected_name", CASES)
def test_parse_matches_golden(dialect, csv_name, expected_name):
    rows, expected = load_case(csv_name, expected_name)
    assert expected["dialect"] == dialect
    assert len(rows) == expected["rows"]
    assert sum(not r.is_write for r in rows) == expected["reads"]
    assert sum(r.is_write for r in rows) == expected["writes"]
    assert sum(r.size_bytes for r in rows) == expected["block_bytes"]
    assert sorted({r.namespace for r in rows}) == expected["namespaces"]


@pytest.mark.parametrize("dialect, csv_name, expected_name", CASES)
def test_replay_matches_golden(dialect, csv_name, expected_name):
    _, expected = load_case(csv_name, expected_name)
    trace = replay_fixture(csv_name, dialect)

    assert len(trace.records) == expected["records"]
    assert len(trace.transfers) == expected["transfers"]
    assert len(trace.clients) == expected["clients"]

    stats = characterize(trace)
    assert stats.pages_referenced == expected["pages_referenced"]
    approx = {
        "duration_ms": trace.duration_cycles / 1.6e6,
        "transfers_per_ms": stats.transfers_per_ms,
        "mean_transfer_bytes": stats.mean_transfer_bytes,
        "top20_access_fraction": stats.top20_access_fraction,
    }
    for key, value in approx.items():
        assert value == pytest.approx(expected[key], abs=5e-7), key

    # The strongest check last: the canonical byte-level digest.
    assert trace.fingerprint() == expected["fingerprint"]


@pytest.mark.parametrize("dialect, csv_name, expected_name", CASES)
def test_fixture_metadata_agrees_with_golden(dialect, csv_name,
                                             expected_name):
    _, expected = load_case(csv_name, expected_name)
    meta = replay_fixture(csv_name, dialect).metadata
    assert meta["dialect"] == dialect
    assert meta["block_ios"] == expected["rows"]
    assert meta["block_reads"] == expected["reads"]
    assert meta["block_writes"] == expected["writes"]
    assert meta["block_bytes"] == expected["block_bytes"]
    assert meta["namespaces"] == expected["namespaces"]
