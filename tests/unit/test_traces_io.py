"""Units for trace serialisation."""

import pytest

from repro.errors import TraceError
from repro.traces.io import read_trace, write_trace
from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst
from repro.traces.trace import Trace


@pytest.fixture
def trace():
    clients = {3: ClientRequest(request_id=3, arrival=5.0, base_cycles=77.0)}
    records = [
        DMATransfer(time=10.0, page=4, size_bytes=8192, source="disk",
                    is_write=True, bus=1, request_id=3),
        ProcessorBurst(time=20.0, page=9, count=16, window_cycles=100.0),
        DMATransfer(time=30.0, page=5, size_bytes=512),
    ]
    return Trace(name="io-test", records=records, clients=clients,
                 duration_cycles=500.0, metadata={"seed": 7, "alpha": 1.0})


class TestRoundTrip:
    def test_full_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.name == trace.name
        assert loaded.duration_cycles == trace.duration_cycles
        assert loaded.metadata == trace.metadata
        assert loaded.records == trace.records
        assert loaded.clients == trace.clients

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_trace(Trace(name="empty"), path)
        loaded = read_trace(path)
        assert loaded.name == "empty"
        assert loaded.records == []


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "dma", "time": 0, "page": 0, "size": 8}\n')
        with pytest.raises(TraceError):
            read_trace(path)

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_bad_record(self, tmp_path, trace):
        path = tmp_path / "bad.jsonl"
        write_trace(trace, path)
        with path.open("a") as handle:
            handle.write("{broken\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "header", "version": 1, "name": "x", "duration": 0,'
            ' "metadata": {}}\n{"kind": "mystery"}\n')
        with pytest.raises(TraceError):
            read_trace(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "header", "version": 99, "name": "x", "duration": 0,'
            ' "metadata": {}}\n')
        with pytest.raises(TraceError):
            read_trace(path)
