"""Units for trace serialisation."""

import pytest

from repro.errors import TraceError
from repro.traces.io import read_trace, write_trace
from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst
from repro.traces.trace import Trace


@pytest.fixture
def trace():
    clients = {3: ClientRequest(request_id=3, arrival=5.0, base_cycles=77.0)}
    records = [
        DMATransfer(time=10.0, page=4, size_bytes=8192, source="disk",
                    is_write=True, bus=1, request_id=3),
        ProcessorBurst(time=20.0, page=9, count=16, window_cycles=100.0),
        DMATransfer(time=30.0, page=5, size_bytes=512),
    ]
    return Trace(name="io-test", records=records, clients=clients,
                 duration_cycles=500.0, metadata={"seed": 7, "alpha": 1.0})


class TestRoundTrip:
    def test_full_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.name == trace.name
        assert loaded.duration_cycles == trace.duration_cycles
        assert loaded.metadata == trace.metadata
        assert loaded.records == trace.records
        assert loaded.clients == trace.clients

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_trace(Trace(name="empty"), path)
        loaded = read_trace(path)
        assert loaded.name == "empty"
        assert loaded.records == []


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "dma", "time": 0, "page": 0, "size": 8}\n')
        with pytest.raises(TraceError):
            read_trace(path)

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_bad_record(self, tmp_path, trace):
        path = tmp_path / "bad.jsonl"
        write_trace(trace, path)
        with path.open("a") as handle:
            handle.write("{broken\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "header", "version": 1, "name": "x", "duration": 0,'
            ' "metadata": {}}\n{"kind": "mystery"}\n')
        with pytest.raises(TraceError):
            read_trace(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "header", "version": 99, "name": "x", "duration": 0,'
            ' "metadata": {}}\n')
        with pytest.raises(TraceError):
            read_trace(path)


HEADER = ('{"kind": "header", "version": 1, "name": "x", "duration": 0,'
          ' "metadata": {}}\n')


class TestMalformedLinesNameTheLine:
    """Truncated or hand-edited JSONL raises TraceError naming the
    offending line — never a raw KeyError/TypeError traceback."""

    def write(self, tmp_path, *lines):
        path = tmp_path / "trace.jsonl"
        path.write_text(HEADER + "".join(line + "\n" for line in lines))
        return path

    @pytest.mark.parametrize("line, fragment", [
        ('{"kind": "dma", "page": 0, "size": 8192}',
         "missing field 'time'"),              # truncated dma record
        ('{"kind": "dma", "time": 0, "size": 8192}',
         "missing field 'page'"),
        ('{"kind": "client", "arrival": 0.0}',
         "missing field 'id'"),                # truncated client row
        ('{"kind": "proc", "page": 1, "count": 4}',
         "missing field 'time'"),
        ('{"kind": "dma", "time": 0, "page": -4, "size": 8192}',
         "page"),                              # domain error, not KeyError
        ('[1, 2, 3]', "expected an object, got list"),
        ('"dma"', "expected an object, got str"),
    ])
    def test_line_number_in_message(self, tmp_path, line, fragment):
        path = self.write(tmp_path,
                          '{"kind": "dma", "time": 0, "page": 0,'
                          ' "size": 512}', line)
        with pytest.raises(TraceError) as excinfo:
            read_trace(path)
        message = str(excinfo.value)
        assert "line 3" in message
        assert fragment in message

    def test_blank_lines_do_not_shift_numbering(self, tmp_path):
        path = self.write(tmp_path, "", "", '{"kind": "mystery"}')
        with pytest.raises(TraceError, match="line 4"):
            read_trace(path)

    def test_truncated_mid_value_names_last_line(self, tmp_path, trace):
        path = tmp_path / "trace.jsonl"
        write_trace(trace, path)
        full = path.read_text()
        path.write_text(full[:full.rindex(":") + 1])
        with pytest.raises(TraceError) as excinfo:
            read_trace(path)
        assert f"line {full.count(chr(10))}" in str(excinfo.value)
