"""Units for the audit layer (repro.obs.audit)."""

import json
import math
from types import SimpleNamespace

import pytest

from repro.config import SimulationConfig
from repro.energy.accounting import EnergyBreakdown
from repro.errors import AuditError
from repro.obs.audit import (
    KIND_GUARANTEE,
    KIND_UNDERCHARGE,
    AuditViolation,
    Auditor,
    audit_events,
    audit_result,
    audit_summary,
    write_audit_report,
)
from repro.obs.events import (
    PH_INSTANT,
    TRACK_CONTROLLER,
    TRACK_SIM,
    Event,
)
from repro.sim.fluid import FluidEngine
from repro.sim.precise import PreciseEngine
from repro.traces.synthetic import synthetic_storage_trace


@pytest.fixture(scope="module")
def dense_trace():
    """Dense enough that DMA-TA actually buffers and charges epochs."""
    return synthetic_storage_trace(duration_ms=10.0, transfers_per_ms=100,
                                   seed=7)


def _instant(ts, name, args, track=TRACK_SIM):
    return Event(ts=ts, name=name, track=track, ph=PH_INSTANT, args=args)


def _config_event(mu=1.0, service=4.0, epoch=1000.0):
    return _instant(0.0, "sim.config",
                    {"mu": mu, "service_cycles": service,
                     "epoch_cycles": epoch})


class TestUnderchargeDetection:
    @pytest.mark.parametrize("engine_cls", [FluidEngine, PreciseEngine])
    def test_injected_undercharge_yields_one_violation(
            self, dense_trace, engine_cls):
        config = SimulationConfig().with_mu(2.0)
        auditor = Auditor()
        engine = engine_cls(dense_trace, config, technique="dma-ta",
                            tracer=auditor)
        engine.controller.slack.undercharge_fraction = 0.5
        result = engine.run()
        report = auditor.finalize(result)

        undercharges = [v for v in report.violations
                        if v.kind == KIND_UNDERCHARGE]
        assert len(undercharges) == 1
        violation = undercharges[0]
        assert violation.epoch is not None
        assert violation.epoch == pytest.approx(
            violation.ts / config.alignment.epoch_cycles, abs=1)
        assert violation.details["charged"] == pytest.approx(
            violation.details["expected"] * 0.5)
        # Later under-charged epochs are counted, not stored again.
        assert report.suppressed.get(KIND_UNDERCHARGE, 0) >= 1

    def test_clean_run_has_no_violations(self, dense_trace):
        config = SimulationConfig().with_mu(2.0)
        auditor = Auditor(strict=True)
        result = FluidEngine(dense_trace, config, technique="dma-ta",
                             tracer=auditor).run()
        report = auditor.finalize(result)
        assert report.ok
        assert report.epochs_charged > 0
        assert report.transfers_completed == result.transfers

    def test_strict_mode_raises_at_the_offending_epoch(self, dense_trace):
        config = SimulationConfig().with_mu(2.0)
        engine = FluidEngine(dense_trace, config, technique="dma-ta",
                             tracer=Auditor(strict=True))
        engine.controller.slack.undercharge_fraction = 0.25
        with pytest.raises(AuditError) as excinfo:
            engine.run()
        assert excinfo.value.violation.kind == KIND_UNDERCHARGE
        assert excinfo.value.violation.epoch is not None


class TestGuaranteeBreach:
    def test_forced_breach_yields_one_violation_with_epoch(self):
        # One request credited mu*T = 4 cycles, delayed 5000 cycles: the
        # running average breaches (1+mu)*T at the dma.done event.
        events = [
            _config_event(),
            _instant(0.0, "dma.arrive",
                     {"id": 1, "chip": 0, "bus": 0, "requests": 1}),
            _instant(5000.0, "dma.done",
                     {"id": 1, "chip": 0, "extra": 0.0, "waited": 5000.0}),
            _instant(0.0, "dma.arrive",
                     {"id": 2, "chip": 0, "bus": 0, "requests": 1}),
            _instant(6000.0, "dma.done",
                     {"id": 2, "chip": 0, "extra": 0.0, "waited": 6000.0}),
        ]
        report = audit_events(events)
        breaches = [v for v in report.violations
                    if v.kind == KIND_GUARANTEE]
        assert len(breaches) == 1
        violation = breaches[0]
        assert violation.epoch == 5  # ts=5000, epoch_cycles=1000
        assert violation.details["avg_extra"] > 4.0
        # The second breaching completion is suppressed, not re-stored.
        assert report.suppressed.get(KIND_GUARANTEE, 0) == 1

    def test_within_allowance_is_clean(self):
        events = [
            _config_event(),
            _instant(0.0, "dma.arrive",
                     {"id": 1, "chip": 0, "bus": 0, "requests": 4}),
            _instant(10.0, "dma.done",
                     {"id": 1, "chip": 0, "extra": 2.0, "waited": 8.0}),
        ]
        report = audit_events(events)
        assert report.ok
        assert report.stage_cycles["buffer"] == 8.0
        assert report.stage_cycles["extra"] == 2.0

    def test_strict_breach_raises(self):
        auditor = Auditor(strict=True)
        auditor.emit(_config_event())
        auditor.emit(_instant(0.0, "dma.arrive",
                              {"id": 1, "chip": 0, "bus": 0,
                               "requests": 1}))
        with pytest.raises(AuditError):
            auditor.emit(_instant(9000.0, "dma.done",
                                  {"id": 1, "chip": 0, "extra": 0.0,
                                   "waited": 9000.0}))


class TestWaterfall:
    def test_stages_and_causes_attributed(self):
        events = [
            _config_event(mu=100.0),
            _instant(0.0, "dma.arrive",
                     {"id": 7, "chip": 2, "bus": 1, "requests": 3}),
            _instant(40.0, "ta.buffer", {"chip": 2, "id": 7, "requests": 3},
                     track=TRACK_CONTROLLER),
            _instant(100.0, "dma.release",
                     {"id": 7, "chip": 2, "reason": "slack",
                      "waited": 100.0}, track=TRACK_CONTROLLER),
            _instant(160.0, "dma.start",
                     {"id": 7, "chip": 2, "wake": 50.0, "bus_wait": 10.0}),
            _instant(200.0, "dma.done",
                     {"id": 7, "chip": 2, "extra": 20.0, "waited": 100.0,
                      "mig": 1}),
        ]
        report = audit_events(events)
        assert report.transfers_completed == 1
        assert report.requests_completed == 3
        assert report.stage_cycles == {
            "buffer": 100.0, "wake": 50.0, "bus": 10.0, "extra": 20.0}
        assert report.cause_cycles["batching-delay:slack"] == 100.0
        assert report.cause_cycles["low-power-wakeup"] == 50.0
        assert report.cause_cycles["bus-contention"] == 10.0
        assert report.cause_cycles["migration-interference"] == 20.0

        slowest = report.slowest
        assert len(slowest) == 1
        assert slowest[0]["id"] == 7
        assert slowest[0]["total"] == 180.0

        spans = report.waterfall_events()
        names = [e.name for e in spans]
        assert "waterfall.buffer" in names
        assert "waterfall.transfer" in names
        assert all(e.track.startswith("audit") for e in spans)

    def test_slowest_is_bounded(self):
        auditor = Auditor(slowest=2)
        auditor.emit(_config_event(mu=1000.0))
        for i in range(10):
            auditor.emit(_instant(0.0, "dma.arrive",
                                  {"id": i, "chip": 0, "bus": 0,
                                   "requests": 1}))
            auditor.emit(_instant(float(i + 1), "dma.done",
                                  {"id": i, "chip": 0, "extra": 0.0,
                                   "waited": float(i + 1)}))
        report = auditor.finalize()
        assert len(report.slowest) == 2
        assert [e["total"] for e in report.slowest] == [10.0, 9.0]

    def test_render_mentions_waterfall_and_violations(self):
        report = audit_events([
            _config_event(),
            _instant(0.0, "dma.arrive",
                     {"id": 1, "chip": 0, "bus": 0, "requests": 1}),
            _instant(5000.0, "dma.done",
                     {"id": 1, "chip": 0, "extra": 0.0, "waited": 5000.0}),
        ])
        text = report.render()
        assert "VIOLATION" in text
        assert "latency waterfall" in text


class TestAuditResult:
    def _result(self, **overrides):
        energy = EnergyBreakdown(serving_dma=1.0, low_power=0.5)
        base = dict(energy=energy, chip_energy=[0.75, 0.75],
                    requests=100, mu=0.5, service_cycles=4.0,
                    head_delay_cycles=10.0, extra_service_cycles=10.0,
                    guarantee_violated=False)
        base.update(overrides)
        return SimpleNamespace(**base)

    def test_clean_result_passes(self):
        assert audit_result(self._result()) == []

    def test_chip_sum_mismatch_flagged(self):
        violations = audit_result(self._result(chip_energy=[0.75, 0.60]))
        assert [v.kind for v in violations] == ["result-energy-mismatch"]

    def test_negative_bucket_flagged(self):
        energy = EnergyBreakdown(serving_dma=-1e-6)
        violations = audit_result(self._result(
            energy=energy, chip_energy=[-1e-6, 0.0]))
        assert any(v.kind == "result-energy-negative" for v in violations)

    def test_wrong_guarantee_flag_flagged(self):
        bad = self._result(head_delay_cycles=500.0, guarantee_violated=False)
        violations = audit_result(bad)
        assert any(v.kind == "result-guarantee-flag" for v in violations)

    def test_summary_lines(self):
        lines = audit_summary([AuditViolation(kind="k", message="m")])
        assert lines == ("k: m",)


class TestReportSerialisation:
    def test_write_audit_report_round_trips(self, tmp_path):
        report = audit_events([
            _config_event(),
            _instant(0.0, "dma.arrive",
                     {"id": 1, "chip": 0, "bus": 0, "requests": 1}),
            _instant(3.0, "dma.done",
                     {"id": 1, "chip": 0, "extra": 1.0, "waited": 2.0}),
        ])
        path = write_audit_report(report, tmp_path / "audit.json")
        payload = json.loads(path.read_text())
        assert payload["ok"] is True
        assert payload["waterfall"]["transfers"] == 1
        assert payload["waterfall"]["events"]
        assert payload["slack"]["epochs_charged"] == 0

    def test_as_dict_min_slack_none_when_unknown(self):
        report = audit_events([_config_event()])
        assert report.as_dict()["slack"]["min_slack_replayed"] is None


class TestDownstreamTee:
    def test_events_forwarded(self):
        class Sink:
            def __init__(self):
                self.events = []

            def emit(self, event):
                self.events.append(event)

            def close(self):
                self.closed = True

        sink = Sink()
        auditor = Auditor(downstream=sink)
        auditor.emit(_config_event())
        auditor.close()
        assert len(sink.events) == 1
        assert sink.closed
