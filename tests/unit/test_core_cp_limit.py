"""Units for CP-Limit -> mu calibration (Section 5.1)."""

import pytest

from repro.config import SimulationConfig
from repro.core.cp_limit import calibrate_mu, nominal_transfer_cycles
from repro.errors import TraceError
from repro.traces.records import ClientRequest, DMATransfer
from repro.traces.trace import Trace


def trace_with_clients(base_cycles=100_000.0, n=4):
    records, clients = [], {}
    for i in range(n):
        arrival = 10_000.0 * i
        clients[i] = ClientRequest(request_id=i, arrival=arrival,
                                   base_cycles=base_cycles)
        records.append(DMATransfer(time=arrival + 100.0, page=i,
                                   size_bytes=8192, request_id=i))
    return Trace(name="t", records=records, clients=clients,
                 duration_cycles=1e6)


class TestNominalCycles:
    def test_pcix_8kb(self):
        cfg = SimulationConfig()
        # 8 KB over 1.064 GB/s at 1600 MHz ~ 12318 cycles.
        assert nominal_transfer_cycles(8192, cfg) == pytest.approx(
            12318, rel=0.01)


class TestCalibration:
    def test_basic_numbers(self):
        cfg = SimulationConfig()
        cal = calibrate_mu(trace_with_clients(), cfg, cp_limit=0.10)
        assert cal.clients == 4
        assert cal.requests_per_client == pytest.approx(1024.0)
        # R0 = 100 (transfer offset) + ~12318 (transfer) + 100000 (base).
        assert cal.mean_response_cycles == pytest.approx(112_418, rel=0.01)
        assert cal.mu == pytest.approx(
            0.10 * cal.mean_response_cycles / (1024 * 4), rel=1e-9)

    def test_mu_scales_with_cp(self):
        cfg = SimulationConfig()
        trace = trace_with_clients()
        a = calibrate_mu(trace, cfg, 0.05)
        b = calibrate_mu(trace, cfg, 0.10)
        assert b.mu == pytest.approx(2 * a.mu)

    def test_larger_base_means_larger_mu(self):
        """Disk-bound requests tolerate more memory-side delay."""
        cfg = SimulationConfig()
        fast = calibrate_mu(trace_with_clients(base_cycles=1e4), cfg, 0.1)
        slow = calibrate_mu(trace_with_clients(base_cycles=1e7), cfg, 0.1)
        assert slow.mu > fast.mu

    def test_rejects_traces_without_clients(self):
        cfg = SimulationConfig()
        trace = Trace(name="t", records=[
            DMATransfer(time=0.0, page=0, size_bytes=8192)])
        with pytest.raises(TraceError):
            calibrate_mu(trace, cfg, 0.1)

    def test_rejects_negative_cp(self):
        with pytest.raises(TraceError):
            calibrate_mu(trace_with_clients(), SimulationConfig(), -0.1)

    def test_multi_transfer_request_uses_last_completion(self):
        clients = {0: ClientRequest(request_id=0, arrival=0.0,
                                    base_cycles=0.0)}
        records = [
            DMATransfer(time=100.0, page=0, size_bytes=8192, request_id=0),
            DMATransfer(time=50_000.0, page=0, size_bytes=8192,
                        request_id=0),
        ]
        trace = Trace(name="t", records=records, clients=clients,
                      duration_cycles=1e6)
        cal = calibrate_mu(trace, SimulationConfig(), 0.1)
        assert cal.mean_response_cycles == pytest.approx(
            50_000 + 12_318, rel=0.01)
        assert cal.requests_per_client == pytest.approx(2048.0)
