"""Pinned falsifier for the DMA-TA slack guarantee (known model gap).

The paper's Section 4 describes the slack-based alignment scheme as
providing "a soft guarantee that the *average* DMA-memory request
service time stays within ``(1+mu)*T``". The property sweep
(``tests/property/test_simulation_properties.py::
test_guarantee_never_violated``) checks exactly that bound — and
hypothesis found a deterministic counterexample, promoted here verbatim
per the ROADMAP's "guarantee edge case" item.

The shape of the failure: a single hot page absorbs a long processor
burst (25 accesses) immediately before a DMA transfer lands on the same
page. The burst's queued demand inflates the transfer's per-request
extra service beyond ``mu * T`` (here 4.15625 > 4.0 cycles), and the
averaging window is too small for slack earned elsewhere to pay it
back. This is a real gap between our implementation and the paper's
soft-guarantee wording, not test noise; the run is fully deterministic.

The test is ``xfail(strict=True)``: it *documents* the violation. If a
future change to the slack accounting makes the bound hold, the strict
xfail will fail the suite, forcing that change to delete this file and
re-enable the property for this regime deliberately.
"""

import pytest

from repro import simulate
from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.traces.records import DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

MB = 1 << 20

#: The exact configuration hypothesis shrank to (4 chips, 3 buses).
CONFIG = SimulationConfig(
    memory=MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192),
    buses=BusConfig(count=3))

#: mu under test; the guarantee bound is mu * T = 1.0 * 4.0 cycles.
MU = 1.0

#: Extra service the falsifier provokes, pinned to the byte so that any
#: drift in the engines shows up here before it shows up as flakiness
#: in the property sweep.
EXPECTED_AVG_EXTRA = 4.15625

EXPECTED_REQUESTS = 64


def falsifier_trace() -> Trace:
    """25-access burst then a 512 B write, both on page 83."""
    records = [
        ProcessorBurst(time=0.0, page=83, count=25),
        DMATransfer(time=5750.0, page=83, size_bytes=512, is_write=True),
    ]
    return Trace(name="falsifier", records=records,
                 duration_cycles=300_000.0)


@pytest.mark.xfail(
    strict=True,
    reason="known model gap: a dense same-page processor burst pushes "
           "the average extra service to 4.15625 cycles, past the "
           "mu*T = 4.0 soft bound of paper Section 4 (ROADMAP: "
           "guarantee edge case)")
def test_soft_guarantee_holds_on_burst_falsifier():
    result = simulate(falsifier_trace(), config=CONFIG,
                      technique="dma-ta", mu=MU)
    assert not result.guarantee_violated
    assert result.avg_extra_service_cycles <= MU * 4.0 * (1 + 1e-6) + 1e-9


def test_falsifier_is_pinned_and_deterministic():
    """The counterexample itself must not drift silently.

    Two back-to-back runs must agree exactly, and the violation
    magnitude must stay at the pinned value — if either moves, the
    engines changed behaviour in this regime and both this file and the
    property test's exclusions need a fresh look.
    """
    first = simulate(falsifier_trace(), config=CONFIG,
                     technique="dma-ta", mu=MU)
    second = simulate(falsifier_trace(), config=CONFIG,
                      technique="dma-ta", mu=MU)
    assert first.guarantee_violated
    assert first.requests == EXPECTED_REQUESTS
    assert first.avg_extra_service_cycles == EXPECTED_AVG_EXTRA
    assert second.avg_extra_service_cycles == first.avg_extra_service_cycles
    assert second.energy.as_dict() == first.energy.as_dict()
