"""Units for the parallel executor: fault containment, timeouts,
fallback, deduplication, and eager validation."""

import time

import pytest

from repro.analysis.sweep import sweep_cp_limit, sweep_errors
from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.errors import ConfigurationError
from repro.exec import SimJob, run_many
from repro.exec import runner as runner_module
from repro.exec.runner import _execute
from repro.traces.records import ClientRequest, DMATransfer
from repro.traces.trace import Trace

MB = 1 << 20


def tiny_trace() -> Trace:
    clients = {0: ClientRequest(request_id=0, arrival=0.0, base_cycles=1e6)}
    records = [DMATransfer(time=1000.0, page=3, size_bytes=8192,
                           request_id=0),
               DMATransfer(time=5000.0, page=7, size_bytes=8192)]
    return Trace(name="tiny", records=records, clients=clients,
                 duration_cycles=100_000.0)


def tiny_config() -> SimulationConfig:
    return SimulationConfig(
        memory=MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192),
        buses=BusConfig(count=3))


# Module-level worker bodies: they must be picklable by reference so the
# process pool can ship them to forked/spawned workers.

def explode_on_dma_ta(job: SimJob):
    if job.technique == "dma-ta":
        raise RuntimeError("injected worker fault")
    return _execute(job)


def explode_on_cp_10(job: SimJob):
    if job.cp_limit == 0.10:
        raise RuntimeError("injected sweep fault")
    return _execute(job)


def sleepy(job: SimJob):
    time.sleep(1.0)
    return _execute(job)


def sleeps_only_in_pool_children(job: SimJob):
    """Hangs (briefly) in pool workers, runs clean on the serial path —
    the shape of a wedged child the derived wait bound must contain."""
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        time.sleep(4.0)
    return _execute(job)


class TestFaultContainment:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_one_failing_job_does_not_sink_the_batch(self, workers):
        jobs = [SimJob(tiny_trace(), "baseline", config=tiny_config()),
                SimJob(tiny_trace(), "dma-ta", config=tiny_config(), mu=2.0),
                SimJob(tiny_trace(), "pl", config=tiny_config())]
        outcomes = run_many(jobs, max_workers=workers,
                            worker=explode_on_dma_ta)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "injected worker fault" in outcomes[1].error
        assert outcomes[1].result is None
        # Outcomes stay in input order regardless of completion order.
        assert [o.job.technique for o in outcomes] == \
            ["baseline", "dma-ta", "pl"]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sweep_completes_with_partial_results(self, workers,
                                                  monkeypatch):
        """A worker that raises mid-sweep fails only its own point."""
        monkeypatch.setattr(runner_module, "_execute", explode_on_cp_10)
        points = sweep_cp_limit(tiny_trace(), [0.05, 0.10, 0.20],
                                ["dma-ta"], config=tiny_config(),
                                max_workers=workers)
        assert len(points) == 3, "no lost jobs"
        oks = [p.ok for p in points]
        assert oks == [True, False, True]
        failed = points[1]
        assert "injected sweep fault" in failed.error
        assert failed.savings != failed.savings  # nan
        assert points[0].baseline is not None
        summary = sweep_errors(points)
        assert "1/3" in summary and "x=0.1" in summary
        assert sweep_errors([points[0], points[2]]) == ""

    def test_timeout_marks_job_failed_without_hanging(self):
        jobs = [SimJob(tiny_trace(), "baseline", config=tiny_config()),
                SimJob(tiny_trace(), "pl", config=tiny_config())]
        start = time.monotonic()
        outcomes = run_many(jobs, max_workers=2, timeout_s=0.1,
                            worker=sleepy)
        elapsed = time.monotonic() - start
        assert all(not o.ok for o in outcomes)
        assert all("timed out" in o.error for o in outcomes)
        assert elapsed < 10.0, "no hang"


class TestGracefulFallback:
    def test_unpicklable_worker_falls_back_to_serial(self):
        jobs = [SimJob(tiny_trace(), "baseline", config=tiny_config()),
                SimJob(tiny_trace(), "pl", config=tiny_config())]
        outcomes = run_many(jobs, max_workers=2,
                            worker=lambda job: _execute(job))
        assert all(o.ok for o in outcomes)
        assert outcomes[0].result.technique == "baseline"


class TestDeduplicationAndOrdering:
    def test_identical_jobs_run_once_and_share_results(self, monkeypatch):
        calls = []

        def counting(job):
            calls.append(job.technique)
            return _execute(job)

        jobs = [SimJob(tiny_trace(), "baseline", config=tiny_config()),
                SimJob(tiny_trace(), "dma-ta", config=tiny_config(), mu=2.0),
                SimJob(tiny_trace(), "baseline", config=tiny_config(),
                       tag="same content, different tag")]
        outcomes = run_many(jobs, worker=counting)
        assert calls.count("baseline") == 1
        assert outcomes[0].key == outcomes[2].key
        assert outcomes[0].result is outcomes[2].result

    def test_results_in_input_order(self):
        jobs = [SimJob(tiny_trace(), technique, config=tiny_config())
                for technique in ("pl", "baseline", "nopm")]
        outcomes = run_many(jobs, max_workers=2)
        assert [o.result.technique for o in outcomes] == \
            ["pl", "baseline", "nopm"]


class TestWallTimes:
    def test_computed_jobs_record_wall_seconds(self):
        jobs = [SimJob(tiny_trace(), "baseline", config=tiny_config()),
                SimJob(tiny_trace(), "pl", config=tiny_config())]
        outcomes = run_many(jobs)
        assert all(o.ok for o in outcomes)
        assert all(o.wall_s > 0.0 for o in outcomes)

    def test_dedup_followers_have_zero_wall(self):
        jobs = [SimJob(tiny_trace(), "baseline", config=tiny_config()),
                SimJob(tiny_trace(), "baseline", config=tiny_config(),
                       tag="duplicate")]
        first, follower = run_many(jobs)
        assert first.wall_s > 0.0
        assert follower.wall_s == 0.0
        assert follower.result is first.result

    def test_cache_hits_have_zero_wall(self, tmp_path):
        from repro.exec.cache import ResultCache

        jobs = [SimJob(tiny_trace(), "baseline", config=tiny_config())]
        cache = ResultCache(tmp_path / "cache")
        (cold,) = run_many(jobs, cache=cache)
        assert cold.wall_s > 0.0 and not cold.from_cache
        (warm,) = run_many(jobs, cache=ResultCache(tmp_path / "cache"))
        assert warm.from_cache
        assert warm.wall_s == 0.0


class TestEagerValidation:
    def test_bad_spec_raises_before_any_execution(self):
        calls = []

        def counting(job):
            calls.append(job)
            return _execute(job)

        jobs = [SimJob(tiny_trace(), "baseline", config=tiny_config()),
                SimJob(tiny_trace(), "dma-ta", config=tiny_config(),
                       mu=1.0, cp_limit=0.1)]
        with pytest.raises(ConfigurationError, match="job 1"):
            run_many(jobs, worker=counting)
        assert calls == [], "validation must precede all dispatch"

    def test_unknown_technique_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown technique"):
            run_many([SimJob(tiny_trace(), "warp-drive")])

    def test_negative_mu_rejected(self):
        with pytest.raises(ConfigurationError):
            run_many([SimJob(tiny_trace(), "dma-ta", mu=-1.0)])


class TestDerivedWaitBound:
    def test_silent_pool_job_downgrades_to_serial(self, monkeypatch):
        """With no explicit timeout, a job that never returns from the
        pool must hit the derived wait bound and retry serially —
        run_many can no longer block forever (ROADMAP: pool-hang
        hardening)."""
        monkeypatch.setenv(runner_module.WAIT_FLOOR_ENV, "0.5")
        jobs = [SimJob(tiny_trace(), "baseline", config=tiny_config()),
                SimJob(tiny_trace(), "pl", config=tiny_config())]
        start = time.monotonic()
        outcomes = run_many(jobs, worker=sleeps_only_in_pool_children,
                            max_workers=2)
        elapsed = time.monotonic() - start
        assert all(o.ok for o in outcomes)
        assert elapsed < 3.5, "must not wait out the wedged children"

    def test_wait_floor_env_parsing(self, monkeypatch, caplog):
        monkeypatch.setenv(runner_module.WAIT_FLOOR_ENV, "12.5")
        assert runner_module._wait_floor_s() == 12.5
        monkeypatch.setenv(runner_module.WAIT_FLOOR_ENV, "banana")
        with caplog.at_level("WARNING", logger="repro.exec.runner"):
            assert (runner_module._wait_floor_s()
                    == runner_module.DEFAULT_WAIT_FLOOR_S)
        assert "banana" in caplog.text
        monkeypatch.delenv(runner_module.WAIT_FLOOR_ENV)
        assert (runner_module._wait_floor_s()
                == runner_module.DEFAULT_WAIT_FLOOR_S)


class TestStartMethodOverride:
    def test_spawn_context_runs_a_real_batch(self, monkeypatch):
        monkeypatch.setenv(runner_module.START_METHOD_ENV, "spawn")
        context = runner_module.executor_mp_context()
        assert context is not None
        assert context.get_start_method() == "spawn"
        jobs = [SimJob(tiny_trace(), "baseline", config=tiny_config()),
                SimJob(tiny_trace(), "pl", config=tiny_config())]
        outcomes = run_many(jobs, max_workers=2)
        assert all(o.ok for o in outcomes)
        serial = run_many(jobs, max_workers=1)
        assert [o.result.energy.as_dict() for o in outcomes] == \
            [o.result.energy.as_dict() for o in serial]

    def test_unset_means_platform_default(self, monkeypatch):
        monkeypatch.delenv(runner_module.START_METHOD_ENV, raising=False)
        assert runner_module.executor_mp_context() is None

    def test_invalid_start_method_warns_and_falls_back(
            self, monkeypatch, caplog):
        monkeypatch.setenv(runner_module.START_METHOD_ENV, "teleport")
        with caplog.at_level("WARNING", logger="repro.exec.runner"):
            assert runner_module.executor_mp_context() is None
        assert "teleport" in caplog.text
        assert "spawn" in caplog.text  # the valid menu is listed
