"""Units for the fluid chip model: idle descent, wake, busy accrual."""

import math

import pytest

from repro.energy.policies import (
    AlwaysOnPolicy,
    StaticPolicy,
    default_dynamic_policy,
)
from repro.energy.rdram import rdram_1600_model
from repro.energy.states import PowerState
from repro.memory.chip import ChipRates, FluidChip


@pytest.fixture
def model():
    return rdram_1600_model()


def make_chip(model, policy=None, start_asleep=True):
    policy = policy or default_dynamic_policy(model)
    return FluidChip(0, model, policy, start_asleep=start_asleep)


class TestIdleDescent:
    def test_starts_asleep_in_deepest_state(self, model):
        chip = make_chip(model)
        assert chip.state_at(0.0) is PowerState.POWERDOWN
        assert chip.is_low_power(0.0)

    def test_starts_active_when_requested(self, model):
        chip = make_chip(model, start_asleep=False)
        assert chip.state_at(0.0) is PowerState.ACTIVE

    def test_descent_walks_states(self, model):
        chip = make_chip(model, start_asleep=False)
        # Before the first threshold (~19.7 cycles) the chip is ACTIVE.
        assert chip.state_at(10.0) is PowerState.ACTIVE
        # Between standby and nap thresholds.
        assert chip.state_at(40.0) is PowerState.STANDBY
        # Past the nap threshold (plus its transition).
        assert chip.state_at(200.0) is PowerState.NAP
        # Way past the powerdown threshold.
        assert chip.state_at(10_000.0) is PowerState.POWERDOWN

    def test_always_on_never_descends(self, model):
        chip = make_chip(model, policy=AlwaysOnPolicy(), start_asleep=False)
        assert chip.state_at(1e9) is PowerState.ACTIVE
        assert not chip.is_low_power(1e9)

    def test_idle_energy_accrues_low_power(self, model):
        chip = make_chip(model)
        chip.advance(1_600_000.0)  # 1 ms asleep in powerdown
        # 3 mW for 1 ms = 3 nJ.
        assert chip.energy.low_power == pytest.approx(3e-6, rel=1e-6)
        assert chip.energy.total == pytest.approx(3e-6, rel=1e-6)

    def test_descent_charges_transitions(self, model):
        chip = make_chip(model, start_asleep=False)
        chip.advance(100_000.0)
        assert chip.energy.transition > 0
        assert chip.energy.idle_threshold > 0
        assert chip.time.transition == pytest.approx(17.0)  # 1 + 8 + 8 cycles

    def test_advance_is_piecewise_consistent(self, model):
        whole = make_chip(model, start_asleep=False)
        whole.advance(100_000.0)
        pieces = make_chip(model, start_asleep=False)
        for t in (5.0, 25.0, 70.0, 500.0, 99_999.0, 100_000.0):
            pieces.advance(t)
        assert pieces.energy.total == pytest.approx(whole.energy.total)
        assert pieces.time.total == pytest.approx(whole.time.total)

    def test_advance_backwards_is_noop(self, model):
        chip = make_chip(model)
        chip.advance(1000.0)
        before = chip.energy.total
        chip.advance(500.0)
        assert chip.energy.total == before


class TestWake:
    def test_wake_from_powerdown_latency(self, model):
        chip = make_chip(model)
        chip.advance(50_000.0)
        latency = chip.wake_latency(50_000.0)
        assert latency == pytest.approx(9600.0)
        ready = chip.wake(50_000.0)
        assert ready == pytest.approx(50_000.0 + 9600.0)
        assert chip.wake_count == 1

    def test_wake_active_chip_is_free(self, model):
        chip = make_chip(model, start_asleep=False)
        chip.advance(5.0)  # still inside the first threshold
        assert chip.wake_latency(5.0) == 0.0
        assert chip.wake(5.0) == 5.0
        assert chip.wake_count == 0

    def test_wake_mid_transition_finishes_descent_first(self, model):
        chip = make_chip(model, start_asleep=False)
        # The standby downward transition runs during cycle [19.7, 20.7].
        t = 20.0
        chip.advance(t)
        latency = chip.wake_latency(t)
        # Remaining downward leg plus the standby resync.
        assert latency == pytest.approx((20.7 - 20.0) + 9.6, abs=0.2)

    def test_wake_charges_energy(self, model):
        chip = make_chip(model)
        chip.advance(50_000.0)
        before = chip.energy.transition
        chip.wake(50_000.0)
        # Powerdown resync: 15 mW for 6000 ns = 90 nJ... in joules.
        assert chip.energy.transition - before == pytest.approx(
            0.015 * 6000e-9, rel=1e-6)

    def test_advance_during_wake_window_is_noop(self, model):
        chip = make_chip(model)
        chip.advance(50_000.0)
        ready = chip.wake(50_000.0)
        energy = chip.energy.total
        chip.advance((50_000.0 + ready) / 2)
        assert chip.energy.total == energy

    def test_double_wake_returns_same_ready(self, model):
        chip = make_chip(model)
        chip.advance(50_000.0)
        ready = chip.wake(50_000.0)
        assert chip.wake(52_000.0) == ready
        assert chip.wake_count == 1


class TestBusyAccrual:
    def test_serving_and_idle_split(self, model):
        chip = make_chip(model, start_asleep=False)
        chip.set_busy(0.0, has_dma_stream=True,
                      rates=ChipRates(dma=1 / 3))
        chip.advance(1200.0)
        assert chip.time.serving_dma == pytest.approx(400.0)
        assert chip.time.idle_dma == pytest.approx(800.0)
        # All at active power.
        expected = 0.3 * 1200 / model.frequency_hz
        assert chip.energy.total == pytest.approx(expected)

    def test_idle_without_dma_is_threshold(self, model):
        chip = make_chip(model, start_asleep=False)
        chip.set_busy(0.0, has_dma_stream=False,
                      rates=ChipRates(proc=0.5))
        chip.advance(100.0)
        assert chip.time.serving_proc == pytest.approx(50.0)
        assert chip.time.idle_threshold == pytest.approx(50.0)
        assert chip.time.idle_dma == 0.0

    def test_migration_bucket(self, model):
        chip = make_chip(model, start_asleep=False)
        chip.set_busy(0.0, has_dma_stream=False,
                      rates=ChipRates(migration=1.0))
        chip.advance(100.0)
        assert chip.time.migration == pytest.approx(100.0)
        assert chip.energy.migration > 0

    def test_set_idle_restarts_descent(self, model):
        chip = make_chip(model, start_asleep=False)
        chip.set_busy(0.0, True, ChipRates(dma=1.0))
        chip.advance(1000.0)
        chip.set_idle(1000.0)
        assert chip.state_at(1005.0) is PowerState.ACTIVE  # within threshold
        assert chip.state_at(1000.0 + 10_000.0) is PowerState.POWERDOWN

    def test_full_utilization_no_idle(self, model):
        chip = make_chip(model, start_asleep=False)
        chip.set_busy(0.0, True, ChipRates(dma=1.0))
        chip.advance(500.0)
        assert chip.time.idle_dma == 0.0
        assert chip.time.serving_dma == pytest.approx(500.0)


class TestStaticPolicyChip:
    def test_static_parks_immediately(self, model):
        chip = make_chip(model, policy=StaticPolicy(state=PowerState.NAP),
                         start_asleep=False)
        # Static policy: straight into nap after its (zero) delay.
        assert chip.state_at(100.0) is PowerState.NAP
        assert chip.state_at(1e7) is PowerState.NAP  # never deeper
