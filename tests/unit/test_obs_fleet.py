"""Units for cross-process fleet observability.

Collector logic is driven directly through :meth:`FleetCollector.handle`
(the watchdog on an injectable fake clock), the worker wrapper runs
in-process against a plain queue, and one round-trip test ships real
messages through the multiprocessing queue the pool would use.
"""

import pickle
import queue
import threading
import time

import pytest

from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.errors import ConfigurationError
from repro.exec.jobs import SimJob
from repro.exec.runner import _execute
from repro.obs import fleet as fleet_module
from repro.obs.export import validate_chrome_trace
from repro.obs.fleet import (
    FleetCollector,
    FleetConfig,
    fleet_timed_call,
    fleet_worker_init,
)
from repro.traces.records import DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

MB = 1 << 20


def tiny_trace() -> Trace:
    records = [DMATransfer(time=1000.0, page=3, size_bytes=8192),
               ProcessorBurst(time=2000.0, page=3, count=4),
               DMATransfer(time=5000.0, page=7, size_bytes=8192)]
    return Trace(name="tiny", records=records, duration_cycles=100_000.0)


def tiny_config() -> SimulationConfig:
    return SimulationConfig(
        memory=MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192),
        buses=BusConfig(count=3))


def tiny_job(technique: str = "baseline", tag: str = "") -> SimJob:
    return SimJob(tiny_trace(), technique, config=tiny_config(), tag=tag)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def worker_ctx():
    """Bind the in-process 'worker' to a plain queue; restore after."""
    q = queue.Queue()
    fleet_worker_init(q, FleetCollector(FleetConfig(
        heartbeat_s=0.05)).worker_opts())
    yield q
    fleet_module._WORKER_CTX = None


def drain(q) -> list[dict]:
    out = []
    while True:
        try:
            out.append(q.get_nowait())
        except queue.Empty:
            return out


class TestFleetConfig:
    def test_defaults_are_valid(self):
        config = FleetConfig()
        assert config.capture_spans
        assert not config.sample_telemetry  # ULP-perturbing: opt-in only

    @pytest.mark.parametrize("kwargs", [
        {"heartbeat_s": 0.0},
        {"poll_s": -1.0},
        {"stall_after_s": 0.0},
        {"stall_floor_s": 0.0},
        {"stall_wall_factor": -2.0},
        {"span_capacity": 0},
        {"inject_stall_s": -1.0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FleetConfig(**kwargs)


class TestWorkerWrapper:
    def test_streams_started_and_finished_with_spans(self, worker_ctx):
        job = SimJob(tiny_trace(), "dma-ta", config=tiny_config(),
                     mu=1.0, tag="mu=1:dma-ta")
        result, wall = fleet_timed_call(_execute, job, job.key(), True)
        assert result.technique == "dma-ta"
        assert wall > 0
        messages = drain(worker_ctx)
        kinds = [m["kind"] for m in messages]
        assert kinds[0] == "job.started"
        assert kinds[-1] == "job.finished"
        started, finished = messages[0], messages[-1]
        assert started["tag"] == "mu=1:dma-ta"
        assert started["technique"] == "dma-ta"
        assert finished["ok"] is True
        assert finished["error"] is None
        assert finished["wall_s"] == wall
        assert finished["spans"], "ring-tracer spans must ship"
        assert finished["duration_cycles"] == result.duration_cycles
        assert finished["violations"] == {}
        assert finished["energy_j"] == result.energy_joules
        # Everything on the wire must survive the pickle boundary.
        for message in messages:
            assert pickle.loads(pickle.dumps(message)) == message

    def test_observed_body_matches_plain_run_exactly(self, worker_ctx):
        import dataclasses

        job = SimJob(tiny_trace(), "dma-ta", config=tiny_config(),
                     mu=1.0)
        observed, _ = fleet_timed_call(_execute, job, job.key(), True)
        plain = _execute(job)
        assert dataclasses.asdict(observed) == dataclasses.asdict(plain)

    def test_custom_worker_body_skips_span_capture(self, worker_ctx):
        calls = []

        def custom(job):
            calls.append(job.technique)
            return _execute(job)

        job = tiny_job()
        result, _ = fleet_timed_call(custom, job, job.key(), False)
        assert calls == ["baseline"]
        finished = drain(worker_ctx)[-1]
        assert finished["ok"] is True
        assert "spans" not in finished

    def test_exception_reports_failure_and_reraises(self, worker_ctx):
        def boom(job):
            raise RuntimeError("injected worker fault")

        job = tiny_job()
        with pytest.raises(RuntimeError, match="injected worker fault"):
            fleet_timed_call(boom, job, job.key(), False)
        finished = drain(worker_ctx)[-1]
        assert finished["kind"] == "job.finished"
        assert finished["ok"] is False
        assert "injected worker fault" in finished["error"]

    def test_heartbeats_flow_during_long_jobs(self, worker_ctx):
        def slow(job):
            time.sleep(0.25)
            return _execute(job)

        job = tiny_job()
        fleet_timed_call(slow, job, job.key(), False)
        kinds = [m["kind"] for m in drain(worker_ctx)]
        assert "job.heartbeat" in kinds

    def test_without_initializer_degrades_to_plain_timing(self):
        fleet_module._WORKER_CTX = None
        job = tiny_job()
        result, wall = fleet_timed_call(_execute, job, job.key(), True)
        assert result.technique == "baseline"
        assert wall > 0


class TestCollectorStateMachine:
    def make(self, clock=None, **config_kwargs):
        collector = FleetCollector(FleetConfig(**config_kwargs),
                                   clock=clock or FakeClock())
        return collector

    def test_lifecycle_counts_and_report(self):
        clock = FakeClock()
        collector = self.make(clock)
        job = tiny_job("dma-ta", tag="point-a")
        key = job.key()
        collector.expect(2)
        collector.note_submitted(key, job)
        collector.handle({"kind": "job.started", "worker": 4242,
                          "key": key, "tag": "point-a",
                          "technique": "dma-ta", "mono": clock()})
        clock.advance(0.5)
        collector.handle({"kind": "job.finished", "worker": 4242,
                          "key": key, "mono": clock(), "ok": True,
                          "error": None, "wall_s": 0.5,
                          "violations": {"result-energy-mismatch": 1},
                          "energy_j": 1.0, "requests": 4.0})
        cached = tiny_job("pl", tag="point-b")
        collector.note_submitted(cached.key(), cached)
        collector.note_cache_hit(cached.key(), cached)
        collector.quiesce(wait_s=0.0)
        report = collector.report()
        assert report.total == 2
        assert report.computed == 1
        assert report.cached == 1
        assert report.failed == 0
        assert report.violations == {"result-energy-mismatch": 1}
        assert report.cache_hit_rate == 0.5
        rendered = report.render()
        assert "2 job(s)" in rendered
        assert "result-energy-mismatch: 1" in rendered

    def test_worker_slots_assigned_in_first_seen_order(self):
        collector = self.make()
        jobs = [tiny_job("baseline"), tiny_job("pl"), tiny_job("nopm")]
        for pid, job in zip((900, 800, 900), jobs):
            collector.note_submitted(job.key(), job)
            collector.handle({"kind": "job.started", "worker": pid,
                              "key": job.key(), "tag": job.label,
                              "technique": job.technique, "mono": 1.0})
        snapshot = collector.snapshot()
        slots = {w["pid"]: w["slot"] for w in snapshot["workers"]}
        assert slots == {900: 1, 800: 2}

    def test_serial_path_is_worker_slot_zero(self):
        collector = self.make()
        job = tiny_job()
        key = job.key()
        collector.note_submitted(key, job)
        collector.note_serial_start(key)
        collector.note_serial_finish(key, True, None, 0.1)
        report = collector.report()
        assert report.serial == 1
        assert report.workers[0]["slot"] == 0
        assert report.workers[0]["jobs_done"] == 1

    def test_snapshot_eta_and_rates(self):
        clock = FakeClock()
        collector = self.make(clock)
        collector.expect(4)
        jobs = [tiny_job(t) for t in ("baseline", "pl")]
        for job in jobs:
            collector.note_submitted(job.key(), job)
        for index, job in enumerate(jobs):
            collector.handle({"kind": "job.started", "worker": 7000,
                              "key": job.key(), "tag": job.label,
                              "technique": job.technique,
                              "mono": clock()})
            clock.advance(2.0)
            collector.handle({"kind": "job.finished", "worker": 7000,
                              "key": job.key(), "mono": clock(),
                              "ok": True, "error": None, "wall_s": 2.0,
                              "violations": {}})
        snapshot = collector.snapshot()
        assert snapshot["done"] == 2
        assert snapshot["total"] == 4
        assert snapshot["mean_wall_s"] == pytest.approx(2.0)
        # 2 remaining jobs at 2 s each over 1 live worker.
        assert snapshot["eta_s"] == pytest.approx(4.0)
        assert snapshot["jobs_per_s"] == pytest.approx(2 / 4.0)

    def test_ignores_malformed_messages(self):
        collector = self.make()
        collector.handle("not a mapping")
        collector.handle({"kind": "job.started"})  # no key
        collector.handle({"kind": "mystery", "key": "k", "mono": 1.0})
        assert collector.report().total == 1  # the mystery key only


class TestWatchdog:
    def test_stall_detected_attributed_and_drained_once(self):
        clock = FakeClock()
        collector = FleetCollector(
            FleetConfig(heartbeat_s=0.25, stall_after_s=3.0), clock=clock)
        job = tiny_job("dma-ta", tag="stuck-point")
        key = job.key()
        collector.note_submitted(key, job)
        collector.handle({"kind": "job.started", "worker": 5555,
                          "key": key, "tag": "stuck-point",
                          "technique": "dma-ta", "mono": clock()})
        # A worker that dies mid-job: started, then permanent silence.
        clock.advance(2.0)
        assert collector.check_stalls() == []
        clock.advance(2.0)
        stalls = collector.check_stalls()
        assert len(stalls) == 1
        stall = stalls[0]
        assert stall.key == key
        assert stall.tag == "stuck-point"
        assert stall.worker == 1
        assert stall.diagnosis.startswith("fleet.stall: job stuck-point")
        assert "requeueing onto the serial path" in stall.diagnosis
        assert collector.take_stalled() == [key]
        assert collector.take_stalled() == []  # drained exactly once
        assert collector.check_stalls() == []  # not re-flagged

    def test_heartbeats_defer_the_watchdog(self):
        clock = FakeClock()
        collector = FleetCollector(
            FleetConfig(stall_after_s=3.0), clock=clock)
        job = tiny_job(tag="alive")
        key = job.key()
        collector.note_submitted(key, job)
        collector.handle({"kind": "job.started", "worker": 1, "key": key,
                          "tag": "alive", "technique": "baseline",
                          "mono": clock()})
        for _ in range(4):
            clock.advance(2.0)
            collector.handle({"kind": "job.heartbeat", "worker": 1,
                              "key": key, "mono": clock()})
            assert collector.check_stalls() == []

    def test_derived_bound_scales_with_observed_walls(self):
        clock = FakeClock()
        collector = FleetCollector(
            FleetConfig(heartbeat_s=0.25, stall_floor_s=5.0,
                        stall_wall_factor=8.0), clock=clock)
        assert collector.stall_bound() == 5.0  # cold: the floor
        job = tiny_job()
        key = job.key()
        collector.note_submitted(key, job)
        collector.handle({"kind": "job.finished", "worker": 1,
                          "key": key, "mono": clock(), "ok": True,
                          "error": None, "wall_s": 2.0})
        assert collector.stall_bound() == pytest.approx(16.0)

    def test_stall_publishes_sse_event(self):
        clock = FakeClock()
        collector = FleetCollector(
            FleetConfig(stall_after_s=1.0), clock=clock)
        subscriber = collector.broker.subscribe()
        job = tiny_job(tag="pub")
        key = job.key()
        collector.note_submitted(key, job)
        collector.handle({"kind": "job.started", "worker": 1, "key": key,
                          "tag": "pub", "technique": "baseline",
                          "mono": clock()})
        clock.advance(2.0)
        collector.check_stalls()
        events = []
        while True:
            try:
                events.append(subscriber.get_nowait())
            except queue.Empty:
                break
        assert any(item and item[0] == "stall" for item in events)


class TestFleetTrace:
    def test_merged_trace_validates_and_flags_stalls(self):
        clock = FakeClock()
        collector = FleetCollector(
            FleetConfig(stall_after_s=1.0), clock=clock)
        good = tiny_job("pl", tag="good")
        stuck = tiny_job("dma-ta", tag="stuck")
        for job in (good, stuck):
            collector.note_submitted(job.key(), job)
        clock.advance(0.1)
        collector.handle({"kind": "job.started", "worker": 10,
                          "key": good.key(), "tag": "good",
                          "technique": "pl", "mono": clock()})
        collector.handle({"kind": "job.started", "worker": 20,
                          "key": stuck.key(), "tag": "stuck",
                          "technique": "dma-ta", "mono": clock()})
        clock.advance(0.4)
        collector.handle({
            "kind": "job.finished", "worker": 10, "key": good.key(),
            "mono": clock(), "ok": True, "error": None, "wall_s": 0.4,
            "duration_cycles": 1000.0,
            "spans": [{"ts": 0.0, "name": "active", "track": "chip:0",
                       "ph": "X", "dur": 500.0}]})
        clock.advance(2.0)
        collector.check_stalls()
        trace = collector.chrome_trace(label="unit")
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert "good" in names
        assert "STALLED stuck" in names
        assert "fleet.stall" in names
        assert "job.submitted" in names
        # The sim span is rebased inside the job's wall interval.
        sim = next(e for e in trace["traceEvents"]
                   if e["name"] == "active")
        job_span = next(e for e in trace["traceEvents"]
                        if e["name"] == "good")
        assert job_span["ts"] <= sim["ts"]
        assert sim["ts"] + sim["dur"] <= \
            job_span["ts"] + job_span["dur"] + 1e-6
        stalled_span = next(e for e in trace["traceEvents"]
                            if e["name"] == "STALLED stuck")
        assert stalled_span["args"]["stalled"] is True
        assert stalled_span["args"]["diagnosis"].startswith("fleet.stall")

    def test_cache_hits_and_requeues_annotate_the_sweep_lane(self):
        clock = FakeClock()
        collector = FleetCollector(FleetConfig(), clock=clock)
        hit = tiny_job("pl", tag="warm")
        requeued = tiny_job("dma-ta", tag="bounced")
        collector.note_submitted(hit.key(), hit)
        collector.note_cache_hit(hit.key(), hit)
        collector.note_submitted(requeued.key(), requeued)
        collector.note_requeued(requeued.key())
        collector.note_serial_start(requeued.key())
        clock.advance(0.3)
        collector.note_serial_finish(requeued.key(), True, None, 0.3)
        names = {e["name"] for e in collector.chrome_trace()["traceEvents"]}
        assert "cache.hit" in names
        assert "job.requeued" in names


class TestQueueRoundTrip:
    def test_messages_survive_the_real_mp_queue(self):
        collector = FleetCollector(FleetConfig(heartbeat_s=0.05))
        fleet_queue, opts = collector.initargs()
        job = SimJob(tiny_trace(), "dma-ta", config=tiny_config(),
                     mu=1.0, tag="round-trip")
        key = job.key()
        collector.note_submitted(key, job)

        def worker_side():
            fleet_worker_init(fleet_queue, opts)
            try:
                fleet_timed_call(_execute, job, key, True)
            finally:
                fleet_module._WORKER_CTX = None

        thread = threading.Thread(target=worker_side)
        thread.start()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        collector.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            report = collector.report()
            if report.computed == 1:
                break
            time.sleep(0.05)
        collector.quiesce()
        report = collector.report()
        assert report.computed == 1
        assert report.spans_merged > 0
        assert validate_chrome_trace(collector.chrome_trace()) == []
        collector.close()

    def test_initargs_are_picklable_for_spawned_workers(self):
        collector = FleetCollector(FleetConfig())
        _, opts = collector.initargs()
        assert pickle.loads(pickle.dumps(opts)) == opts
        collector.close()
