"""Units for the configuration objects and their derived geometry."""

import pytest

from repro import units
from repro.config import (
    BusConfig,
    MemoryConfig,
    PopularityLayoutConfig,
    ProcessorConfig,
    SimulationConfig,
    TemporalAlignmentConfig,
)
from repro.errors import ConfigurationError


class TestMemoryConfig:
    def test_paper_defaults(self):
        m = MemoryConfig()
        assert m.num_chips == 32
        assert m.total_bytes == 1 << 30  # 1 GB
        assert m.pages_per_chip == 4096
        assert m.total_pages == 131072
        assert m.serve_cycles == pytest.approx(4.0)

    def test_page_must_fit_chip(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(num_chips=1, chip_bytes=4096, page_bytes=8192)

    def test_chip_must_be_page_multiple(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(chip_bytes=(1 << 20) + 17)

    def test_positive_counts(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(num_chips=0)


class TestBusConfig:
    def test_defaults(self):
        b = BusConfig()
        assert b.count == 3
        assert b.bandwidth_bytes_per_s == pytest.approx(units.PCIX_BANDWIDTH)
        assert b.sharing == "fifo"

    def test_rejects_unknown_sharing(self):
        with pytest.raises(ConfigurationError):
            BusConfig(sharing="weighted")

    def test_rejects_zero_buses(self):
        with pytest.raises(ConfigurationError):
            BusConfig(count=0)


class TestDerivedGeometry:
    def test_request_period_is_12_cycles(self):
        cfg = SimulationConfig()
        assert cfg.request_period_cycles == pytest.approx(12.0, abs=0.05)

    def test_stream_demand_is_one_third(self):
        cfg = SimulationConfig()
        assert cfg.stream_demand == pytest.approx(1 / 3, abs=0.01)

    def test_saturating_buses_is_three(self):
        """The paper's k = ceil(Rm/Rb) = 3 for PCI-X against RDRAM-1600."""
        assert SimulationConfig().saturating_buses == 3

    def test_saturating_buses_scales_with_bus_bandwidth(self):
        # Half a PCI-X: ratio ~6.015, tolerance trims it to 6.
        half = SimulationConfig().with_bus_bandwidth(units.PCIX_BANDWIDTH / 2)
        assert half.saturating_buses == 6
        # A bus as fast as the memory needs exactly one.
        fast = SimulationConfig().with_bus_bandwidth(3.2e9)
        assert fast.saturating_buses == 1

    def test_proc_serve_cycles(self):
        # A 64-byte cache line takes 32 cycles at 2 bytes/cycle.
        assert SimulationConfig().proc_serve_cycles == pytest.approx(32.0)

    def test_with_mu(self):
        cfg = SimulationConfig().with_mu(7.5)
        assert cfg.alignment.mu == 7.5

    def test_with_groups(self):
        cfg = SimulationConfig().with_groups(3)
        assert cfg.layout.num_groups == 3

    def test_default_policy_attached(self):
        assert SimulationConfig().policy is not None


class TestAlignmentConfig:
    def test_negative_mu_rejected(self):
        with pytest.raises(ConfigurationError):
            TemporalAlignmentConfig(mu=-1.0)

    def test_zero_epoch_rejected(self):
        with pytest.raises(ConfigurationError):
            TemporalAlignmentConfig(epoch_cycles=0.0)

    def test_deadline_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            TemporalAlignmentConfig(deadline_fraction=0.0)
        with pytest.raises(ConfigurationError):
            TemporalAlignmentConfig(deadline_fraction=1.5)


class TestLayoutConfig:
    def test_needs_two_groups(self):
        with pytest.raises(ConfigurationError):
            PopularityLayoutConfig(num_groups=1)

    def test_hot_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            PopularityLayoutConfig(hot_access_fraction=0.0)
        with pytest.raises(ConfigurationError):
            PopularityLayoutConfig(hot_access_fraction=1.0)

    def test_counter_bits_bounds(self):
        with pytest.raises(ConfigurationError):
            PopularityLayoutConfig(counter_bits=0)
        with pytest.raises(ConfigurationError):
            PopularityLayoutConfig(counter_bits=40)

    def test_hysteresis_lower_bound(self):
        with pytest.raises(ConfigurationError):
            PopularityLayoutConfig(hysteresis_factor=0.5)


class TestProcessorConfig:
    def test_default_cache_line(self):
        assert ProcessorConfig().cache_line_bytes == 64

    def test_rejects_zero_line(self):
        with pytest.raises(ConfigurationError):
            ProcessorConfig(cache_line_bytes=0)
