"""Units for the bench record schema and trajectory files."""

import json

import pytest

from repro.bench.record import SCHEMA_VERSION, BenchRecord, Metric, Phase
from repro.bench.trajectory import (
    MAX_RUNS_PER_RECORD,
    append_records,
    load_all_trajectories,
    load_result_records,
    load_trajectory,
    trajectory_path,
    write_json_atomic,
)
from repro.errors import BenchFormatError


def make_record(name="fig5_savings", figure="fig5", wall=1.0,
                value=0.35, expected=0.386, bench_ms=25.0):
    return BenchRecord(
        name=name, figure=figure, created="2026-08-06T00:00:00+00:00",
        meta={"bench_ms": bench_ms, "jobs": 1},
        metrics=[Metric(name="dma-ta-pl/cp=0.1", value=value,
                        unit="fraction", expected=expected),
                 Metric(name="untied", value=2.0)],
        phases=[Phase(name="sweep", wall_s=wall)],
        cache={"memo_hits": 3, "memo_misses": 1},
    )


class TestMetric:
    def test_relative_deviation(self):
        m = Metric(name="x", value=0.30, expected=0.40)
        assert m.deviation == pytest.approx(-0.25)

    def test_absolute_deviation_near_zero_expected(self):
        m = Metric(name="x", value=0.02, expected=0.0)
        assert m.deviation == pytest.approx(0.02)

    def test_untied_metric_has_no_deviation(self):
        assert Metric(name="x", value=1.0).deviation is None
        assert "deviation" not in Metric(name="x", value=1.0).as_dict()


class TestBenchRecord:
    def test_roundtrip(self):
        record = make_record()
        clone = BenchRecord.from_dict(record.to_dict())
        assert clone.name == record.name
        assert clone.figure == record.figure
        assert clone.bench_ms == 25.0
        assert clone.wall_s == pytest.approx(1.0)
        assert clone.deviations() == pytest.approx(record.deviations())
        assert clone.cache == record.cache

    def test_fidelity_digest(self):
        fidelity = make_record().fidelity()
        assert fidelity["tied_metrics"] == 1
        assert fidelity["max_abs_deviation"] == pytest.approx(
            abs(0.35 - 0.386) / 0.386)

    def test_fidelity_digest_without_tied_metrics(self):
        record = BenchRecord(name="n", figure="f",
                             metrics=[Metric(name="x", value=1.0)])
        assert record.fidelity() == {"tied_metrics": 0}

    def test_serialised_form_is_json_safe(self):
        json.dumps(make_record().to_dict())

    def test_wrong_schema_rejected_with_guidance(self):
        payload = make_record().to_dict()
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(BenchFormatError, match="repro bench run"):
            BenchRecord.from_dict(payload)

    def test_missing_schema_rejected(self):
        payload = make_record().to_dict()
        del payload["schema"]
        with pytest.raises(BenchFormatError, match="schema"):
            BenchRecord.from_dict(payload)

    def test_non_object_rejected(self):
        with pytest.raises(BenchFormatError, match="not a JSON object"):
            BenchRecord.from_dict([1, 2, 3])

    def test_non_numeric_metric_value_rejected(self):
        payload = make_record().to_dict()
        payload["metrics"][0]["value"] = "fast"
        with pytest.raises(BenchFormatError, match="non-numeric"):
            BenchRecord.from_dict(payload)

    def test_negative_phase_wall_rejected(self):
        payload = make_record().to_dict()
        payload["phases"][0]["wall_s"] = -1.0
        with pytest.raises(BenchFormatError, match="wall_s"):
            BenchRecord.from_dict(payload)


class TestTrajectory:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_trajectory(tmp_path / "BENCH_fig5.json") == []

    def test_append_and_load_roundtrip(self, tmp_path):
        append_records([make_record(wall=1.0)], root=tmp_path)
        append_records([make_record(wall=2.0)], root=tmp_path)
        runs = load_trajectory(trajectory_path("fig5", tmp_path))
        assert [r.wall_s for r in runs] == [1.0, 2.0]
        assert load_all_trajectories(tmp_path)["fig5"] == runs

    def test_figure_name_sanitised(self, tmp_path):
        path = trajectory_path("fig 5/odd", tmp_path)
        assert path.name == "BENCH_fig_5_odd.json"

    def test_history_capped_per_record_name(self, tmp_path):
        records = [make_record(wall=float(i))
                   for i in range(MAX_RUNS_PER_RECORD + 5)]
        append_records(records, root=tmp_path)
        runs = load_trajectory(trajectory_path("fig5", tmp_path))
        assert len(runs) == MAX_RUNS_PER_RECORD
        assert runs[0].wall_s == 5.0  # oldest five dropped

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "BENCH_fig5.json"
        path.write_text("{truncated", encoding="utf-8")
        with pytest.raises(BenchFormatError, match="not valid JSON"):
            load_trajectory(path)

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "BENCH_fig5.json"
        path.write_text(json.dumps({"schema": 1, "figure": "fig5"}),
                        encoding="utf-8")
        with pytest.raises(BenchFormatError, match="trajectory object"):
            load_trajectory(path)

    def test_old_schema_trajectory_rejected(self, tmp_path):
        path = tmp_path / "BENCH_fig5.json"
        path.write_text(json.dumps({"schema": 0, "figure": "fig5",
                                    "runs": []}), encoding="utf-8")
        with pytest.raises(BenchFormatError, match="schema 0"):
            load_trajectory(path)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        write_json_atomic(tmp_path / "out.json", {"ok": True})
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_load_result_records(self, tmp_path):
        write_json_atomic(tmp_path / "a.json", make_record().to_dict())
        records = load_result_records(tmp_path)
        assert len(records) == 1
        assert records[0].name == "fig5_savings"

    def test_load_result_records_rejects_corrupt_file(self, tmp_path):
        (tmp_path / "bad.json").write_text("nope", encoding="utf-8")
        with pytest.raises(BenchFormatError):
            load_result_records(tmp_path)
