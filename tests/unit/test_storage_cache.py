"""Units for the LRU buffer cache."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.cache import BufferCache


class TestLookup:
    def test_miss_then_hit(self):
        cache = BufferCache(4)
        assert not cache.lookup(1)
        cache.insert(1)
        assert cache.lookup(1)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_ratio == 0.5

    def test_hit_ratio_empty(self):
        assert BufferCache(4).hit_ratio == 0.0


class TestEviction:
    def test_lru_order(self):
        cache = BufferCache(2)
        cache.insert(1)
        cache.insert(2)
        evicted = cache.insert(3)
        assert evicted == (1, False)
        assert 1 not in cache and 2 in cache and 3 in cache

    def test_lookup_refreshes_recency(self):
        cache = BufferCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)  # 1 becomes MRU
        evicted = cache.insert(3)
        assert evicted == (2, False)

    def test_dirty_eviction(self):
        cache = BufferCache(1)
        cache.insert(1, dirty=True)
        evicted = cache.insert(2)
        assert evicted == (1, True)

    def test_reinsert_no_eviction(self):
        cache = BufferCache(1)
        cache.insert(1)
        assert cache.insert(1, dirty=True) is None
        evicted = cache.insert(2)
        assert evicted == (1, True)  # dirty bit stuck


class TestDirty:
    def test_mark_dirty(self):
        cache = BufferCache(2)
        cache.insert(1)
        assert cache.mark_dirty(1)
        assert not cache.mark_dirty(99)

    def test_resident_pages_lru_first(self):
        cache = BufferCache(3)
        for page in (1, 2, 3):
            cache.insert(page)
        cache.lookup(1)
        assert cache.resident_pages() == [2, 3, 1]


class TestValidation:
    def test_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            BufferCache(0)

    def test_len(self):
        cache = BufferCache(4)
        cache.insert(1)
        assert len(cache) == 1
