"""Units for the self-tuning dynamic policy."""

import pytest

from repro.energy.policies import break_even_cycles
from repro.energy.rdram import rdram_1600_model
from repro.energy.selftuning import SelfTuningPolicy
from repro.energy.states import LOW_POWER_STATES, PowerState
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return rdram_1600_model()


class TestSchedule:
    def test_starts_at_break_even(self, model):
        policy = SelfTuningPolicy()
        schedule = policy.schedule(model)
        assert schedule[0][0] == pytest.approx(
            break_even_cycles(model, PowerState.STANDBY))
        assert [s for _, s in schedule] == list(LOW_POWER_STATES)

    def test_scale_applies(self, model):
        policy = SelfTuningPolicy(scale=2.0)
        assert policy.schedule(model)[0][0] == pytest.approx(
            2 * break_even_cycles(model, PowerState.STANDBY))


class TestAdaptation:
    def test_premature_wakes_grow_thresholds(self, model):
        policy = SelfTuningPolicy()
        for _ in range(10):
            policy.observe_idle_period(25.0, model)  # woke almost at once
        new_scale = policy.adapt()
        assert new_scale == pytest.approx(1.5)

    def test_long_sleeps_shrink_thresholds(self, model):
        policy = SelfTuningPolicy()
        for _ in range(10):
            policy.observe_idle_period(1e6, model)
        assert policy.adapt() == pytest.approx(0.8)

    def test_balanced_observations_hold(self, model):
        policy = SelfTuningPolicy()
        for _ in range(5):
            policy.observe_idle_period(25.0, model)
            policy.observe_idle_period(1e6, model)
        assert policy.adapt() == pytest.approx(1.0)

    def test_counters_reset(self, model):
        policy = SelfTuningPolicy()
        policy.observe_idle_period(25.0, model)
        policy.adapt()
        assert policy.premature_wakes == 0
        assert policy.adjustments == 1

    def test_clamping(self, model):
        policy = SelfTuningPolicy(scale=12.0, max_scale=16.0)
        for _ in range(5):
            for _ in range(10):
                policy.observe_idle_period(25.0, model)
            policy.adapt()
        assert policy.scale == 16.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SelfTuningPolicy(scale=0.1, min_scale=0.25)
        with pytest.raises(ConfigurationError):
            SelfTuningPolicy(grow=0.9)


class TestEndToEnd:
    def test_paper_claim_threshold_insensitivity(self, model):
        """The paper: self-tuning results were "similar" because DMA
        traffic is insensitive to the threshold setting. Simulate with
        scales spanning 16x and check the energy moves only a little."""
        import dataclasses

        from repro import simulate
        from repro.config import SimulationConfig
        from repro.traces.synthetic import synthetic_storage_trace

        trace = synthetic_storage_trace(duration_ms=4.0, seed=23)
        energies = []
        for scale in (0.5, 1.0, 4.0):
            policy = SelfTuningPolicy(scale=scale)
            config = dataclasses.replace(SimulationConfig(), policy=policy)
            result = simulate(trace, config=config, technique="baseline")
            energies.append(result.energy_joules)
        spread = (max(energies) - min(energies)) / min(energies)
        assert spread < 0.20
