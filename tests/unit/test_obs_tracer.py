"""Units for the event model and tracer sinks."""

import json

import pytest

from repro.obs.events import (
    PH_COUNTER,
    PH_INSTANT,
    PH_SPAN,
    TRACK_CONTROLLER,
    Event,
    bus_track,
    chip_track,
)
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RingTracer,
    Tracer,
    active_tracer,
    events_of,
    read_jsonl_events,
)


class TestEvent:
    def test_as_dict_roundtrip(self):
        event = Event(ts=10.0, name="x", track="chip:0", ph=PH_SPAN,
                      dur=5.0, args={"bucket": "low_power"})
        data = event.as_dict()
        assert data["ts"] == 10.0
        assert data["dur"] == 5.0
        assert data["args"] == {"bucket": "low_power"}

    def test_instant_omits_duration(self):
        data = Event(ts=1.0, name="x", track="sim").as_dict()
        assert data["ph"] == PH_INSTANT
        assert "dur" not in data

    def test_track_helpers(self):
        assert chip_track(3) == "chip:3"
        assert bus_track(0) == "bus:0"


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.span(0.0, 1.0, "x", "chip:0")
        tracer.instant(0.0, "x", "chip:0")
        tracer.counter(0.0, "x", "sim", 1.0)
        tracer.close()

    def test_shared_instance(self):
        assert isinstance(NULL_TRACER, NullTracer)

    def test_normalised_away(self):
        assert active_tracer(None) is None
        assert active_tracer(NullTracer()) is None
        live = RingTracer()
        assert active_tracer(live) is live


class TestRingTracer:
    def test_collects_events(self):
        tracer = RingTracer()
        tracer.span(0.0, 4.0, "serve", "chip:1", {"bucket": "serving_dma"})
        tracer.instant(4.0, "ta.release", TRACK_CONTROLLER, {"batch": 2})
        tracer.counter(5.0, "slack", TRACK_CONTROLLER, 12.5)
        assert len(tracer) == 3
        phases = [e.ph for e in tracer]
        assert phases == [PH_SPAN, PH_INSTANT, PH_COUNTER]
        assert tracer.events[2].args == {"value": 12.5}

    def test_bounded_capacity_drops_oldest(self):
        tracer = RingTracer(capacity=2)
        for i in range(5):
            tracer.instant(float(i), f"e{i}", "sim")
        assert len(tracer) == 2
        assert tracer.emitted == 5
        assert tracer.dropped == 3
        assert [e.name for e in tracer.events] == ["e3", "e4"]

    def test_clear(self):
        tracer = RingTracer()
        tracer.instant(0.0, "x", "sim")
        tracer.clear()
        assert len(tracer) == 0

    def test_context_manager(self):
        with RingTracer() as tracer:
            tracer.instant(0.0, "x", "sim")
        assert len(tracer) == 1


class TestJsonlTracer:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.span(0.0, 4.0, "serve", "chip:0",
                        {"bucket": "serving_dma"})
            tracer.instant(4.0, "wake", "chip:0")
        events = read_jsonl_events(path)
        assert len(events) == 2
        assert events[0].ph == PH_SPAN
        assert events[0].dur == 4.0
        assert events[1].name == "wake"

    def test_lines_are_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.instant(1.0, "x", "sim", {"k": 1})
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "x"

    def test_external_handle_not_closed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with path.open("w") as handle:
            tracer = JsonlTracer(handle)
            tracer.instant(0.0, "x", "sim")
            tracer.close()
            assert not handle.closed


class TestEventsOf:
    def test_ring_yields_events(self):
        tracer = RingTracer()
        tracer.instant(0.0, "x", "sim")
        assert [e.name for e in events_of(tracer)] == ["x"]

    def test_non_ring_yields_nothing(self):
        assert events_of(None) == []
        assert events_of(NullTracer()) == []
        assert events_of(Tracer()) == []


class TestBaseTracer:
    def test_emit_is_abstract_hookpoint(self):
        tracer = Tracer()
        assert tracer.enabled is True
        with pytest.raises(NotImplementedError):
            tracer.span(0.0, 1.0, "x", "sim")
        with pytest.raises(NotImplementedError):
            tracer.emit(Event(ts=0.0, name="x", track="sim"))
