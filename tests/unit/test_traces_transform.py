"""Units for trace transformations."""

import pytest

from repro.errors import TraceError
from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst
from repro.traces.trace import Trace
from repro.traces.transform import (
    filter_source,
    merge_traces,
    renumber_clients,
    resize_transfers,
    scale_intensity,
    strip_clients,
)


@pytest.fixture
def trace():
    clients = {
        0: ClientRequest(request_id=0, arrival=100.0, base_cycles=50.0),
        1: ClientRequest(request_id=1, arrival=200.0, base_cycles=60.0),
    }
    records = [
        DMATransfer(time=100.0, page=1, size_bytes=8192, source="network",
                    request_id=0),
        DMATransfer(time=200.0, page=2, size_bytes=8192, source="disk",
                    request_id=1),
        ProcessorBurst(time=300.0, page=1, count=8),
    ]
    return Trace(name="base", records=records, clients=clients,
                 duration_cycles=1000.0, metadata={"seed": 1})


class TestScaleIntensity:
    def test_compresses_time(self, trace):
        fast = scale_intensity(trace, 2.0)
        assert fast.duration_cycles == 500.0
        assert fast.records[0].time == 50.0
        assert fast.clients[0].arrival == 50.0

    def test_rate_doubles(self, trace):
        fast = scale_intensity(trace, 2.0)
        assert fast.transfer_rate_per_ms(1.6e9) == pytest.approx(
            2 * trace.transfer_rate_per_ms(1.6e9))

    def test_dilates(self, trace):
        slow = scale_intensity(trace, 0.5)
        assert slow.duration_cycles == 2000.0

    def test_rejects_nonpositive(self, trace):
        with pytest.raises(TraceError):
            scale_intensity(trace, 0.0)

    def test_original_untouched(self, trace):
        scale_intensity(trace, 2.0)
        assert trace.records[0].time == 100.0


class TestFilterSource:
    def test_network_only(self, trace):
        net = filter_source(trace, "network")
        assert len(net.transfers) == 1
        assert net.transfers[0].source == "network"
        assert set(net.clients) == {0}
        assert net.processor_bursts == []

    def test_keep_processor(self, trace):
        disk = filter_source(trace, "disk", keep_processor=True)
        assert len(disk.processor_bursts) == 1
        assert set(disk.clients) == {1}


class TestStripClients:
    def test_strips_everything(self, trace):
        raw = strip_clients(trace)
        assert raw.clients == {}
        assert all(t.request_id is None for t in raw.transfers)

    def test_preserves_times_and_pages(self, trace):
        raw = strip_clients(trace)
        assert [r.time for r in raw.records] == \
               [r.time for r in trace.records]


class TestRenumberAndMerge:
    def test_renumber(self, trace):
        shifted = renumber_clients(trace, 100)
        assert set(shifted.clients) == {100, 101}
        assert shifted.transfers[0].request_id == 100
        assert shifted.clients[100].request_id == 100

    def test_renumber_rejects_negative(self, trace):
        with pytest.raises(TraceError):
            renumber_clients(trace, -1)

    def test_merge_no_collisions(self, trace):
        merged = merge_traces([trace, trace, trace])
        assert len(merged.clients) == 6
        assert len(merged.transfers) == 6
        assert merged.duration_cycles == trace.duration_cycles

    def test_merge_empty_rejected(self):
        with pytest.raises(TraceError):
            merge_traces([])

    def test_merge_sorted(self, trace):
        merged = merge_traces([trace, scale_intensity(trace, 4.0)])
        times = [r.time for r in merged.records]
        assert times == sorted(times)


class TestResize:
    def test_resize(self, trace):
        small = resize_transfers(trace, 512)
        assert all(t.size_bytes == 512 for t in small.transfers)
        assert small.processor_bursts == trace.processor_bursts

    def test_rejects_nonpositive(self, trace):
        with pytest.raises(TraceError):
            resize_transfers(trace, 0)
