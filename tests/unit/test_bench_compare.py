"""Units for the bench regression comparator."""

import pytest

from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    FIGURE_TOLERANCES,
    IMPROVED,
    NO_BASELINE,
    REGRESSED,
    UNCHANGED,
    Tolerance,
    classify,
    compare_records,
    mad,
    median,
    render_comparison,
)
from repro.bench.record import BenchRecord, Metric, Phase


def make_run(wall=1.0, value=0.35, expected=0.386, bench_ms=25.0,
             name="fig5_savings", figure="fig5"):
    return BenchRecord(
        name=name, figure=figure, meta={"bench_ms": bench_ms},
        metrics=[Metric(name="dma-ta-pl/cp=0.1", value=value,
                        unit="fraction", expected=expected)],
        phases=[Phase(name="sweep", wall_s=wall)],
    )


def history(*walls, **kwargs):
    return {"fig5": [make_run(wall=w, **kwargs) for w in walls]}


def wall_verdict(comparison):
    return next(v for v in comparison.verdicts if v.kind == "performance")


def fidelity_verdict(comparison):
    return next(v for v in comparison.verdicts if v.kind == "fidelity")


class TestRobustStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_of_nothing_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad_outlier_immunity(self):
        # One wild outlier barely moves the MAD, unlike a stddev.
        assert mad([1.0, 1.1, 0.9, 1.0, 100.0]) == pytest.approx(0.1)

    def test_mad_degenerates_to_zero(self):
        assert mad([]) == 0.0
        assert mad([5.0]) == 0.0          # single committed run
        assert mad([2.0, 2.0, 2.0]) == 0.0  # zero-variance history


class TestClassify:
    def test_zero_variance_history_uses_configured_band(self):
        # MAD = 0, so the band must fall back to rel/abs tolerances
        # instead of flagging every microscopic delta.
        status, centre, band = classify(
            1.05, [1.0, 1.0, 1.0], rel_tol=0.10, abs_tol=0.0, mad_k=3.0)
        assert status == UNCHANGED
        assert centre == 1.0
        assert band == pytest.approx(0.10)

    def test_single_round_baseline_still_classifies(self):
        status, _, _ = classify(10.0, [1.0], rel_tol=0.5, abs_tol=0.25,
                                mad_k=3.0)
        assert status == REGRESSED

    def test_mad_widens_band_beyond_tolerance(self):
        noisy = [1.0, 2.0, 3.0, 4.0, 5.0]  # median 3, MAD = 1
        # 3.9 would regress under the 0.1-relative band alone (0.3);
        # the observed scatter widens the band to 1 MAD.
        status, _, band = classify(3.9, noisy, rel_tol=0.1, abs_tol=0.0,
                                   mad_k=1.0)
        assert band == pytest.approx(1.0)
        assert status == UNCHANGED

    def test_improved_below_band(self):
        status, _, _ = classify(0.1, [1.0, 1.0], rel_tol=0.2, abs_tol=0.0,
                                mad_k=3.0)
        assert status == IMPROVED


class TestCompareRecords:
    def test_unchanged_within_noise(self):
        comparison = compare_records([make_run(wall=1.1)],
                                     history(1.0, 1.05, 0.95))
        assert comparison.ok
        assert wall_verdict(comparison).status == UNCHANGED
        assert fidelity_verdict(comparison).status == UNCHANGED

    def test_wall_regression_detected(self):
        comparison = compare_records([make_run(wall=2.0)],
                                     history(1.0, 1.0, 1.0))
        verdict = wall_verdict(comparison)
        assert verdict.status == REGRESSED
        assert not comparison.ok
        assert comparison.regressions == [verdict]

    def test_wall_improvement_detected(self):
        comparison = compare_records([make_run(wall=0.2)],
                                     history(2.0, 2.0, 2.0))
        assert wall_verdict(comparison).status == IMPROVED
        assert comparison.ok

    def test_fidelity_regression_detected(self):
        # Baseline deviation ~ -9.3%; drifting to -19% breaks the
        # 2-point fidelity band while wall time stays flat.
        comparison = compare_records([make_run(value=0.3126)],
                                     history(1.0, 1.0, 1.0))
        assert wall_verdict(comparison).status == UNCHANGED
        assert fidelity_verdict(comparison).status == REGRESSED

    def test_fidelity_improvement_detected(self):
        comparison = compare_records([make_run(value=0.386)],
                                     history(1.0, 1.0, 1.0))
        assert fidelity_verdict(comparison).status == IMPROVED

    def test_no_baseline_for_unknown_record(self):
        comparison = compare_records([make_run(name="brand_new")],
                                     history(1.0))
        assert all(v.status == NO_BASELINE for v in comparison.verdicts)
        assert comparison.ok  # missing baseline never gates

    def test_bench_ms_mismatch_is_not_compared(self):
        # A 5 ms quick run must not be judged against the 25 ms
        # baseline — different trace durations, different walls.
        comparison = compare_records([make_run(wall=50.0, bench_ms=5.0)],
                                     history(1.0, 1.0))
        assert all(v.status == NO_BASELINE for v in comparison.verdicts)

    def test_abs_floor_protects_micro_phases(self):
        # 30 ms -> 90 ms is 3x, but under the absolute floor.
        comparison = compare_records([make_run(wall=0.09)],
                                     history(0.03, 0.03))
        assert wall_verdict(comparison).status == UNCHANGED

    def test_wall_rel_override(self):
        runs = [make_run(wall=1.5)]
        assert not compare_records(runs, history(1.0, 1.0)).regressions
        strict = compare_records(runs, history(1.0, 1.0), wall_rel=0.10)
        assert wall_verdict(strict).status == REGRESSED

    def test_figure_tolerance_overrides_exist(self):
        assert FIGURE_TOLERANCES["engines"].fidelity_abs > \
            DEFAULT_TOLERANCE.fidelity_abs
        assert FIGURE_TOLERANCES["table1"].fidelity_abs < \
            DEFAULT_TOLERANCE.fidelity_abs

    def test_custom_tolerances_mapping(self):
        loose = {"fig5": Tolerance(wall_rel=10.0, wall_abs_s=0.0)}
        comparison = compare_records([make_run(wall=5.0)],
                                     history(1.0, 1.0),
                                     tolerances=loose)
        assert wall_verdict(comparison).status == UNCHANGED

    def test_summary_and_render(self):
        comparison = compare_records([make_run(wall=2.0)],
                                     history(1.0, 1.0, 1.0))
        assert "1 regressed" in comparison.summary()
        text = render_comparison(comparison)
        assert "wall_s" in text
        assert "! [fig5]" in text
        verbose = render_comparison(comparison, verbose=True)
        assert "fidelity:dma-ta-pl/cp=0.1" in verbose
