"""Units for the opt-in profiling hooks."""

import pytest

from repro import simulate
from repro.obs.events import PH_SPAN, TRACK_PROFILE
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.perf import (
    PROFILE_ENV,
    fold_profile,
    merge_profiles,
    profile_events,
    profiling_enabled,
    run_profiled,
)
from repro.traces.synthetic import synthetic_storage_trace


@pytest.fixture
def trace():
    return synthetic_storage_trace(duration_ms=2.0, seed=7)


class TestProfilingEnabled:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert profiling_enabled() is False

    def test_env_turns_it_on(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert profiling_enabled() is True
        monkeypatch.setenv(PROFILE_ENV, "false")
        assert profiling_enabled() is False

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert profiling_enabled(False) is False
        monkeypatch.delenv(PROFILE_ENV)
        assert profiling_enabled(True) is True


class TestRunProfiled:
    def test_returns_result_and_hot_paths(self):
        def work():
            return sum(range(1000))

        result, hot = run_profiled(work)
        assert result == sum(range(1000))
        assert hot, "profiler should record at least one function"
        for entry in hot:
            assert set(entry) == {"func", "ncalls", "tot_s", "cum_s"}
        # Sorted by cumulative time, descending.
        cums = [e["cum_s"] for e in hot]
        assert cums == sorted(cums, reverse=True)

    def test_top_n_cap(self):
        _, hot = run_profiled(lambda: [str(i) for i in range(50)],
                              top_n=3)
        assert len(hot) <= 3


class TestSimulateProfile:
    def test_result_profile_off_by_default(self, trace, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert simulate(trace, technique="baseline").profile is None

    def test_flag_attaches_hot_paths(self, trace):
        result = simulate(trace, technique="baseline", profile=True)
        assert result.profile
        funcs = " ".join(e["func"] for e in result.profile)
        assert "repro" in funcs

    def test_env_attaches_hot_paths(self, trace, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert simulate(trace, technique="baseline").profile

    def test_profiled_result_matches_unprofiled(self, trace):
        plain = simulate(trace, technique="baseline")
        profiled = simulate(trace, technique="baseline", profile=True)
        assert profiled.energy_joules == pytest.approx(plain.energy_joules)


class TestMergeProfiles:
    def test_sums_by_function(self):
        a = [{"func": "f", "ncalls": 1, "tot_s": 0.1, "cum_s": 0.2}]
        b = [{"func": "f", "ncalls": 2, "tot_s": 0.3, "cum_s": 0.4},
             {"func": "g", "ncalls": 1, "tot_s": 0.0, "cum_s": 0.1}]
        merged = merge_profiles([a, b])
        assert merged[0] == {"func": "f", "ncalls": 3,
                             "tot_s": pytest.approx(0.4),
                             "cum_s": pytest.approx(0.6)}
        assert merged[1]["func"] == "g"

    def test_empty(self):
        assert merge_profiles([]) == []


class TestProfileEvents:
    def test_spans_laid_end_to_end(self):
        hot = [{"func": "f", "ncalls": 1, "tot_s": 0.5, "cum_s": 1.0},
               {"func": "g", "ncalls": 2, "tot_s": 0.2, "cum_s": 0.5}]
        events = profile_events(hot, frequency_hz=100.0)
        assert [e.name for e in events] == ["f", "g"]
        assert all(e.track == TRACK_PROFILE and e.ph == PH_SPAN
                   for e in events)
        assert events[0].ts == 0.0 and events[0].dur == 100.0
        assert events[1].ts == 100.0 and events[1].dur == 50.0
        assert events[0].args["ncalls"] == 1

    def test_events_export_to_valid_chrome_trace(self):
        hot = [{"func": "f", "ncalls": 1, "tot_s": 0.5, "cum_s": 1.0}]
        payload = chrome_trace(profile_events(hot))
        assert validate_chrome_trace(payload) == []
        names = [e.get("name") for e in payload["traceEvents"]]
        assert "f" in names
        # The profile track lands in its own named process.
        assert any(e.get("args", {}).get("name") == "profiler"
                   for e in payload["traceEvents"])


class TestFoldProfile:
    def test_builtin_names_survive(self):
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
        sorted([3, 1, 2])
        profiler.disable()
        hot = fold_profile(profiler, top_n=50)
        assert any("sorted" in e["func"] for e in hot)
