"""Units for the Chrome-trace exporter, validator, and residency fold."""

import json

import pytest

from repro.obs.events import Event, PH_SPAN
from repro.obs.export import (
    RESIDENCY_BUCKETS,
    chrome_trace,
    residency_from_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import RingTracer


def sample_events():
    tracer = RingTracer()
    tracer.span(0.0, 100.0, "serve", "chip:0", {"bucket": "serving_dma"})
    tracer.span(100.0, 50.0, "nap", "chip:0", {"bucket": "low_power"})
    tracer.span(0.0, 80.0, "transfer", "bus:1", {"bytes": 8192})
    tracer.instant(60.0, "ta.release", "controller", {"batch": 3})
    tracer.counter(100.0, "slack", "controller", 12.5)
    return tracer.events


class TestChromeTrace:
    def test_structure(self):
        obj = chrome_trace(sample_events(), frequency_hz=1e6, label="demo")
        assert obj["displayTimeUnit"] == "ms"
        assert obj["otherData"]["label"] == "demo"
        assert obj["otherData"]["frequency_hz"] == 1e6
        assert validate_chrome_trace(obj) == []

    def test_cycle_to_microsecond_scaling(self):
        # 1 MHz clock: one cycle is one microsecond.
        obj = chrome_trace(sample_events(), frequency_hz=1e6)
        spans = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        serve = next(e for e in spans if e["name"] == "serve")
        assert serve["ts"] == pytest.approx(0.0)
        assert serve["dur"] == pytest.approx(100.0)

    def test_track_to_pid_tid_mapping(self):
        obj = chrome_trace(sample_events(), frequency_hz=1e6)
        events = obj["traceEvents"]
        serve = next(e for e in events if e["name"] == "serve")
        transfer = next(e for e in events if e["name"] == "transfer")
        release = next(e for e in events if e["name"] == "ta.release")
        assert serve["pid"] == 1 and serve["tid"] == 0
        assert transfer["pid"] == 2 and transfer["tid"] == 1
        assert release["pid"] == 3
        assert release["s"] == "t"

    def test_metadata_names_every_track(self):
        obj = chrome_trace(sample_events(), frequency_hz=1e6)
        meta = [e for e in obj["traceEvents"] if e["ph"] == "M"]
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        assert {"chip 0", "bus 1", "controller"} <= thread_names
        assert {"memory chips", "I/O buses", "policies"} <= process_names

    def test_counter_events_carry_value(self):
        obj = chrome_trace(sample_events(), frequency_hz=1e6)
        counter = next(e for e in obj["traceEvents"] if e["ph"] == "C")
        assert counter["args"] == {"value": 12.5}

    def test_json_serialisable(self):
        json.dumps(chrome_trace(sample_events()))

    def test_empty_stream(self):
        obj = chrome_trace([])
        assert obj["traceEvents"] == []
        assert validate_chrome_trace(obj) == []


class TestWriteChromeTrace:
    def test_writes_loadable_json(self, tmp_path):
        path = write_chrome_trace(sample_events(), tmp_path / "trace.json",
                                  frequency_hz=1e6, label="unit")
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []
        assert obj["otherData"]["label"] == "unit"


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) == ["top level is not an object"]

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == [
            "traceEvents is missing or not an array"]
        assert validate_chrome_trace({"traceEvents": "nope"}) == [
            "traceEvents is missing or not an array"]

    def test_flags_bad_phase(self):
        obj = {"traceEvents": [{"name": "x", "ph": "Q", "pid": 1, "tid": 0,
                                "ts": 0}]}
        assert any("bad ph" in p for p in validate_chrome_trace(obj))

    def test_flags_span_without_duration(self):
        obj = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 0,
                                "ts": 0}]}
        assert any("bad dur" in p for p in validate_chrome_trace(obj))

    def test_flags_negative_timestamp(self):
        obj = {"traceEvents": [{"name": "x", "ph": "i", "pid": 1, "tid": 0,
                                "ts": -1, "s": "t"}]}
        assert any("bad ts" in p for p in validate_chrome_trace(obj))

    def test_flags_missing_pid_and_name(self):
        obj = {"traceEvents": [{"ph": "i", "ts": 0}]}
        problems = validate_chrome_trace(obj)
        assert any("missing name" in p for p in problems)
        assert any("missing pid" in p for p in problems)
        assert any("missing tid" in p for p in problems)

    def test_metadata_needs_no_timestamp(self):
        obj = {"traceEvents": [{"name": "process_name", "ph": "M",
                                "pid": 1, "tid": 0, "args": {"name": "x"}}]}
        assert validate_chrome_trace(obj) == []


class TestResidencyFromEvents:
    def test_single_bucket_spans(self):
        events = [
            Event(ts=0.0, name="nap", track="chip:0", ph=PH_SPAN, dur=40.0,
                  args={"bucket": "low_power"}),
            Event(ts=40.0, name="transition", track="chip:0", ph=PH_SPAN,
                  dur=10.0, args={"bucket": "transition"}),
        ]
        residency = residency_from_events(events)
        assert residency[0]["low_power"] == 40.0
        assert residency[0]["transition"] == 10.0
        assert set(residency[0]) == set(RESIDENCY_BUCKETS)

    def test_busy_span_with_splits(self):
        events = [Event(
            ts=0.0, name="active", track="chip:1", ph=PH_SPAN, dur=100.0,
            args={"serving_dma": 60.0, "idle_dma": 40.0})]
        residency = residency_from_events(events)
        assert residency[1]["serving_dma"] == 60.0
        assert residency[1]["idle_dma"] == 40.0

    def test_ignores_non_chip_and_non_span(self):
        events = [
            Event(ts=0.0, name="transfer", track="bus:0", ph=PH_SPAN,
                  dur=5.0, args={"bucket": "serving_dma"}),
            Event(ts=0.0, name="ta.release", track="controller",
                  args={"batch": 2}),
        ]
        assert residency_from_events(events) == {}
