"""Units for the storage/database server trace generators."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.database import DatabaseServer, DatabaseWorkloadParams
from repro.storage.server import StorageServer, StorageWorkloadParams
from repro.traces.records import DMATransfer, SOURCE_DISK, SOURCE_NETWORK
from repro.traces.stats import characterize


@pytest.fixture(scope="module")
def storage_trace():
    params = StorageWorkloadParams(duration_ms=10.0, warmup_requests=10_000)
    return StorageServer(params, seed=1).generate()


@pytest.fixture(scope="module")
def database_trace():
    params = DatabaseWorkloadParams(duration_ms=10.0)
    return DatabaseServer(params, seed=2).generate()


class TestStorageServer:
    def test_rates_near_published(self, storage_trace):
        stats = characterize(storage_trace)
        # Published OLTP-St: 45 net/ms and 16.7 disk/ms; the substitute
        # must land in the same regime.
        assert 30 <= stats.net_transfers_per_ms <= 60
        assert 5 <= stats.disk_transfers_per_ms <= 30

    def test_no_processor_records(self, storage_trace):
        """Storage servers do not touch the data (Section 2.1)."""
        assert storage_trace.processor_bursts == []

    def test_misses_produce_disk_then_network(self, storage_trace):
        by_request: dict[int, list[DMATransfer]] = {}
        for t in storage_trace.transfers:
            if t.request_id is not None:
                by_request.setdefault(t.request_id, []).append(t)
        two_phase = [ts for ts in by_request.values() if len(ts) == 2]
        assert two_phase, "no cache misses in the trace?"
        for disk_t, net_t in two_phase:
            assert disk_t.source == SOURCE_DISK and disk_t.is_write
            assert net_t.source == SOURCE_NETWORK and not net_t.is_write
            assert disk_t.time < net_t.time
            assert disk_t.page == net_t.page

    def test_popularity_skew_present(self, storage_trace):
        stats = characterize(storage_trace)
        assert stats.top20_access_fraction > 0.3

    def test_clients_recorded(self, storage_trace):
        assert storage_trace.clients
        referenced = {t.request_id for t in storage_trace.transfers
                      if t.request_id is not None}
        assert referenced <= set(storage_trace.clients)

    def test_records_clipped_to_duration(self, storage_trace):
        assert all(r.time < storage_trace.duration_cycles * (1 + 1e-9)
                   for r in storage_trace.records)

    def test_metadata(self, storage_trace):
        for key in ("generator", "seed", "cache_hit_ratio",
                    "net_rate_per_ms", "disk_rate_per_ms"):
            assert key in storage_trace.metadata

    def test_determinism(self):
        params = StorageWorkloadParams(duration_ms=2.0, warmup_requests=100)
        a = StorageServer(params, seed=5).generate()
        b = StorageServer(params, seed=5).generate()
        assert a.records == b.records

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            StorageWorkloadParams(duration_ms=0.0)
        with pytest.raises(ConfigurationError):
            StorageWorkloadParams(write_fraction=2.0)
        with pytest.raises(ConfigurationError):
            StorageWorkloadParams(rehit_probability=1.0)


class TestDatabaseServer:
    def test_rates_near_published(self, database_trace):
        stats = characterize(database_trace)
        # Published OLTP-Db: 100 net transfers/ms, 233 proc/transfer.
        assert 80 <= stats.net_transfers_per_ms <= 120
        assert 200 <= stats.proc_accesses_per_transfer <= 260

    def test_no_disk_traffic(self, database_trace):
        assert all(t.source == SOURCE_NETWORK
                   for t in database_trace.transfers)

    def test_bursts_surround_transfers(self, database_trace):
        transfers = database_trace.transfers
        bursts = database_trace.processor_bursts
        assert bursts
        first = transfers[0]
        nearby = [b for b in bursts
                  if abs(b.time - first.time) < 100_000.0]
        assert nearby

    def test_every_txn_has_client(self, database_trace):
        assert len(database_trace.clients) == len(database_trace.transfers)

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            DatabaseWorkloadParams(proc_accesses_per_txn=-1)
        with pytest.raises(ConfigurationError):
            DatabaseWorkloadParams(during_transfer_fraction=1.5)
        with pytest.raises(ConfigurationError):
            DatabaseWorkloadParams(burst_size=0)
