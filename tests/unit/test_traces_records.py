"""Units for trace record types."""

import pytest

from repro.errors import TraceError
from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst


class TestDMATransfer:
    def test_num_requests_8kb(self):
        t = DMATransfer(time=0.0, page=0, size_bytes=8192)
        assert t.num_requests(8) == 1024

    def test_num_requests_sector(self):
        """A 512-byte disk sector is 64 requests (the paper's example)."""
        t = DMATransfer(time=0.0, page=0, size_bytes=512)
        assert t.num_requests(8) == 64

    def test_num_requests_rounds_up(self):
        t = DMATransfer(time=0.0, page=0, size_bytes=10)
        assert t.num_requests(8) == 2

    def test_validation(self):
        with pytest.raises(TraceError):
            DMATransfer(time=-1.0, page=0, size_bytes=8)
        with pytest.raises(TraceError):
            DMATransfer(time=0.0, page=-1, size_bytes=8)
        with pytest.raises(TraceError):
            DMATransfer(time=0.0, page=0, size_bytes=0)
        with pytest.raises(TraceError):
            DMATransfer(time=0.0, page=0, size_bytes=8, source="tape")
        with pytest.raises(TraceError):
            DMATransfer(time=0.0, page=0, size_bytes=8, bus=-1)

    def test_frozen(self):
        t = DMATransfer(time=0.0, page=0, size_bytes=8)
        with pytest.raises(AttributeError):
            t.page = 5


class TestProcessorBurst:
    def test_defaults(self):
        b = ProcessorBurst(time=1.0, page=2)
        assert b.count == 1
        assert b.window_cycles == 0.0

    def test_validation(self):
        with pytest.raises(TraceError):
            ProcessorBurst(time=0.0, page=0, count=0)
        with pytest.raises(TraceError):
            ProcessorBurst(time=0.0, page=0, window_cycles=-1.0)


class TestClientRequest:
    def test_validation(self):
        with pytest.raises(TraceError):
            ClientRequest(request_id=0, arrival=-1.0)
        with pytest.raises(TraceError):
            ClientRequest(request_id=0, arrival=0.0, base_cycles=-1.0)
