"""Units for popularity-group construction (Section 4.2.1)."""

import pytest

from repro.config import PopularityLayoutConfig
from repro.core.layout import PopularityGrouper, hot_group_sizes


def config(**overrides):
    defaults = dict(num_groups=2, hot_access_fraction=0.6,
                    min_hot_references=1)
    defaults.update(overrides)
    return PopularityLayoutConfig(**defaults)


def ranking(counts):
    """Build a ranked list [(page, count), ...] from descending counts."""
    return [(page, count) for page, count in enumerate(counts)]


class TestGroupSizes:
    def test_exponential_progression(self):
        assert hot_group_sizes(7, 3) == [1, 2, 4]

    def test_last_group_absorbs_remainder(self):
        assert hot_group_sizes(10, 3) == [1, 2, 7]

    def test_two_groups_single_hot(self):
        assert hot_group_sizes(5, 1) == [5]

    def test_small_hot_set_drops_groups(self):
        assert hot_group_sizes(2, 5) == [1, 1]

    def test_zero(self):
        assert hot_group_sizes(0, 3) == []


class TestHotPageCount:
    def test_covers_access_fraction(self):
        grouper = PopularityGrouper(4, 8, config())
        # Counts: 50, 30, 10, 5, 5 -> total 100; 60% needs the top two.
        ranked = ranking([50, 30, 10, 5, 5])
        assert grouper.hot_page_count(ranked) == 2

    def test_min_references_cuts_noise(self):
        grouper = PopularityGrouper(4, 8, config(min_hot_references=5))
        ranked = ranking([50, 4, 4, 4, 4, 4])
        # Only the first page qualifies, despite not reaching 60%.
        assert grouper.hot_page_count(ranked) == 1

    def test_empty(self):
        grouper = PopularityGrouper(4, 8, config())
        assert grouper.hot_page_count([]) == 0


class TestBuildPlan:
    def test_two_group_plan(self):
        grouper = PopularityGrouper(4, 8, config())
        ranked = ranking([50, 30, 10, 5, 5])
        plan = grouper.build_plan(ranked)
        assert len(plan.groups) == 2
        hot, cold = plan.groups
        assert hot.chips == (0,)
        assert not hot.is_cold and cold.is_cold
        assert set(hot.pages) == {0, 1}
        assert plan.target_group(0) == 0
        assert plan.target_group(4) == 1
        assert plan.target_group(999) == 1  # untracked -> cold

    def test_hot_chips_property(self):
        grouper = PopularityGrouper(4, 8, config())
        plan = grouper.build_plan(ranking([50, 30, 10, 5, 5]))
        assert plan.hot_chips == {0}

    def test_multi_group_plan(self):
        grouper = PopularityGrouper(num_chips=16, pages_per_chip=1,
                                    config=config(num_groups=4,
                                                  hot_access_fraction=0.9))
        counts = [100] * 10 + [1] * 10
        plan = grouper.build_plan(ranking(counts))
        sizes = [len(g.chips) for g in plan.groups[:-1]]
        assert sizes[0] == 1 and sizes[1] == 2
        assert plan.groups[-1].is_cold

    def test_cold_group_always_exists(self):
        grouper = PopularityGrouper(2, 4, config())
        plan = grouper.build_plan(ranking([10] * 8))
        assert plan.groups[-1].is_cold
        assert len(plan.groups[-1].chips) >= 1

    def test_candidates_recorded(self):
        grouper = PopularityGrouper(4, 8, config())
        plan = grouper.build_plan(ranking([50, 30, 10]))
        assert plan.candidates == {0, 1}


class TestHysteresisAndConfirmation:
    def test_entry_requires_two_intervals(self):
        grouper = PopularityGrouper(4, 8, config())
        ranked = ranking([50, 30, 10])
        first = grouper.build_plan(ranked, previous_hot=set(),
                                   previous_candidates=set())
        # Pages 0 and 1 rank hot but were not candidates before: filtered.
        assert first.target_group(0) == first.groups[-1].index
        second = grouper.build_plan(ranked, previous_hot=set(),
                                    previous_candidates=first.candidates)
        assert second.target_group(0) == 0

    def test_retention_zone_keeps_previous_hot(self):
        grouper = PopularityGrouper(4, 8, config(hysteresis_factor=3.0))
        # Page 9 used to be hot; it now ranks just below the boundary.
        ranked = ranking([50, 30, 9, 5])
        plan = grouper.build_plan(ranked, previous_hot={2})
        assert plan.target_group(2) == 0

    def test_far_fallen_page_released(self):
        grouper = PopularityGrouper(4, 8, config(hysteresis_factor=1.5))
        ranked = ranking([50, 30] + [5] * 10)
        plan = grouper.build_plan(ranked, previous_hot={11})
        cold = plan.groups[-1].index
        assert plan.target_group(11) == cold

    def test_first_interval_without_history(self):
        grouper = PopularityGrouper(4, 8, config())
        plan = grouper.build_plan(ranking([50, 30]), previous_hot=None,
                                  previous_candidates=None)
        assert plan.target_group(0) == 0  # no confirmation required
