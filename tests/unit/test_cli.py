"""Units for the command-line interface."""

import json
import logging

import pytest

from repro.cli import build_parser, main
from repro.obs.export import validate_chrome_trace
from repro.traces.io import read_trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    code = main(["generate", "synthetic-st", "-o", str(path),
                 "--duration-ms", "2", "--seed", "7"])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out

    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "mystery", "-o", "x"])


class TestGenerate:
    def test_writes_valid_trace(self, trace_file, capsys):
        trace = read_trace(trace_file)
        assert trace.name == "Synthetic-St"
        assert len(trace.transfers) > 50

    def test_all_kinds(self, tmp_path):
        for kind in ("oltp-st", "oltp-db", "synthetic-db"):
            path = tmp_path / f"{kind}.jsonl"
            assert main(["generate", kind, "-o", str(path),
                         "--duration-ms", "1"]) == 0
            assert path.exists()


class TestCharacterize(object):
    def test_prints_summary(self, trace_file, capsys):
        assert main(["characterize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "transfer rate" in out
        assert "top-20% access share" in out

    def test_cdf_flag(self, trace_file, capsys):
        assert main(["characterize", str(trace_file), "--cdf"]) == 0
        assert "popularity CDF" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["characterize", "/nonexistent/trace.jsonl"]) == 2
        assert "error" in capsys.readouterr().err


class TestSimulate:
    def test_baseline(self, trace_file, capsys):
        assert main(["simulate", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "technique=baseline" in out
        assert "idle_dma" in out

    def test_dma_ta_with_cp_limit(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--technique", "dma-ta",
                     "--cp-limit", "0.1"]) == 0
        assert "guarantee" in capsys.readouterr().out

    def test_mu_and_cp_conflict(self, trace_file, capsys):
        code = main(["simulate", str(trace_file), "--technique", "dma-ta",
                     "--cp-limit", "0.1", "--mu", "5"])
        assert code == 2


class TestCompareAndSweep:
    def test_compare(self, trace_file, capsys):
        assert main(["compare", str(trace_file), "--cp-limit", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "DMA-TA-PL" in out
        assert "savings" in out

    def test_sweep(self, trace_file, capsys):
        assert main(["sweep", str(trace_file), "--cp-limits", "0.05,0.2",
                     "--technique", "dma-ta"]) == 0
        out = capsys.readouterr().out
        assert "0.05" in out and "0.2" in out

    def test_sweep_bad_list(self, trace_file, capsys):
        assert main(["sweep", str(trace_file),
                     "--cp-limits", "abc"]) == 2

    def test_sweep_bad_jobs(self, trace_file, capsys):
        assert main(["sweep", str(trace_file), "--jobs", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_parallel_jobs(self, trace_file, capsys):
        assert main(["sweep", str(trace_file), "--cp-limits", "0.05,0.2",
                     "--technique", "dma-ta", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "0.05" in out and "0.2" in out
        assert "workers:" in out and "jobs computed" in out

    def test_sweep_cache_cold_then_warm(self, trace_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["sweep", str(trace_file), "--cp-limits", "0.05",
                "--technique", "dma-ta", "--cache",
                "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 hits" in cold and "2 stores" in cold
        assert "0 evictions" in cold and "0 corrupt" in cold
        assert cache_dir.is_dir()
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2 hits" in warm and "0 stores" in warm
        # Identical numbers either way (all but the cache-stats line).
        assert cold.splitlines()[:2] == warm.splitlines()[:2]

    def test_sweep_no_cache_writes_nothing(self, trace_file, tmp_path,
                                           capsys, monkeypatch):
        from repro.exec.cache import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        assert main(["sweep", str(trace_file), "--cp-limits", "0.05",
                     "--technique", "dma-ta", "--no-cache"]) == 0
        assert not (tmp_path / "cache").exists()
        assert "cache:" not in capsys.readouterr().out


class TestTraceVerb:
    def test_writes_valid_chrome_trace(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", str(trace_file), "--mu", "50",
                     "--out", str(out_path)]) == 0
        obj = json.loads(out_path.read_text())
        assert validate_chrome_trace(obj) == []
        assert obj["otherData"]["label"] == "Synthetic-St"
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "ui.perfetto.dev" in out

    def test_precise_engine(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", str(trace_file), "--engine", "precise",
                     "--mu", "50", "--out", str(out_path)]) == 0
        assert validate_chrome_trace(
            json.loads(out_path.read_text())) == []


class TestStatsVerb:
    def test_prints_metrics_report(self, trace_file, capsys):
        assert main(["stats", str(trace_file), "--technique", "dma-ta",
                     "--mu", "50"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "sim.transfers" in out
        assert "per-chip state residency" in out

    def test_baseline_has_transitions(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        assert "power transitions:" in capsys.readouterr().out


class TestLogLevel:
    def test_flag_enables_debug_diagnostics(self, tmp_path, capsys):
        # basicConfig only installs a handler on a bare root logger, so
        # clear pytest's capture handlers for the duration of the call.
        root = logging.getLogger()
        level, handlers = root.level, list(root.handlers)
        for handler in handlers:
            root.removeHandler(handler)
        try:
            path = tmp_path / "t.jsonl"
            assert main(["--log-level", "debug", "generate", "synthetic-st",
                         "-o", str(path), "--duration-ms", "1"]) == 0
            err = capsys.readouterr().err
            assert "DEBUG repro.traces.synthetic" in err
        finally:
            for handler in list(root.handlers):
                root.removeHandler(handler)
            for handler in handlers:
                root.addHandler(handler)
            root.setLevel(level)

    def test_rejects_unknown_level(self, capsys):
        with pytest.raises(SystemExit):
            main(["--log-level", "loud", "generate", "synthetic-st",
                  "-o", "x"])

    def test_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "warning")
        from repro.cli import build_parser as rebuild

        args = rebuild().parse_args(["generate", "synthetic-st", "-o", "x"])
        assert args.log_level == "warning"


class TestCalibrate:
    def test_prints_mu(self, trace_file, capsys):
        assert main(["calibrate", str(trace_file),
                     "--cp-limit", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "mu" in out
        assert "requests per client" in out
