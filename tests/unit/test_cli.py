"""Units for the command-line interface."""

import json
import logging

import pytest

from repro.cli import build_parser, main
from repro.obs.export import validate_chrome_trace
from repro.traces.io import read_trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    code = main(["generate", "synthetic-st", "-o", str(path),
                 "--duration-ms", "2", "--seed", "7"])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out

    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "mystery", "-o", "x"])


class TestGenerate:
    def test_writes_valid_trace(self, trace_file, capsys):
        trace = read_trace(trace_file)
        assert trace.name == "Synthetic-St"
        assert len(trace.transfers) > 50

    def test_all_kinds(self, tmp_path):
        for kind in ("oltp-st", "oltp-db", "synthetic-db"):
            path = tmp_path / f"{kind}.jsonl"
            assert main(["generate", kind, "-o", str(path),
                         "--duration-ms", "1"]) == 0
            assert path.exists()


class TestCharacterize(object):
    def test_prints_summary(self, trace_file, capsys):
        assert main(["characterize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "transfer rate" in out
        assert "top-20% access share" in out

    def test_cdf_flag(self, trace_file, capsys):
        assert main(["characterize", str(trace_file), "--cdf"]) == 0
        assert "popularity CDF" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["characterize", "/nonexistent/trace.jsonl"]) == 2
        assert "error" in capsys.readouterr().err


class TestSimulate:
    def test_baseline(self, trace_file, capsys):
        assert main(["simulate", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "technique=baseline" in out
        assert "idle_dma" in out

    def test_dma_ta_with_cp_limit(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--technique", "dma-ta",
                     "--cp-limit", "0.1"]) == 0
        assert "guarantee" in capsys.readouterr().out

    def test_mu_and_cp_conflict(self, trace_file, capsys):
        code = main(["simulate", str(trace_file), "--technique", "dma-ta",
                     "--cp-limit", "0.1", "--mu", "5"])
        assert code == 2


class TestCompareAndSweep:
    def test_compare(self, trace_file, capsys):
        assert main(["compare", str(trace_file), "--cp-limit", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "DMA-TA-PL" in out
        assert "savings" in out

    def test_sweep(self, trace_file, capsys):
        assert main(["sweep", str(trace_file), "--cp-limits", "0.05,0.2",
                     "--technique", "dma-ta"]) == 0
        out = capsys.readouterr().out
        assert "0.05" in out and "0.2" in out

    def test_sweep_bad_list(self, trace_file, capsys):
        assert main(["sweep", str(trace_file),
                     "--cp-limits", "abc"]) == 2

    def test_sweep_bad_jobs(self, trace_file, capsys):
        assert main(["sweep", str(trace_file), "--jobs", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_parallel_jobs(self, trace_file, capsys):
        assert main(["sweep", str(trace_file), "--cp-limits", "0.05,0.2",
                     "--technique", "dma-ta", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "0.05" in out and "0.2" in out
        assert "workers:" in out and "jobs computed" in out

    def test_sweep_cache_cold_then_warm(self, trace_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["sweep", str(trace_file), "--cp-limits", "0.05",
                "--technique", "dma-ta", "--cache",
                "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 hits" in cold and "2 stores" in cold
        assert "0 evictions" in cold and "0 corrupt" in cold
        assert cache_dir.is_dir()
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2 hits" in warm and "0 stores" in warm
        # Identical numbers either way (all but the cache-stats line).
        assert cold.splitlines()[:2] == warm.splitlines()[:2]

    def test_sweep_no_cache_writes_nothing(self, trace_file, tmp_path,
                                           capsys, monkeypatch):
        from repro.exec.cache import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        assert main(["sweep", str(trace_file), "--cp-limits", "0.05",
                     "--technique", "dma-ta", "--no-cache"]) == 0
        assert not (tmp_path / "cache").exists()
        assert "cache:" not in capsys.readouterr().out


class TestTraceVerb:
    def test_writes_valid_chrome_trace(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", str(trace_file), "--mu", "50",
                     "--out", str(out_path)]) == 0
        obj = json.loads(out_path.read_text())
        assert validate_chrome_trace(obj) == []
        assert obj["otherData"]["label"] == "Synthetic-St"
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "ui.perfetto.dev" in out

    def test_precise_engine(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", str(trace_file), "--engine", "precise",
                     "--mu", "50", "--out", str(out_path)]) == 0
        assert validate_chrome_trace(
            json.loads(out_path.read_text())) == []

    def test_eventless_run_warns_and_skips_export(
            self, trace_file, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        real = cli.simulate

        def muted(trace, **kwargs):
            kwargs.pop("tracer", None)
            return real(trace, **kwargs)

        monkeypatch.setattr(cli, "simulate", muted)
        out_path = tmp_path / "trace.json"
        assert main(["trace", str(trace_file),
                     "--out", str(out_path)]) == 0
        captured = capsys.readouterr()
        assert "no trace events" in captured.err
        assert not out_path.exists()


class TestAuditVerb:
    def test_strict_clean_run_exits_zero(self, trace_file, tmp_path,
                                         capsys):
        report_path = tmp_path / "audit.json"
        assert main(["audit", str(trace_file), "--technique", "dma-ta",
                     "--mu", "2.0", "--strict",
                     "--out", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "audit: OK" in out
        assert "latency waterfall" in out
        assert "energy ledger" in out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["energy"]["checked"] is True

    def test_strict_injected_undercharge_exits_nonzero(
            self, trace_file, capsys):
        code = main(["audit", str(trace_file), "--technique", "dma-ta",
                     "--mu", "50", "--strict",
                     "--inject-undercharge", "0.5"])
        assert code == 1
        err = capsys.readouterr().err
        assert "slack-undercharge" in err

    def test_inject_requires_slack_account(self, trace_file, capsys):
        assert main(["audit", str(trace_file), "--technique", "baseline",
                     "--inject-undercharge", "0.5"]) == 2
        assert "DMA-TA" in capsys.readouterr().err

    def test_trace_out_includes_waterfall_spans(self, trace_file,
                                                tmp_path, capsys):
        trace_out = tmp_path / "audit_trace.json"
        assert main(["audit", str(trace_file), "--technique", "dma-ta",
                     "--mu", "2.0", "--trace-out", str(trace_out)]) == 0
        obj = json.loads(trace_out.read_text())
        assert validate_chrome_trace(obj) == []
        names = {e.get("name") for e in obj["traceEvents"]}
        assert "slack" in names  # the live slack-balance counter track

    def test_precise_engine_audits(self, trace_file, capsys):
        assert main(["audit", str(trace_file), "--engine", "precise",
                     "--technique", "dma-ta", "--mu", "2.0",
                     "--strict"]) == 0
        assert "audit: OK" in capsys.readouterr().out


class TestStatsVerb:
    def test_prints_metrics_report(self, trace_file, capsys):
        assert main(["stats", str(trace_file), "--technique", "dma-ta",
                     "--mu", "50"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "sim.transfers" in out
        assert "per-chip state residency" in out

    def test_baseline_has_transitions(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        assert "power transitions:" in capsys.readouterr().out


class TestLogLevel:
    def test_flag_enables_debug_diagnostics(self, tmp_path, capsys):
        # basicConfig only installs a handler on a bare root logger, so
        # clear pytest's capture handlers for the duration of the call.
        root = logging.getLogger()
        level, handlers = root.level, list(root.handlers)
        for handler in handlers:
            root.removeHandler(handler)
        try:
            path = tmp_path / "t.jsonl"
            assert main(["--log-level", "debug", "generate", "synthetic-st",
                         "-o", str(path), "--duration-ms", "1"]) == 0
            err = capsys.readouterr().err
            assert "DEBUG repro.traces.synthetic" in err
        finally:
            for handler in list(root.handlers):
                root.removeHandler(handler)
            for handler in handlers:
                root.addHandler(handler)
            root.setLevel(level)

    def test_rejects_unknown_level(self, capsys):
        with pytest.raises(SystemExit):
            main(["--log-level", "loud", "generate", "synthetic-st",
                  "-o", "x"])

    def test_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "warning")
        from repro.cli import build_parser as rebuild

        args = rebuild().parse_args(["generate", "synthetic-st", "-o", "x"])
        assert args.log_level == "warning"


class TestLogFormat:
    def _clean_root(self):
        root = logging.getLogger()
        state = (root.level, list(root.handlers))
        for handler in state[1]:
            root.removeHandler(handler)
        return root, state

    def _restore_root(self, root, state):
        level, handlers = state
        for handler in list(root.handlers):
            root.removeHandler(handler)
        for handler in handlers:
            root.addHandler(handler)
        root.setLevel(level)

    def test_json_formatter_shape(self):
        from repro.cli import JsonLogFormatter

        record = logging.LogRecord("repro.x", logging.WARNING, "f.py", 1,
                                   "bad %s", ("thing",), None)
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.x"
        assert payload["message"] == "bad thing"
        assert isinstance(payload["ts"], float)
        assert "exc" not in payload

    def test_json_formatter_includes_traceback(self):
        import sys as _sys

        from repro.cli import JsonLogFormatter

        try:
            raise ValueError("boom")
        except ValueError:
            record = logging.LogRecord("repro.x", logging.ERROR, "f.py", 1,
                                       "failed", (), _sys.exc_info())
        payload = json.loads(JsonLogFormatter().format(record))
        assert "ValueError: boom" in payload["exc"]

    def test_json_flag_emits_json_lines(self, tmp_path, capsys):
        root, state = self._clean_root()
        try:
            path = tmp_path / "t.jsonl"
            assert main(["--log-level", "debug", "--log-format", "json",
                         "generate", "synthetic-st", "-o", str(path),
                         "--duration-ms", "1"]) == 0
            err = capsys.readouterr().err
            lines = [json.loads(line) for line in err.splitlines()
                     if line.startswith("{")]
            assert lines, f"no JSON log lines in {err!r}"
            assert any(entry["logger"].startswith("repro.")
                       for entry in lines)
        finally:
            self._restore_root(root, state)

    def test_json_implies_info_level(self, tmp_path, capsys):
        root, state = self._clean_root()
        try:
            path = tmp_path / "t.jsonl"
            assert main(["--log-format", "json", "generate",
                         "synthetic-st", "-o", str(path),
                         "--duration-ms", "1"]) == 0
            assert root.level == logging.INFO
        finally:
            self._restore_root(root, state)

    def test_invalid_env_format_falls_back_to_text(self, tmp_path,
                                                   capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "xml")
        path = tmp_path / "t.jsonl"
        assert main(["generate", "synthetic-st", "-o", str(path),
                     "--duration-ms", "1"]) == 0
        assert "unknown log format 'xml'" in capsys.readouterr().err

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        from repro.cli import build_parser as rebuild

        args = rebuild().parse_args(["generate", "synthetic-st", "-o", "x"])
        assert args.log_format == "json"

    def test_rejects_unknown_format_flag(self):
        with pytest.raises(SystemExit):
            main(["--log-format", "xml", "generate", "synthetic-st",
                  "-o", "x"])


class TestStatsAuditHealth:
    def test_clean_run_reports_ok(self, trace_file, capsys):
        assert main(["stats", str(trace_file), "--technique", "dma-ta",
                     "--mu", "50"]) == 0
        out = capsys.readouterr().out
        assert "audit: ok (0 violations)" in out

    def test_violations_counted_by_kind(self, capsys):
        from types import SimpleNamespace

        from repro.cli import _audit_health_line

        report = SimpleNamespace(ok=False, violations=[
            SimpleNamespace(kind="slack-undercharge"),
            SimpleNamespace(kind="slack-undercharge"),
            SimpleNamespace(kind="energy-ledger"),
        ])
        line = _audit_health_line(report)
        assert "3 violation(s)" in line
        assert "slack-undercharge: 2" in line
        assert "energy-ledger: 1" in line
        assert "repro audit" in line


class TestWatchParser:
    def test_defaults(self):
        args = build_parser().parse_args(["watch", "t.jsonl"])
        assert args.technique == "dma-ta-pl"
        assert args.serve_port == 8765
        assert args.linger_s == 10.0
        assert not args.no_browser
        assert args.inject_spike == 0.0

    def test_all_flags_parse(self):
        args = build_parser().parse_args(
            ["watch", "t.jsonl", "--engine", "precise", "--cp-limit",
             "0.1", "--sample-cycles", "500", "--capacity", "128",
             "--serve-port", "0", "--no-browser", "--port-file", "p",
             "--linger-s", "0", "--telemetry-out", "o.jsonl",
             "--inject-spike", "1e6", "--inject-spike-at", "0.75"])
        assert args.engine == "precise"
        assert args.capacity == 128
        assert args.inject_spike == 1e6
        assert args.inject_spike_at == 0.75


class TestCalibrate:
    def test_prints_mu(self, trace_file, capsys):
        assert main(["calibrate", str(trace_file),
                     "--cp-limit", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "mu" in out
        assert "requests per client" in out


class TestStatsHistograms:
    def test_digest_printed(self, trace_file, capsys):
        assert main(["stats", str(trace_file), "--technique", "dma-ta",
                     "--mu", "50", "--histogram", "ta.batch_size"]) == 0
        out = capsys.readouterr().out
        assert "histogram ta.batch_size:" in out
        assert "p99" in out

    def test_missing_histogram_warns_not_tracebacks(self, trace_file,
                                                    capsys):
        # ta.batch_size only exists when a DMA-TA technique runs; the
        # baseline must warn and exit 0, never traceback.
        assert main(["stats", str(trace_file), "--technique", "baseline",
                     "--histogram", "ta.batch_size"]) == 0
        captured = capsys.readouterr()
        assert "ta.batch_size" in captured.err
        assert "have:" in captured.err
        assert "counters:" in captured.out  # rest of the report intact


class TestBenchVerbs:
    @pytest.fixture
    def results(self, tmp_path):
        """A results dir with one record, plus an empty baseline root."""
        from repro.bench.record import BenchRecord, Metric, Phase
        from repro.bench.trajectory import write_json_atomic

        results_dir = tmp_path / "results"

        def write(wall=1.0, value=0.35):
            record = BenchRecord(
                name="fig5_savings", figure="fig5",
                created="2026-08-06T00:00:00+00:00",
                meta={"bench_ms": 25.0, "jobs": 1},
                metrics=[Metric(name="dma-ta-pl/cp=0.1", value=value,
                                unit="fraction", expected=0.386)],
                phases=[Phase(name="sweep", wall_s=wall)],
            )
            write_json_atomic(results_dir / "fig5_savings.json",
                              record.to_dict())

        write()
        return tmp_path, results_dir, write

    def _args(self, results):
        tmp_path, results_dir, _ = results
        return ["--results-dir", str(results_dir), "--root", str(tmp_path)]

    def test_compare_without_baseline_warns_but_passes(self, results,
                                                       capsys):
        assert main(["bench", "compare", *self._args(results),
                     "--fail-on-regression"]) == 0
        captured = capsys.readouterr()
        assert "no BENCH_*.json trajectories" in captured.err
        assert "without baseline" in captured.out

    def test_update_baseline_then_unchanged_compare(self, results, capsys):
        tmp_path, _, _ = results
        assert main(["bench", "update-baseline", *self._args(results)]) == 0
        assert (tmp_path / "BENCH_fig5.json").exists()
        assert main(["bench", "compare", *self._args(results),
                     "--fail-on-regression"]) == 0
        out = capsys.readouterr().out
        assert "0 regressed" in out

    def test_wall_regression_fails_the_gate(self, results, capsys):
        _, _, write = results
        assert main(["bench", "update-baseline", *self._args(results)]) == 0
        write(wall=3.0)  # inject a synthetic 3x wall-time regression
        assert main(["bench", "compare", *self._args(results)]) == 0
        assert main(["bench", "compare", *self._args(results),
                     "--fail-on-regression"]) == 1
        captured = capsys.readouterr()
        assert "wall_s" in captured.out
        assert "regression(s)" in captured.err

    def test_fidelity_regression_fails_the_gate(self, results, capsys):
        _, _, write = results
        assert main(["bench", "update-baseline", *self._args(results)]) == 0
        write(value=0.25)  # drift away from the paper's 0.386
        assert main(["bench", "compare", *self._args(results),
                     "--fail-on-regression"]) == 1
        assert "fidelity:dma-ta-pl/cp=0.1" in capsys.readouterr().out

    def test_verbose_itemises_everything(self, results, capsys):
        assert main(["bench", "update-baseline", *self._args(results)]) == 0
        assert main(["bench", "compare", *self._args(results), "-v"]) == 0
        out = capsys.readouterr().out
        assert "= [fig5]" in out

    def test_update_baseline_figure_filter(self, results, capsys):
        with pytest.raises(SystemExit):
            # argparse: --figure needs a value
            main(["bench", "update-baseline", "--figure"])
        assert main(["bench", "update-baseline", *self._args(results),
                     "--figure", "nope"]) == 2
        assert "no current records match" in capsys.readouterr().err

    def test_missing_results_dir_is_an_error(self, tmp_path, capsys):
        assert main(["bench", "compare", "--results-dir",
                     str(tmp_path / "void"), "--root", str(tmp_path)]) == 2
        assert "repro bench run" in capsys.readouterr().err

    def test_corrupt_record_rejected_clearly(self, results, capsys):
        tmp_path, results_dir, _ = results
        (results_dir / "fig5_savings.json").write_text(
            '{"schema": 99}', encoding="utf-8")
        assert main(["bench", "compare", *self._args(results)]) == 2
        assert "schema" in capsys.readouterr().err

    def test_report_writes_selfcontained_html(self, results, capsys):
        tmp_path, _, _ = results
        assert main(["bench", "update-baseline", *self._args(results)]) == 0
        out_path = tmp_path / "report.html"
        assert main(["bench", "report", *self._args(results),
                     "-o", str(out_path)]) == 0
        html = out_path.read_text(encoding="utf-8")
        assert "<svg" in html          # sparklines inline
        assert "fig5_savings" in html
        assert "<script src" not in html  # no external assets

    def test_report_without_anything_is_an_error(self, tmp_path, capsys):
        assert main(["bench", "report", "--results-dir",
                     str(tmp_path / "void"), "--root", str(tmp_path),
                     "-o", str(tmp_path / "r.html")]) == 2
        assert "nothing to report" in capsys.readouterr().err

    def test_run_rejects_missing_benchmarks_dir(self, tmp_path, capsys):
        assert main(["bench", "run", "--benchmarks-dir",
                     str(tmp_path / "void")]) == 2
        assert "benchmarks directory" in capsys.readouterr().err

    def test_run_rejects_unknown_figure(self, capsys, monkeypatch,
                                        tmp_path):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_fig5_x.py").write_text("", encoding="utf-8")
        assert main(["bench", "run", "--benchmarks-dir", str(bench_dir),
                     "--figure", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err
