"""Units for the sampling utilities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.distributions import ZipfSampler, poisson_times, rank_permutation


class TestZipf:
    def test_samples_in_range(self):
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(100, 1.0, rng)
        samples = sampler.sample(10_000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_rank_zero_most_popular(self):
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(1000, 1.0, rng)
        samples = sampler.sample(50_000)
        counts = np.bincount(samples, minlength=1000)
        assert counts[0] == counts.max()

    def test_alpha_zero_is_uniform(self):
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(10, 0.0, rng)
        samples = sampler.sample(100_000)
        counts = np.bincount(samples, minlength=10)
        assert counts.min() > 0.08 * 100_000

    def test_analytic_cdf_alpha_one(self):
        """Zipf(1) over 16384 pages: top 20% get ~85% of accesses."""
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(16384, 1.0, rng)
        assert sampler.access_fraction_of_top(0.2) == pytest.approx(
            0.845, abs=0.01)

    def test_alpha_07_matches_figure4(self):
        """alpha ~ 0.7 reproduces the paper's 20% -> ~60% skew (Fig 4)."""
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(16384, 0.7, rng)
        share = sampler.access_fraction_of_top(0.2)
        assert 0.55 < share < 0.68

    def test_empirical_matches_analytic(self):
        rng = np.random.default_rng(1)
        sampler = ZipfSampler(500, 1.0, rng)
        samples = sampler.sample(200_000)
        top = int(0.2 * 500)
        empirical = np.mean(samples < top)
        assert empirical == pytest.approx(
            sampler.access_fraction_of_top(0.2), abs=0.01)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(0, 1.0, rng)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, -1.0, rng)
        sampler = ZipfSampler(10, 1.0, rng)
        with pytest.raises(ConfigurationError):
            sampler.access_fraction_of_top(0.0)

    def test_sample_zero(self):
        rng = np.random.default_rng(0)
        assert len(ZipfSampler(10, 1.0, rng).sample(0)) == 0


class TestPoisson:
    def test_times_sorted_in_range(self):
        rng = np.random.default_rng(0)
        times = poisson_times(0.01, 10_000.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0
        assert times.max() < 10_000.0

    def test_expected_count(self):
        rng = np.random.default_rng(0)
        times = poisson_times(0.01, 1_000_000.0, rng)
        assert len(times) == pytest.approx(10_000, rel=0.05)

    def test_zero_rate(self):
        rng = np.random.default_rng(0)
        assert len(poisson_times(0.0, 1000.0, rng)) == 0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            poisson_times(-1.0, 100.0, rng)


class TestPermutation:
    def test_is_permutation(self):
        rng = np.random.default_rng(0)
        perm = rank_permutation(100, rng)
        assert sorted(perm) == list(range(100))

    def test_seeded_determinism(self):
        a = rank_permutation(50, np.random.default_rng(5))
        b = rank_permutation(50, np.random.default_rng(5))
        assert list(a) == list(b)
