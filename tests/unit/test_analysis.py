"""Units for the analysis helpers (metrics, sweep, tables)."""

import pytest

from repro.analysis.metrics import breakdown_fractions, energy_savings
from repro.analysis.tables import format_breakdown, format_series, format_table
from repro.analysis.sweep import run_pair, sweep_cp_limit
from repro.errors import ConfigurationError
from repro.energy.accounting import EnergyBreakdown, TimeBreakdown
from repro.sim.results import SimulationResult
from repro.traces.records import ClientRequest, DMATransfer
from repro.traces.trace import Trace
from repro.config import BusConfig, MemoryConfig, SimulationConfig

MB = 1 << 20


def result(total_scale=1.0):
    return SimulationResult(
        trace_name="t", technique="x", engine="fluid", duration_cycles=1.0,
        energy=EnergyBreakdown(serving_dma=1.0 * total_scale,
                               idle_dma=2.0 * total_scale),
        time=TimeBreakdown(serving_dma=4.0, idle_dma=8.0),
    )


class TestMetrics:
    def test_energy_savings(self):
        assert energy_savings(result(1.0), result(0.5)) == pytest.approx(0.5)

    def test_negative_savings(self):
        assert energy_savings(result(1.0), result(2.0)) == pytest.approx(-1.0)

    def test_breakdown_fractions(self):
        fractions = breakdown_fractions(result())
        assert fractions["idle_dma"] == pytest.approx(2 / 3)


class TestTables:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text
        assert "x" in text

    def test_format_series(self):
        text = format_series("S", [1.0, 2.0], [0.1, 0.2],
                             x_label="cp", y_label="savings")
        assert "cp" in text and "savings" in text

    def test_format_breakdown(self):
        text = format_breakdown([result(), result(0.5)],
                                labels=["base", "half"])
        assert "base" in text and "half" in text
        assert "idle_dma" in text
        assert "total mJ" in text


def tiny_trace():
    clients = {0: ClientRequest(request_id=0, arrival=0.0,
                                base_cycles=1e6)}
    records = [DMATransfer(time=100.0, page=0, size_bytes=8192,
                           request_id=0)]
    return Trace(name="tiny", records=records, clients=clients,
                 duration_cycles=100_000.0)


def tiny_config():
    return SimulationConfig(
        memory=MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192),
        buses=BusConfig(count=3))


class TestSweep:
    def test_run_pair(self):
        technique, baseline = run_pair(tiny_trace(), tiny_config(),
                                       "dma-ta", mu=10.0)
        assert technique.technique == "dma-ta"
        assert baseline.technique == "baseline"

    def test_run_pair_reuses_baseline(self):
        baseline = run_pair(tiny_trace(), tiny_config(), "dma-ta",
                            mu=1.0)[1]
        technique, same = run_pair(tiny_trace(), tiny_config(), "dma-ta",
                                   mu=1.0, baseline=baseline)
        assert same is baseline

    def test_sweep_shares_baseline(self):
        points = sweep_cp_limit(tiny_trace(), [0.05, 0.10], ["dma-ta"],
                                config=tiny_config())
        assert len(points) == 2
        assert points[0].baseline is points[1].baseline
        assert points[0].x == 0.05
        assert all(p.ok and p.error is None for p in points)

    def test_run_pair_rejects_cp_limit_and_mu_eagerly(self, monkeypatch):
        """Regression: the contradiction used to surface only inside the
        technique run, after a wasted baseline simulation (and, under
        pool execution, inside a worker process)."""
        import repro.analysis.sweep as sweep_module

        calls = []

        def counting_simulate(*args, **kwargs):
            calls.append(kwargs.get("technique"))
            raise AssertionError("simulate must not run for a bad spec")

        monkeypatch.setattr(sweep_module, "simulate", counting_simulate)
        with pytest.raises(ConfigurationError,
                           match="either mu or cp_limit"):
            run_pair(tiny_trace(), tiny_config(), "dma-ta",
                     cp_limit=0.10, mu=2.0)
        assert calls == [], "no simulation may start before validation"
