"""Units for the block-trace replay adapter (parsing, mapping, errors)."""

import pytest

from repro.errors import ConfigurationError, TraceError
from repro.traces.records import DMATransfer, ProcessorBurst
from repro.traces.replay import (
    BlockIO,
    ReplayConfig,
    read_block_csv,
    replay_trace,
    sample_window,
)

MSR_HEADER = "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"


def write_csv(tmp_path, text, name="trace.csv"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestMSRParsing:
    def test_parses_rows_with_header(self, tmp_path):
        path = write_csv(tmp_path, MSR_HEADER
                         + "10000000,usr,0,Read,4096,8192,500\n"
                         + "20000000,usr,1,Write,0,512,900\n")
        rows = read_block_csv(path, dialect="msr")
        assert len(rows) == 2
        first = rows[0]
        assert first.time_s == pytest.approx(1.0)
        assert (first.host, first.disk) == ("usr", 0)
        assert not first.is_write
        assert first.offset == 4096 and first.size_bytes == 8192
        assert first.latency_s == pytest.approx(500 * 1e-7)
        assert rows[1].is_write

    def test_skips_blanks_and_comments(self, tmp_path):
        path = write_csv(tmp_path, "# comment\n\n"
                         "10,usr,0,Read,0,512\n\n# more\n")
        assert len(read_block_csv(path, dialect="msr")) == 1

    def test_rows_sorted_by_time(self, tmp_path):
        path = write_csv(tmp_path,
                         "30,usr,0,Read,0,512\n10,usr,0,Read,512,512\n")
        rows = read_block_csv(path, dialect="msr")
        assert [r.time_s for r in rows] == sorted(r.time_s for r in rows)


class TestCloudPhysicsParsing:
    def test_parses_lba_sectors(self, tmp_path):
        path = write_csv(tmp_path, "1000,8,r,4096\n2000,16,w,512\n")
        rows = read_block_csv(path, dialect="cloudphysics")
        assert rows[0].offset == 8 * 512
        assert rows[0].time_s == pytest.approx(1e-3)
        assert not rows[0].is_write
        assert rows[1].is_write


class TestMalformedInput:
    """Broken rows raise TraceError naming the line — never a raw
    KeyError/ValueError traceback (the satellite fix)."""

    @pytest.mark.parametrize("row, fragment", [
        ("10,usr,0,Read,4096", "line 3"),                 # short row
        ("ten,usr,0,Read,4096,512", "not a number"),      # bad timestamp
        ("10,usr,zero,Read,4096,512", "disk number"),     # bad disk
        ("10,usr,0,Peek,4096,512", "unknown operation"),  # bad op
        ("10,usr,0,Read,-512,512", ">= 0"),               # negative offset
        ("10,usr,0,Read,4096,0", "must be positive"),     # zero size
        ("10,usr,0,Read,4096,inf", "not finite"),         # non-finite
    ])
    def test_bad_row_names_line(self, tmp_path, row, fragment):
        path = write_csv(tmp_path,
                         MSR_HEADER + "10,usr,0,Read,0,512\n" + row + "\n")
        with pytest.raises(TraceError) as excinfo:
            read_block_csv(path, dialect="msr")
        message = str(excinfo.value)
        assert "line 3" in message
        assert fragment in message

    def test_truncated_cloudphysics_row(self, tmp_path):
        path = write_csv(tmp_path, "1000,8,r,4096\n2000,16\n")
        with pytest.raises(TraceError, match="line 2"):
            read_block_csv(path, dialect="cloudphysics")

    def test_unknown_dialect(self, tmp_path):
        path = write_csv(tmp_path, "1,usr,0,Read,0,512\n")
        with pytest.raises(TraceError, match="dialect"):
            read_block_csv(path, dialect="spc")

    def test_empty_file(self, tmp_path):
        path = write_csv(tmp_path, "")
        with pytest.raises(TraceError, match="no block I/O rows"):
            read_block_csv(path, dialect="msr")

    def test_header_only_file(self, tmp_path):
        path = write_csv(tmp_path, MSR_HEADER)
        with pytest.raises(TraceError, match="no block I/O rows"):
            read_block_csv(path, dialect="msr")


def rows_at(*specs):
    return [BlockIO(time_s=t, host="h", disk=disk, offset=offset,
                    size_bytes=size, is_write=write)
            for t, disk, offset, size, write in specs]


class TestReplayMapping:
    def test_large_io_splits_into_page_transfers(self):
        rows = rows_at((0.0, 0, 0, 32768, False))
        trace = replay_trace(rows, ReplayConfig(num_pages=1024))
        transfers = trace.transfers
        assert len(transfers) == 4
        assert all(t.size_bytes == 8192 for t in transfers)
        assert [t.page for t in transfers] == [0, 1, 2, 3]

    def test_block_read_is_memory_write(self):
        rows = rows_at((0.0, 0, 0, 512, False), (1.0, 0, 512, 512, True))
        trace = replay_trace(rows, ReplayConfig(num_pages=64))
        read, write = trace.transfers
        assert read.is_write          # disk read fills memory
        assert not write.is_write     # disk write drains it

    def test_split_cap_bounds_expansion(self):
        rows = rows_at((0.0, 0, 0, 1 << 20, False))
        config = ReplayConfig(num_pages=1024, max_transfers_per_io=8)
        trace = replay_trace(rows, config)
        assert len(trace.transfers) == 8
        assert trace.metadata["split_ios"] == 1

    def test_hash_layout_stays_in_range_and_differs(self):
        rows = rows_at(*((0.0, 0, i * 8192, 8192, False)
                         for i in range(64)))
        modulo = replay_trace(rows, ReplayConfig(num_pages=256))
        hashed = replay_trace(
            rows, ReplayConfig(num_pages=256, page_layout="hash"))
        assert hashed.max_page() < 256
        mod_pages = [t.page for t in modulo.transfers]
        hash_pages = [t.page for t in hashed.transfers]
        assert mod_pages == sorted(mod_pages)
        assert hash_pages != mod_pages

    def test_bus_pinning_by_disk(self):
        rows = rows_at((0.0, 0, 0, 512, False), (1.0, 1, 0, 512, False),
                       (2.0, 2, 0, 512, False), (3.0, 3, 0, 512, False))
        trace = replay_trace(rows, ReplayConfig(num_pages=64, num_buses=3))
        assert [t.bus for t in trace.transfers] == [0, 1, 2, 0]
        free = replay_trace(
            rows, ReplayConfig(num_pages=64, bus_assignment="simulator"))
        assert all(t.bus is None for t in free.transfers)

    def test_time_compression_scales_duration(self):
        rows = rows_at((0.0, 0, 0, 512, False), (1.0, 0, 512, 512, False))
        slow = replay_trace(rows, ReplayConfig(num_pages=64))
        fast = replay_trace(
            rows, ReplayConfig(num_pages=64, time_compression=100.0))
        assert fast.duration_cycles == pytest.approx(
            slow.duration_cycles / 100.0)

    def test_proc_burst_synthesis(self):
        rows = rows_at((0.0, 0, 0, 8192, False))
        trace = replay_trace(
            rows, ReplayConfig(num_pages=64, proc_accesses_per_io=50))
        bursts = trace.processor_bursts
        assert len(bursts) == 1
        assert bursts[0].count == 50
        assert bursts[0].page == trace.transfers[-1].page

    def test_clients_carry_recorded_latency(self):
        rows = [BlockIO(time_s=0.0, host="h", disk=0, offset=0,
                        size_bytes=512, is_write=False, latency_s=0.001)]
        trace = replay_trace(rows, ReplayConfig(num_pages=64))
        assert len(trace.clients) == 1
        client = trace.clients[0]
        assert client.base_cycles == pytest.approx(0.001 * 1.6e9)
        bare = replay_trace(
            rows, ReplayConfig(num_pages=64, make_clients=False))
        assert not bare.clients
        assert all(t.request_id is None for t in bare.transfers)

    def test_window_outside_trace_fails(self):
        rows = rows_at((0.0, 0, 0, 512, False))
        with pytest.raises(TraceError, match="selects no rows"):
            replay_trace(rows, ReplayConfig(num_pages=64,
                                            window_start_s=100.0))

    def test_empty_rows_rejected(self):
        with pytest.raises(TraceError, match="no block I/O rows"):
            replay_trace([], ReplayConfig(num_pages=64))


class TestSampleWindow:
    def test_bad_window_rejected(self):
        with pytest.raises(TraceError):
            sample_window([], -1.0, 1.0)
        with pytest.raises(TraceError):
            sample_window([], 0.0, 0.0)

    def test_half_open_bounds(self):
        rows = rows_at((0.0, 0, 0, 512, False), (1.0, 0, 0, 512, False),
                       (2.0, 0, 0, 512, False))
        window = sample_window(rows, 0.0, 2.0)
        assert [r.time_s for r in window] == [0.0, 1.0]


class TestReplayConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"page_bytes": 0},
        {"num_pages": 0},
        {"page_layout": "striped"},
        {"bus_assignment": "round-robin"},
        {"num_buses": 0},
        {"max_transfers_per_io": 0},
        {"time_compression": 0.0},
        {"window_start_s": -1.0},
        {"window_s": 0.0},
        {"proc_accesses_per_io": -1.0},
        {"base_latency_us": -1.0},
        {"source": "tape"},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            ReplayConfig(**kwargs)
