"""Units for streams, water-filling, and chip-capacity allocation."""

import math

import pytest

from repro.errors import SimulationError
from repro.io.dma import (
    FluidStream,
    StreamKind,
    allocate_chip_capacity,
    water_fill,
)


def stream(kind=StreamKind.DMA, work=4096.0, demand=1 / 3, bus=0):
    return FluidStream(kind=kind, chip_id=0, total_work=work, demand=demand,
                       bus_id=bus if kind is StreamKind.DMA else None)


class TestWaterFill:
    def test_under_capacity_grants_nominal(self):
        assert water_fill([0.2, 0.3], 1.0) == [0.2, 0.3]

    def test_over_capacity_fair_split(self):
        grants = water_fill([0.6, 0.6], 0.6)
        assert grants == pytest.approx([0.3, 0.3])

    def test_small_demand_fully_granted(self):
        grants = water_fill([0.1, 0.9, 0.9], 1.0)
        assert grants[0] == pytest.approx(0.1)
        assert grants[1] == pytest.approx(0.45)
        assert grants[2] == pytest.approx(0.45)

    def test_total_never_exceeds_capacity(self):
        grants = water_fill([0.5, 0.5, 0.5, 0.5], 1.0)
        assert sum(grants) == pytest.approx(1.0)

    def test_zero_capacity(self):
        assert water_fill([0.5, 0.5], 0.0) == [0.0, 0.0]

    def test_empty(self):
        assert water_fill([], 1.0) == []


class TestAllocate:
    def test_proc_preempts_dma(self):
        proc = stream(kind=StreamKind.PROC, demand=1.0)
        dma = stream()
        allocate_chip_capacity([proc, dma])
        assert proc.granted == pytest.approx(1.0)
        assert dma.granted == pytest.approx(0.0)

    def test_three_streams_saturate(self):
        streams = [stream(bus=b) for b in range(3)]
        allocate_chip_capacity(streams)
        assert sum(s.granted for s in streams) == pytest.approx(1.0, abs=0.01)
        for s in streams:
            assert s.granted == pytest.approx(s.demand)

    def test_migration_takes_leftovers(self):
        dma = stream()
        mig = stream(kind=StreamKind.MIGRATION, demand=1.0)
        allocate_chip_capacity([dma, mig])
        assert dma.granted == pytest.approx(dma.demand)
        assert mig.granted == pytest.approx(1.0 - dma.demand)

    def test_four_dma_streams_throttled(self):
        streams = [stream(bus=b % 3) for b in range(4)]
        allocate_chip_capacity(streams)
        assert sum(s.granted for s in streams) == pytest.approx(1.0)
        for s in streams:
            assert s.granted == pytest.approx(0.25)

    def test_done_streams_get_nothing(self):
        s = stream()
        s.remaining_work = 0.0
        allocate_chip_capacity([s])
        assert s.granted == 0.0


class TestStreamDynamics:
    def test_sync_drains_work(self):
        s = stream()
        s.granted = 1 / 3
        s.sync(300.0)
        assert s.remaining_work == pytest.approx(4096.0 - 100.0)

    def test_projected_completion(self):
        s = stream()
        s.granted = 0.5
        assert s.projected_completion(0.0) == pytest.approx(8192.0)

    def test_projected_infinite_when_starved(self):
        s = stream()
        s.granted = 0.0
        assert s.projected_completion(0.0) == math.inf

    def test_extra_service_accrues_when_throttled(self):
        s = stream(demand=1 / 3)
        s.granted = 1 / 6
        s.sync(600.0)
        # (demand - granted) * dt = (1/3 - 1/6) * 600 = 100 cycles.
        assert s.extra_service_cycles == pytest.approx(100.0)

    def test_no_extra_when_fully_granted(self):
        s = stream()
        s.granted = s.demand
        s.sync(600.0)
        assert s.extra_service_cycles == pytest.approx(0.0)

    def test_sync_backwards_raises(self):
        s = stream()
        s.sync(100.0)
        with pytest.raises(SimulationError):
            s.sync(50.0)

    def test_done_flag(self):
        s = stream(work=10.0)
        s.granted = 1.0
        s.sync(10.0)
        assert s.done

    def test_invalid_demand_rejected(self):
        with pytest.raises(SimulationError):
            FluidStream(kind=StreamKind.DMA, chip_id=0, total_work=1.0,
                        demand=1.5, bus_id=0)

    def test_invalid_work_rejected(self):
        with pytest.raises(SimulationError):
            FluidStream(kind=StreamKind.DMA, chip_id=0, total_work=0.0,
                        demand=0.5, bus_id=0)

    def test_identity_semantics(self):
        a, b = stream(), stream()
        assert a != b
        assert a == a
        assert len({a, b}) == 2
