"""Units for the content-addressed result cache and job keys."""

import os
import pickle
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.errors import ConfigurationError
from repro.exec import ResultCache, SimJob, run_many
from repro.exec.cache import CACHE_DIR_ENV
from repro.traces.io import write_trace
from repro.traces.records import DMATransfer
from repro.traces.trace import Trace

MB = 1 << 20


def tiny_trace(shift: float = 0.0) -> Trace:
    records = [DMATransfer(time=1000.0 + shift, page=3, size_bytes=8192),
               DMATransfer(time=5000.0, page=7, size_bytes=8192)]
    return Trace(name="tiny", records=records, duration_cycles=100_000.0)


def tiny_config(chips: int = 4) -> SimulationConfig:
    return SimulationConfig(
        memory=MemoryConfig(num_chips=chips, chip_bytes=MB, page_bytes=8192),
        buses=BusConfig(count=3))


class TestJobKey:
    def test_stable_within_process(self):
        job = SimJob(tiny_trace(), "dma-ta", config=tiny_config(), mu=2.0)
        assert job.key() == job.key()
        rebuilt = SimJob(tiny_trace(), "dma-ta", config=tiny_config(), mu=2.0)
        assert job.key() == rebuilt.key()

    def test_stable_across_process_restarts(self, tmp_path):
        """The same job spec hashes identically in a fresh interpreter."""
        trace_path = tmp_path / "t.jsonl"
        write_trace(tiny_trace(), trace_path)
        script = (
            "from repro.config import BusConfig, MemoryConfig, SimulationConfig\n"
            "from repro.exec import SimJob\n"
            "from repro.traces.io import read_trace\n"
            "config = SimulationConfig(\n"
            "    memory=MemoryConfig(num_chips=4, chip_bytes=1 << 20,\n"
            "                        page_bytes=8192),\n"
            "    buses=BusConfig(count=3))\n"
            f"trace = read_trace({str(trace_path)!r})\n"
            "print(SimJob(trace, 'dma-ta', config=config, mu=2.0).key())\n"
        )
        src_dir = Path(repro.__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src_dir}{os.pathsep}" + env.get("PYTHONPATH", "")
        fresh = subprocess.run([sys.executable, "-c", script], env=env,
                               capture_output=True, text=True, check=True)
        from repro.traces.io import read_trace
        here = SimJob(read_trace(trace_path), "dma-ta", config=tiny_config(),
                      mu=2.0).key()
        assert fresh.stdout.strip() == here

    @pytest.mark.parametrize("variant", [
        lambda: SimJob(tiny_trace(shift=1.0), "dma-ta",
                       config=tiny_config(), mu=2.0),          # trace content
        lambda: SimJob(tiny_trace(), "dma-ta-pl",
                       config=tiny_config(), mu=2.0),          # technique
        lambda: SimJob(tiny_trace(), "dma-ta",
                       config=tiny_config(), mu=3.0),          # mu
        lambda: SimJob(tiny_trace(), "dma-ta",
                       config=tiny_config(), mu=2.0, seed=1),  # seed
        lambda: SimJob(tiny_trace(), "dma-ta",
                       config=tiny_config(chips=8), mu=2.0),   # config
        lambda: SimJob(tiny_trace(), "dma-ta",
                       config=tiny_config(), mu=2.0, engine="precise"),
    ])
    def test_key_changes_with_inputs(self, variant):
        base = SimJob(tiny_trace(), "dma-ta", config=tiny_config(), mu=2.0)
        assert variant().key() != base.key()

    def test_tag_is_not_identity(self):
        base = SimJob(tiny_trace(), "baseline", config=tiny_config())
        tagged = SimJob(tiny_trace(), "baseline", config=tiny_config(),
                        tag="fig5")
        assert tagged.key() == base.key()

    def test_default_config_matches_explicit_default(self):
        implicit = SimJob(tiny_trace(), "baseline")
        explicit = SimJob(tiny_trace(), "baseline", config=SimulationConfig())
        assert implicit.key() == explicit.key()

    def test_validate_rejects_contradictory_params(self):
        job = SimJob(tiny_trace(), "dma-ta", mu=1.0, cp_limit=0.1)
        with pytest.raises(ConfigurationError):
            job.validate()


class TestResultCache:
    def _filled(self, root) -> tuple[ResultCache, str]:
        cache = ResultCache(root=root)
        job = SimJob(tiny_trace(), "baseline", config=tiny_config())
        [outcome] = run_many([job], cache=cache)
        assert outcome.ok and not outcome.from_cache
        return cache, outcome.key

    def test_round_trip(self, tmp_path):
        cache, key = self._filled(tmp_path)
        hit = cache.get(key)
        assert hit is not None
        assert hit.technique == "baseline"
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_corrupted_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache, key = self._filled(tmp_path)
        cache.path_for(key).write_bytes(b"not a pickle at all")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not cache.path_for(key).exists(), "corrupt entry removed"
        # The next run_many recomputes and repopulates transparently.
        job = SimJob(tiny_trace(), "baseline", config=tiny_config())
        [outcome] = run_many([job], cache=cache)
        assert outcome.ok and not outcome.from_cache
        assert cache.get(key) is not None

    def test_wrong_object_type_is_corrupt(self, tmp_path):
        cache, key = self._filled(tmp_path)
        cache.path_for(key).write_bytes(pickle.dumps({"sneaky": "dict"}))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache, key = self._filled(tmp_path)
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_eviction_is_lru(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_entries=2)
        job = SimJob(tiny_trace(), "baseline", config=tiny_config())
        result = run_many([job])[0].result
        for index, key in enumerate(["aa" + "0" * 62, "bb" + "1" * 62,
                                     "cc" + "2" * 62]):
            cache.put(key, result)
            stamp = time.time() - 100 + index
            os.utime(cache.path_for(key), (stamp, stamp))
        cache.put("dd" + "3" * 62, result)
        assert cache.stats.evictions >= 1
        assert len(cache) == 2
        assert cache.get("aa" + "0" * 62) is None, "oldest entry evicted"

    def test_clear(self, tmp_path):
        cache, _ = self._filled(tmp_path)
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_env_var_names_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert Path(ResultCache().root) == tmp_path / "elsewhere"

    def test_no_cache_bypasses_reads_and_writes(self, tmp_path, monkeypatch):
        """cache=None must leave even the default cache dir untouched."""
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cachedir"))
        job = SimJob(tiny_trace(), "baseline", config=tiny_config())
        [outcome] = run_many([job], cache=None)
        assert outcome.ok
        assert not (tmp_path / "cachedir").exists()
