"""Units for the workload zoo: shapes, knobs, and seed determinism."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.traces.stats import characterize
from repro.traces.zoo import (
    ZOO,
    drift_diurnal_trace,
    flash_crowd_trace,
    kv_store_trace,
    ml_inference_trace,
    video_stream_trace,
    zoo_trace,
)

FAMILIES = sorted(ZOO)


@pytest.mark.parametrize("family", FAMILIES)
def test_every_family_builds_a_real_trace(family):
    trace = zoo_trace(family, duration_ms=2.0)
    assert len(trace.transfers) > 10
    assert trace.clients, "zoo traces must support CP-Limit calibration"
    assert trace.metadata["family"] == family
    assert trace.metadata["seed"] is not None
    times = [r.time for r in trace.records]
    assert times == sorted(times)


def test_unknown_family_rejected():
    with pytest.raises(ConfigurationError, match="unknown workload family"):
        zoo_trace("mainframe-batch")


class TestKVStore:
    def test_small_transfers_and_writes(self):
        trace = kv_store_trace(duration_ms=3.0, write_fraction=0.3, seed=5)
        sizes = {t.size_bytes for t in trace.transfers}
        assert sizes <= {512, 1024, 2048, 4096}
        writes = sum(t.is_write for t in trace.transfers)
        assert 0 < writes < len(trace.transfers)

    def test_skewed_popularity(self):
        trace = kv_store_trace(duration_ms=10.0, seed=5)
        assert characterize(trace).top20_access_fraction > 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            kv_store_trace(write_fraction=1.5)
        with pytest.raises(ConfigurationError):
            kv_store_trace(value_bytes=(512,), value_weights=(0.5, 0.5))


class TestMLInference:
    def test_sequential_streams(self):
        trace = ml_inference_trace(duration_ms=3.0, seed=5)
        by_request = {}
        for t in trace.transfers:
            by_request.setdefault(t.request_id, []).append(t.page)
        for pages in by_request.values():
            assert pages == list(range(pages[0], pages[0] + len(pages)))

    def test_pages_stay_inside_models(self):
        trace = ml_inference_trace(duration_ms=3.0, num_models=2,
                                   pages_per_model=64,
                                   pages_per_inference=16, seed=5)
        assert trace.max_page() < 2 * 64

    def test_compute_bursts_emitted(self):
        trace = ml_inference_trace(duration_ms=3.0, seed=5)
        assert trace.processor_bursts

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ml_inference_trace(pages_per_inference=0)
        with pytest.raises(ConfigurationError):
            ml_inference_trace(pages_per_model=8, pages_per_inference=9)


class TestVideoStream:
    def test_streams_read_their_own_library_slice(self):
        trace = video_stream_trace(duration_ms=4.0, streams=3,
                                   library_pages_per_stream=128, seed=5)
        for t in trace.transfers:
            assert t.page < 3 * 128
        assert characterize(trace).top20_access_fraction < 0.5

    def test_paced_segments(self):
        trace = video_stream_trace(duration_ms=6.0, streams=2,
                                   segment_interval_ms=1.0,
                                   segment_pages=4, seed=5)
        # ~6 segments per stream at 1 ms pacing.
        assert 8 <= len(trace.clients) <= 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            video_stream_trace(streams=0)
        with pytest.raises(ConfigurationError):
            video_stream_trace(library_pages_per_stream=4, segment_pages=8)


class TestDriftScenarios:
    def test_diurnal_hot_set_moves_between_phases(self):
        trace = drift_diurnal_trace(duration_ms=9.0, phases=3,
                                    num_pages=2048, seed=5)
        third = trace.duration_cycles / 3
        def top_pages(lo, hi):
            counts = {}
            for t in trace.transfers:
                if lo <= t.time < hi:
                    counts[t.page] = counts.get(t.page, 0) + 1
            ranked = sorted(counts, key=counts.get, reverse=True)
            return set(ranked[:20])
        first, last = top_pages(0, third), top_pages(2 * third,
                                                     trace.duration_cycles)
        assert len(first & last) < len(first) / 2

    def test_flash_crowd_spikes_after_start(self):
        trace = flash_crowd_trace(duration_ms=10.0,
                                  base_transfers_per_ms=40.0,
                                  crowd_transfers_per_ms=400.0,
                                  crowd_start_fraction=0.5,
                                  crowd_duration_fraction=0.3, seed=5)
        half = trace.duration_cycles / 2
        before = sum(1 for t in trace.transfers if t.time < half)
        after = sum(1 for t in trace.transfers if t.time >= half)
        assert after > 1.5 * before

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            drift_diurnal_trace(phases=1)
        with pytest.raises(ConfigurationError):
            flash_crowd_trace(crowd_start_fraction=0.9,
                              crowd_duration_fraction=0.5)
        with pytest.raises(ConfigurationError):
            flash_crowd_trace(crowd_pages=0)


class TestSeedDeterminism:
    """Same seed ⇒ bit-identical trace, across processes.

    The exec result cache keys on trace fingerprints, so a generator
    whose output varied between interpreter runs would silently poison
    cached results (the PR 2 content-addressed keying).
    """

    @pytest.mark.parametrize("family", FAMILIES)
    def test_same_seed_same_fingerprint_in_process(self, family):
        a = zoo_trace(family, duration_ms=2.0, seed=9)
        b = zoo_trace(family, duration_ms=2.0, seed=9)
        assert a.fingerprint() == b.fingerprint()
        c = zoo_trace(family, duration_ms=2.0, seed=10)
        assert c.fingerprint() != a.fingerprint()

    def test_bit_identical_across_two_processes(self):
        script = (
            "from repro.traces.zoo import ZOO\n"
            "for family in sorted(ZOO):\n"
            "    trace = ZOO[family](duration_ms=1.5, seed=41)\n"
            "    print(family, trace.fingerprint())\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")

        def run():
            return subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True,
                env={**os.environ, "PYTHONPATH": src},
            ).stdout

        first, second = run(), run()
        assert first == second
        digests = dict(line.split() for line in first.splitlines())
        assert sorted(digests) == FAMILIES
        for family, digest in digests.items():
            local = ZOO[family](duration_ms=1.5, seed=41)
            assert local.fingerprint() == digest
