"""Units for write-back destaging: dirty tracking and checkpoints."""

import pytest

from repro.storage.cache import BufferCache
from repro.storage.server import StorageServer, StorageWorkloadParams
from repro.traces.records import SOURCE_DISK


class TestDirtyTracking:
    def test_dirty_pages_lru_order(self):
        cache = BufferCache(4)
        cache.insert(1, dirty=True)
        cache.insert(2, dirty=False)
        cache.insert(3, dirty=True)
        assert cache.dirty_pages() == [1, 3]

    def test_mark_clean(self):
        cache = BufferCache(4)
        cache.insert(1, dirty=True)
        cache.mark_clean(1)
        assert cache.dirty_pages() == []

    def test_mark_clean_preserves_recency(self):
        cache = BufferCache(2)
        cache.insert(1, dirty=True)
        cache.insert(2)
        cache.mark_clean(1)  # must NOT bump page 1 to MRU
        evicted = cache.insert(3)
        assert evicted == (1, False)

    def test_mark_clean_missing_page_is_noop(self):
        BufferCache(2).mark_clean(99)


class TestCheckpoints:
    def make_trace(self, **overrides):
        params = StorageWorkloadParams(
            duration_ms=10.0, warmup_requests=2000, **overrides)
        return StorageServer(params, seed=3).generate()

    def test_checkpoints_emit_disk_writes(self):
        trace = self.make_trace(checkpoint_interval_ms=2.0)
        destaged = [t for t in trace.transfers
                    if t.source == SOURCE_DISK and not t.is_write
                    and t.request_id is None]
        assert destaged, "checkpoints produced no destaging DMAs"

    def test_checkpoint_bursts_are_paced(self):
        trace = self.make_trace(checkpoint_interval_ms=2.0,
                                checkpoint_spacing_us=40.0)
        destaged = sorted(t.time for t in trace.transfers
                          if t.source == SOURCE_DISK and not t.is_write
                          and t.request_id is None)
        spacing = 40.0 * 1.6e9 / 1e6
        close_pairs = [b - a for a, b in zip(destaged, destaged[1:])
                       if b - a < spacing * 1.5]
        assert close_pairs, "no paced burst structure found"
        for gap in close_pairs:
            assert gap >= spacing * 0.99

    def test_disabling_checkpoints(self):
        with_cp = self.make_trace(checkpoint_interval_ms=2.0)
        without = self.make_trace(checkpoint_interval_ms=0.0)
        count = lambda t: sum(  # noqa: E731
            1 for x in t.transfers
            if x.source == SOURCE_DISK and not x.is_write)
        assert count(with_cp) > count(without)

    def test_no_double_flush(self):
        """A page destaged by a checkpoint is clean; it must not be
        flushed again unless re-written."""
        trace = self.make_trace(checkpoint_interval_ms=2.0,
                                write_fraction=0.05,
                                rehit_probability=0.0)
        destaged = [t.page for t in trace.transfers
                    if t.source == SOURCE_DISK and not t.is_write
                    and t.request_id is None]
        # Some repeats are legitimate (page re-dirtied between
        # checkpoints), but the trace cannot destage more often than
        # pages were written.
        writes = sum(1 for t in trace.transfers
                     if t.source == "network" and t.is_write)
        assert len(destaged) <= writes + 1
