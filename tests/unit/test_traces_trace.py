"""Units for the Trace container."""

import pytest

from repro.errors import TraceError
from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst
from repro.traces.trace import Trace


def dma(time, page=0, request_id=None):
    return DMATransfer(time=time, page=page, size_bytes=8192,
                       request_id=request_id)


class TestConstruction:
    def test_records_sorted(self):
        trace = Trace(name="t", records=[dma(50.0), dma(10.0), dma(30.0)])
        assert [r.time for r in trace.records] == [10.0, 30.0, 50.0]

    def test_duration_extends_to_last_record(self):
        trace = Trace(name="t", records=[dma(500.0)], duration_cycles=100.0)
        assert trace.duration_cycles == 500.0

    def test_unknown_client_rejected(self):
        with pytest.raises(TraceError):
            Trace(name="t", records=[dma(0.0, request_id=7)])

    def test_len_and_iter(self):
        trace = Trace(name="t", records=[dma(1.0), dma(2.0)])
        assert len(trace) == 2
        assert [r.time for r in trace] == [1.0, 2.0]


class TestViews:
    def test_transfer_and_burst_views(self):
        records = [dma(1.0), ProcessorBurst(time=2.0, page=0, count=4)]
        trace = Trace(name="t", records=records)
        assert len(trace.transfers) == 1
        assert len(trace.processor_bursts) == 1

    def test_pages(self):
        trace = Trace(name="t", records=[dma(1.0, page=3), dma(2.0, page=9)])
        assert trace.pages() == {3, 9}
        assert trace.max_page() == 9

    def test_max_page_empty(self):
        assert Trace(name="t").max_page() == -1

    def test_rates(self):
        freq = 1.6e9
        records = [dma(i * 1000.0) for i in range(16)]
        trace = Trace(name="t", records=records, duration_cycles=1.6e6)
        assert trace.transfer_rate_per_ms(freq) == pytest.approx(16.0)


class TestTransforms:
    def test_clipped(self):
        clients = {0: ClientRequest(request_id=0, arrival=0.0)}
        trace = Trace(name="t",
                      records=[dma(10.0, request_id=0), dma(500.0)],
                      clients=clients, duration_cycles=1000.0)
        short = trace.clipped(100.0)
        assert len(short) == 1
        assert short.duration_cycles == 100.0
        assert 0 in short.clients

    def test_clipped_drops_unreferenced_clients(self):
        clients = {0: ClientRequest(request_id=0, arrival=900.0)}
        trace = Trace(name="t", records=[dma(950.0, request_id=0)],
                      clients=clients, duration_cycles=1000.0)
        short = trace.clipped(100.0)
        assert short.clients == {}

    def test_clipped_rejects_nonpositive(self):
        with pytest.raises(TraceError):
            Trace(name="t").clipped(0.0)

    def test_merge(self):
        a = Trace(name="a", records=[dma(10.0)])
        b = Trace(name="b", records=[dma(5.0)])
        merged = a.merged_with(b)
        assert [r.time for r in merged] == [5.0, 10.0]
        assert merged.name == "a+b"

    def test_merge_rejects_client_collision(self):
        clients = {0: ClientRequest(request_id=0, arrival=0.0)}
        a = Trace(name="a", records=[dma(1.0, request_id=0)],
                  clients=dict(clients))
        b = Trace(name="b", records=[dma(2.0, request_id=0)],
                  clients=dict(clients))
        with pytest.raises(TraceError):
            a.merged_with(b)
