"""Units for devices and the transfer-to-bus assigner."""

import pytest

from repro.errors import ConfigurationError
from repro.io.devices import BusAssigner, Device, default_topology
from repro.traces.records import DMATransfer, SOURCE_DISK, SOURCE_NETWORK


def transfer(source=SOURCE_NETWORK, bus=None):
    return DMATransfer(time=0.0, page=0, size_bytes=8192, source=source,
                       bus=bus)


class TestTopology:
    def test_default_has_both_sources_everywhere(self):
        devices = default_topology(3)
        assert len(devices) == 6
        for bus in range(3):
            sources = {d.source for d in devices if d.bus == bus}
            assert sources == {SOURCE_NETWORK, SOURCE_DISK}

    def test_rejects_zero_buses(self):
        with pytest.raises(ConfigurationError):
            default_topology(0)

    def test_device_validation(self):
        with pytest.raises(ConfigurationError):
            Device(name="x", source="tape", bus=0)
        with pytest.raises(ConfigurationError):
            Device(name="x", source=SOURCE_DISK, bus=-1)


class TestAssigner:
    def test_round_robin_within_source(self):
        assigner = BusAssigner(3)
        buses = [assigner.assign(transfer()) for _ in range(6)]
        assert buses == [0, 1, 2, 0, 1, 2]

    def test_sources_cycle_independently(self):
        assigner = BusAssigner(3)
        net1 = assigner.assign(transfer(SOURCE_NETWORK))
        disk1 = assigner.assign(transfer(SOURCE_DISK))
        net2 = assigner.assign(transfer(SOURCE_NETWORK))
        assert net1 == disk1 == 0
        assert net2 == 1

    def test_explicit_bus_respected(self):
        assigner = BusAssigner(3)
        assert assigner.assign(transfer(bus=2)) == 2

    def test_explicit_bus_wrapped_into_range(self):
        assigner = BusAssigner(3)
        assert assigner.assign(transfer(bus=7)) == 1

    def test_device_on_missing_bus_rejected(self):
        with pytest.raises(ConfigurationError):
            BusAssigner(1, devices=[
                Device(name="nic9", source=SOURCE_NETWORK, bus=9)])

    def test_custom_topology(self):
        devices = [
            Device(name="nic0", source=SOURCE_NETWORK, bus=0),
            Device(name="hba0", source=SOURCE_DISK, bus=1),
        ]
        assigner = BusAssigner(2, devices=devices)
        assert assigner.assign(transfer(SOURCE_NETWORK)) == 0
        assert assigner.assign(transfer(SOURCE_DISK)) == 1
        assert assigner.assign(transfer(SOURCE_NETWORK)) == 0  # only one NIC
