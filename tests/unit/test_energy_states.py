"""Units for the power-state model (Table 1 transcription)."""

import pytest

from repro.energy.rdram import rdram_1600_model, ddr_sdram_model, scaled_bus_model
from repro.energy.states import (
    LOW_POWER_STATES,
    PowerModel,
    PowerState,
    Transition,
    make_power_model,
)
from repro.errors import ConfigurationError


@pytest.fixture
def model() -> PowerModel:
    return rdram_1600_model()


class TestPowerState:
    def test_depth_ordering(self):
        depths = [s.depth for s in PowerState]
        assert depths == sorted(depths)
        assert PowerState.ACTIVE.depth == 0
        assert PowerState.POWERDOWN.depth == 3

    def test_next_lower_chain(self):
        assert PowerState.ACTIVE.next_lower() is PowerState.STANDBY
        assert PowerState.STANDBY.next_lower() is PowerState.NAP
        assert PowerState.NAP.next_lower() is PowerState.POWERDOWN
        assert PowerState.POWERDOWN.next_lower() is None

    def test_low_power_states_excludes_active(self):
        assert PowerState.ACTIVE not in LOW_POWER_STATES
        assert len(LOW_POWER_STATES) == 3


class TestTable1Numbers:
    """The model must transcribe Table 1 exactly."""

    def test_state_powers(self, model):
        assert model.power(PowerState.ACTIVE) == pytest.approx(0.300)
        assert model.power(PowerState.STANDBY) == pytest.approx(0.180)
        assert model.power(PowerState.NAP) == pytest.approx(0.030)
        assert model.power(PowerState.POWERDOWN) == pytest.approx(0.003)

    def test_downward_transition_times(self, model):
        assert model.sleep_time_cycles(PowerState.STANDBY) == 1.0
        assert model.sleep_time_cycles(PowerState.NAP) == 8.0
        assert model.sleep_time_cycles(PowerState.POWERDOWN) == 8.0

    def test_upward_resync_times(self, model):
        # +6ns, +60ns, +6000ns at 1600 MHz: 9.6, 96, 9600 cycles.
        assert model.wake_time_cycles(PowerState.STANDBY) == pytest.approx(9.6)
        assert model.wake_time_cycles(PowerState.NAP) == pytest.approx(96.0)
        assert model.wake_time_cycles(PowerState.POWERDOWN) == pytest.approx(9600.0)

    def test_active_needs_no_transition(self, model):
        assert model.wake_time_cycles(PowerState.ACTIVE) == 0.0
        assert model.sleep_time_cycles(PowerState.ACTIVE) == 0.0
        assert model.wake_energy(PowerState.ACTIVE) == 0.0
        assert model.sleep_energy(PowerState.ACTIVE) == 0.0

    def test_bandwidth(self, model):
        assert model.bandwidth_bytes_per_s == pytest.approx(3.2e9)
        assert model.bytes_per_cycle == 2.0

    def test_serve_cycles_for_8_byte_request(self, model):
        # The paper's 4-cycle service of an 8-byte DMA-memory request.
        assert model.serve_cycles(8) == pytest.approx(4.0)

    def test_transition_energy_positive(self, model):
        for state in LOW_POWER_STATES:
            assert model.wake_energy(state) > 0
            assert model.sleep_energy(state) > 0
            assert model.round_trip_energy(state) == pytest.approx(
                model.wake_energy(state) + model.sleep_energy(state))

    def test_powerdown_wake_energy_largest(self, model):
        # 15 mW for 6000 ns dwarfs the shallower wakes.
        assert (model.wake_energy(PowerState.POWERDOWN)
                > model.wake_energy(PowerState.NAP)
                > model.wake_energy(PowerState.STANDBY))


class TestVariants:
    def test_ddr_model_slower(self):
        ddr = ddr_sdram_model()
        assert ddr.bandwidth_bytes_per_s == pytest.approx(2.1e9)
        # Same Table 1 powers.
        assert ddr.power(PowerState.NAP) == pytest.approx(0.030)

    def test_scaled_model(self):
        m = scaled_bus_model(6.4e9)
        assert m.bandwidth_bytes_per_s == pytest.approx(6.4e9)
        assert m.serve_cycles(8) == pytest.approx(2.0)

    def test_replace(self, model):
        faster = model.replace(bytes_per_cycle=4.0)
        assert faster.bandwidth_bytes_per_s == pytest.approx(6.4e9)
        assert model.bytes_per_cycle == 2.0  # original untouched


class TestValidation:
    def test_power_ordering_enforced(self, model):
        with pytest.raises(ConfigurationError):
            make_power_model(
                name="bad",
                frequency_hz=1.6e9,
                bytes_per_cycle=2.0,
                state_power_mw={
                    PowerState.ACTIVE: 100.0,
                    PowerState.STANDBY: 200.0,  # hotter than active
                    PowerState.NAP: 30.0,
                    PowerState.POWERDOWN: 3.0,
                },
                downward_mw_cycles={s: (100.0, 1.0) for s in LOW_POWER_STATES},
                upward_mw_ns={s: (100.0, 10.0) for s in LOW_POWER_STATES},
            )

    def test_missing_transition_rejected(self, model):
        with pytest.raises(ConfigurationError):
            PowerModel(
                name="bad",
                frequency_hz=1.6e9,
                bytes_per_cycle=2.0,
                state_power_watts={s: model.power(s) for s in PowerState},
                downward={PowerState.STANDBY: Transition(0.1, 1.0)},
                upward={s: Transition(0.1, 1.0) for s in LOW_POWER_STATES},
            )
