"""Units for precise-engine internals: bus flow control and power timers."""

import pytest

from repro import simulate
from repro.config import BusConfig, MemoryConfig, SimulationConfig
from repro.sim.precise import PreciseEngine
from repro.traces.records import DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

MB = 1 << 20


def config(buses=3):
    return SimulationConfig(
        memory=MemoryConfig(num_chips=4, chip_bytes=MB, page_bytes=8192),
        buses=BusConfig(count=buses))


def run(records, technique="baseline", mu=None, cfg=None):
    trace = Trace(name="t", records=list(records),
                  duration_cycles=400_000.0)
    cfg = cfg or config()
    if mu is not None:
        cfg = cfg.with_mu(mu)
    return PreciseEngine(trace, cfg, technique=technique).run()


def transfer(time, page=0, size=8192, bus=None):
    return DMATransfer(time=time, page=page, size_bytes=size, bus=bus)


class TestRequestPacing:
    def test_paper_cadence(self):
        """Requests every ~12 cycles, each served in 4 (Figure 2a)."""
        result = run([transfer(1000.0)])
        assert result.requests == 1024
        assert result.time.serving_dma == pytest.approx(4096.0)
        per_request = result.time.idle_dma / result.requests
        assert per_request == pytest.approx(8.0, abs=0.2)

    def test_bus_fifo_serialises_transfers(self):
        """Two transfers on one bus: the second's wall-clock completion
        is pushed behind the first (the FIFO grant)."""
        one = run([transfer(0.0, page=0, bus=0)])
        two = run([transfer(0.0, page=0, bus=0),
                   transfer(0.0, page=1, bus=0)])
        # Each transfer needs ~12318 bus cycles; serialised they cannot
        # overlap, so total active time ~ doubles.
        assert two.time.active_dma_total == pytest.approx(
            2 * one.time.active_dma_total, rel=0.05)

    def test_three_buses_align_naturally(self):
        """Simultaneous transfers on distinct buses to one chip saturate
        it (Figure 3's lockstep) even without DMA-TA."""
        result = run([transfer(0.0, page=0, bus=b) for b in range(3)])
        assert result.utilization_factor > 0.95

    def test_flow_control_during_wake(self):
        """Requests must not pile up while the chip resynchronises: the
        engine keeps at most two outstanding, so idle accounting stays
        at the 8-cycles-per-request geometry after the wake."""
        result = run([transfer(1000.0)])
        assert result.time.idle_dma / result.requests < 8.5


class TestPowerTimers:
    def test_descent_reaches_powerdown(self):
        result = run([transfer(0.0)])
        # After the transfer, the chip walks down; over the 400k-cycle
        # horizon almost everything is low-power residency.
        assert result.energy.low_power > 0
        assert result.time.low_power > 300_000.0

    def test_wake_counted_once_per_excursion(self):
        result = run([transfer(0.0, page=0), transfer(100_000.0, page=0)])
        # Two isolated transfers to the same sleeping chip: two wakes
        # (plus none for the idle chips).
        assert result.wakes == 2

    def test_proc_burst_served_fifo(self):
        records = [ProcessorBurst(time=1000.0, page=0, count=4)]
        result = run(records)
        assert result.proc_accesses == 4
        assert result.time.serving_proc == pytest.approx(4 * 32.0)

    def test_proc_priority_over_dma(self):
        """A burst landing mid-transfer is served before queued DMA
        requests (Section 4.1.3 solution 1)."""
        records = [transfer(0.0, page=0),
                   ProcessorBurst(time=5000.0, page=0, count=8)]
        result = run(records)
        assert result.time.serving_proc == pytest.approx(8 * 32.0)
        # The transfer still completes in full.
        assert result.time.serving_dma == pytest.approx(4096.0)


class TestAlignmentPath:
    # Three transfers to one chip, spaced beyond the transfer duration:
    # the baseline serves them as isolated 1/3-utilisation episodes;
    # DMA-TA (with budget) buffers until all three buses are pending,
    # then serves them interleaved at full utilisation.
    STAGGERED = [0.0, 20_000.0, 40_000.0]

    def test_gathered_release_aligns(self):
        records = [transfer(t, page=0, bus=b)
                   for b, t in enumerate(self.STAGGERED)]
        baseline = run(records)
        aligned = run(records, technique="dma-ta", mu=500.0)
        assert baseline.utilization_factor == pytest.approx(1 / 3,
                                                            abs=0.02)
        assert aligned.utilization_factor > 0.9
        assert aligned.energy_joules < baseline.energy_joules

    def test_guarantee_accounting(self):
        records = [transfer(t, page=0, bus=b)
                   for b, t in enumerate(self.STAGGERED)]
        result = run(records, technique="dma-ta", mu=500.0)
        assert not result.guarantee_violated
        # The first transfer waited for the other two.
        assert result.head_delay_cycles > 30_000.0
