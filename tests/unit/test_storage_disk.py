"""Units for the mechanical disk model and the striped array."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.disk import Disk, DiskParameters
from repro.storage.raid import StripedArray


class TestParameters:
    def test_rotation(self):
        params = DiskParameters(rpm=15_000)
        assert params.full_rotation_ms == pytest.approx(4.0)

    def test_seek_curve(self):
        params = DiskParameters()
        assert params.seek_ms(0, 0) == 0.0
        short = params.seek_ms(0, 100)
        long = params.seek_ms(0, params.capacity_blocks)
        assert 0 < short < long
        assert long == pytest.approx(params.max_seek_ms)

    def test_transfer_time(self):
        params = DiskParameters(transfer_mb_per_s=60.0)
        assert params.transfer_ms(60_000_000) == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiskParameters(rpm=0)
        with pytest.raises(ConfigurationError):
            DiskParameters(cache_hit_probability=1.5)
        with pytest.raises(ConfigurationError):
            DiskParameters(min_seek_ms=5.0, max_seek_ms=1.0)


class TestDisk:
    def test_service_within_mechanical_bounds(self):
        disk = Disk(0, DiskParameters(cache_hit_probability=0.0), seed=1)
        for block in (0, 1000, 500_000):
            service = disk.service_ms(block, 8192)
            assert 0 < service < (disk.params.max_seek_ms
                                  + disk.params.full_rotation_ms + 1.0)

    def test_cache_hits_fast(self):
        disk = Disk(0, DiskParameters(cache_hit_probability=1.0), seed=1)
        assert disk.service_ms(123_456, 8192) < 0.5

    def test_fifo_queueing(self):
        disk = Disk(0, DiskParameters(cache_hit_probability=0.0), seed=1)
        first = disk.submit(0.0, 100, 8192)
        second = disk.submit(0.0, 200_000, 8192)
        assert second > first

    def test_idle_disk_starts_immediately(self):
        disk = Disk(0, seed=1)
        completion = disk.submit(100.0, 10, 8192)
        assert completion > 100.0

    def test_utilization(self):
        disk = Disk(0, seed=1)
        disk.submit(0.0, 10, 8192)
        assert 0 < disk.utilization(1_000.0) <= 1.0
        assert disk.utilization(0.0) == 0.0

    def test_determinism(self):
        a = Disk(0, seed=9)
        b = Disk(0, seed=9)
        assert a.submit(0.0, 77, 8192) == b.submit(0.0, 77, 8192)


class TestArray:
    def test_striping(self):
        array = StripedArray(num_disks=4)
        disk, physical = array.locate(10)
        assert disk == 2
        assert physical == 2

    def test_load_spread(self):
        array = StripedArray(num_disks=4, seed=2)
        for block in range(64):
            array.submit(0.0, block, 8192)
        served = [d.requests_served for d in array.disks]
        assert served == [16, 16, 16, 16]

    def test_rejects_zero_disks(self):
        with pytest.raises(ConfigurationError):
            StripedArray(num_disks=0)

    def test_mean_utilization(self):
        array = StripedArray(num_disks=2, seed=3)
        array.submit(0.0, 0, 8192)
        assert 0 < array.mean_utilization(100.0) <= 1.0
