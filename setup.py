"""Legacy setup shim.

The offline environment used for development lacks the ``wheel`` package,
so PEP 660 editable installs fail; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``python setup.py develop``) work everywhere. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
