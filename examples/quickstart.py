"""Quickstart: measure how much energy DMA-TA-PL saves on a storage trace.

Generates the paper's Synthetic-St workload (Poisson DMA transfers at
100/ms over Zipf(1) pages), runs the baseline dynamic power policy and
the paper's combined DMA-TA-PL technique at a 10% client-perceived
degradation limit, and prints the energy comparison.

Run:  python examples/quickstart.py
"""

from repro import simulate, synthetic_storage_trace


def main() -> None:
    # 1. A storage-server memory trace: network + disk DMA transfers
    #    against buffer-cache pages.
    trace = synthetic_storage_trace(duration_ms=25.0, seed=1)
    print(f"trace: {trace.name}, {len(trace.transfers)} DMA transfers, "
          f"{len(trace.clients)} client requests")

    # 2. The baseline: the dynamic threshold policy of prior work.
    baseline = simulate(trace, technique="baseline")
    print("\n--- baseline ---")
    print(baseline.summary())

    # 3. DMA-TA + popularity layout, allowed to degrade the average
    #    client-perceived response time by at most 10%.
    aligned = simulate(trace, technique="dma-ta-pl", cp_limit=0.10)
    print("\n--- DMA-TA-PL @ CP-Limit 10% ---")
    print(aligned.summary())

    # 4. The verdict.
    savings = aligned.energy_savings_vs(baseline)
    degradation = aligned.client_degradation_vs(baseline)
    print(f"\nenergy savings over baseline: {savings:+.1%}")
    print(f"client-perceived degradation: {degradation:+.2%} "
          f"(limit was 10%)")
    print(f"utilization factor: {baseline.utilization_factor:.3f} -> "
          f"{aligned.utilization_factor:.3f}")


if __name__ == "__main__":
    main()
