"""Storage-server study: where does the memory energy go, and how much
can each technique reclaim?

Walks the full pipeline the paper's evaluation uses for OLTP-St:

1. generate a trace through the storage-server model (buffer cache +
   striped disk array + NIC/HBA DMA path);
2. characterise it (Table 2 row, Figure 4 popularity curve);
3. run baseline / DMA-TA / PL / DMA-TA-PL and compare the breakdowns
   (Figure 6) and the utilization factors (Figure 7).

Run:  python examples/storage_server_energy.py
"""

from repro import characterize, oltp_storage_trace, simulate
from repro.analysis.tables import format_breakdown, format_table
from repro.traces.stats import top_fraction_access_share

CP_LIMIT = 0.10


def main() -> None:
    trace = oltp_storage_trace(duration_ms=30.0, seed=1)

    stats = characterize(trace)
    print(format_table(
        ["metric", "value"],
        [
            ["network DMA rate", f"{stats.net_transfers_per_ms:.1f}/ms"],
            ["disk DMA rate", f"{stats.disk_transfers_per_ms:.1f}/ms"],
            ["mean transfer", f"{stats.mean_transfer_bytes:.0f} B"],
            ["pages touched", stats.pages_referenced],
            ["top-20% access share",
             f"{top_fraction_access_share(trace, 0.2):.0%}"],
            ["cache hit ratio",
             f"{trace.metadata['cache_hit_ratio']:.0%}"],
        ],
        title="Workload characterisation (compare the paper's Table 2 "
              "and Figure 4)"))

    baseline = simulate(trace, technique="baseline")
    ta = simulate(trace, technique="dma-ta", cp_limit=CP_LIMIT)
    pl = simulate(trace, technique="pl")
    tapl = simulate(trace, technique="dma-ta-pl", cp_limit=CP_LIMIT)

    print()
    print(format_breakdown(
        [baseline, ta, pl, tapl],
        labels=["baseline", "DMA-TA", "PL", "DMA-TA-PL"],
        title=f"Energy breakdowns (CP-Limit {CP_LIMIT:.0%})"))

    rows = []
    for result, name in ((baseline, "baseline"), (ta, "DMA-TA"),
                         (pl, "PL"), (tapl, "DMA-TA-PL")):
        rows.append([
            name,
            f"{result.energy_joules * 1e3:.3f}",
            f"{result.energy_savings_vs(baseline):+.1%}",
            f"{result.utilization_factor:.3f}",
            result.wakes,
            result.migrations,
        ])
    print()
    print(format_table(
        ["scheme", "energy mJ", "savings", "uf", "wakes", "migrations"],
        rows, title="Technique comparison"))


if __name__ == "__main__":
    main()
