"""Visualising what the techniques do to the chips.

Renders text heatmaps of per-chip activity over time — one row per chip,
darker means busier — for the baseline and for DMA-TA-PL on the same
trace. Under the baseline, traffic speckles all 32 rows and each chip
pays wake-ups and active-idle gaps; with PL the popular pages converge
onto the first chip(s), whose row darkens while the rest fade, and
DMA-TA fuses the remaining speckles into dense aligned bursts.

Run:  python examples/chip_activity_heatmap.py
"""

from repro import simulate, synthetic_storage_trace
from repro.analysis.timeline import activity_share, render_heatmap


def main() -> None:
    trace = synthetic_storage_trace(duration_ms=10.0, seed=6)

    baseline = simulate(trace, technique="baseline", record_timeline=True)
    aligned = simulate(trace, technique="dma-ta-pl", cp_limit=0.10,
                       record_timeline=True)

    print(render_heatmap(baseline.timeline, baseline.duration_cycles,
                         width=70, title="baseline: traffic on all chips"))
    print()
    print(render_heatmap(aligned.timeline, aligned.duration_cycles,
                         width=70,
                         title="DMA-TA-PL @ 10%: hot pages clustered, "
                               "bursts aligned"))

    base_shares = activity_share(baseline.timeline,
                                 baseline.duration_cycles)
    tapl_shares = activity_share(aligned.timeline, aligned.duration_cycles)
    hottest = max(tapl_shares, key=tapl_shares.get)
    print(f"\nhottest chip under PL: chip {hottest} "
          f"({tapl_shares[hottest]:.0%} busy vs "
          f"{base_shares[hottest]:.0%} in the baseline)")
    print(f"energy: {baseline.energy_joules * 1e3:.3f} mJ -> "
          f"{aligned.energy_joules * 1e3:.3f} mJ "
          f"({aligned.energy_savings_vs(baseline):+.1%})")


if __name__ == "__main__":
    main()
