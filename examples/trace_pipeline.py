"""Trace tooling: generate, save, reload, clip, merge, and validate.

Traces are the interface between workload collection and the simulator.
This example shows the whole lifecycle, including the engine
cross-validation a careful user runs before trusting a sweep: the fluid
(fast) engine against the per-request (reference) engine on a clip of
the trace.

Run:  python examples/trace_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import (
    characterize,
    read_trace,
    simulate,
    synthetic_database_trace,
    synthetic_storage_trace,
    write_trace,
)
from repro.analysis.tables import format_table


def main() -> None:
    # Generate and persist.
    storage = synthetic_storage_trace(duration_ms=8.0, seed=3)
    database = synthetic_database_trace(duration_ms=8.0, seed=4,
                                        transfers_per_ms=40.0)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "storage.jsonl"
        write_trace(storage, path)
        print(f"wrote {path.stat().st_size / 1024:.0f} KiB "
              f"({len(storage)} records)")
        reloaded = read_trace(path)
        assert reloaded.records == storage.records, "round trip failed"
        print("round trip: OK")

    # Clip and merge. Client-request ids collide across independently
    # generated traces, so a raw-traffic mix strips them (the combined
    # trace is for energy studies, not CP-Limit calibration).
    import dataclasses

    from repro.traces.records import DMATransfer
    from repro.traces.trace import Trace

    def strip_clients(records):
        return [dataclasses.replace(r, request_id=None)
                if isinstance(r, DMATransfer) else r for r in records]

    mixed = Trace(
        name="mixed",
        records=strip_clients(storage.clipped(4.0e6).records)
        + strip_clients(database.clipped(4.0e6).records),
        duration_cycles=4.0e6,
    )
    rows = []
    for trace in (storage, database, mixed):
        stats = characterize(trace)
        rows.append([trace.name, f"{stats.duration_ms:.1f}",
                     stats.transfers, f"{stats.proc_accesses_per_ms:.0f}"])
    print()
    print(format_table(["trace", "ms", "transfers", "proc/ms"], rows,
                       title="Generated traces"))

    # Cross-validate the engines on a short clip before a big sweep.
    clip = storage.clipped(2.0e6)
    fluid = simulate(clip, technique="baseline", engine="fluid")
    precise = simulate(clip, technique="baseline", engine="precise")
    delta = abs(1 - fluid.energy_joules / precise.energy_joules)
    print(f"\nengine cross-check on a {clip.duration_cycles / 1.6e6:.1f} ms "
          f"clip: fluid={fluid.energy_joules * 1e3:.4f} mJ, "
          f"precise={precise.energy_joules * 1e3:.4f} mJ "
          f"(delta {delta:.2%})")
    assert delta < 0.05
    print("fluid engine validated - safe to sweep with it")


if __name__ == "__main__":
    main()
