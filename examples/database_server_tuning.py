"""Database-server tuning: picking a CP-Limit for an SLA.

A database operator wants maximum memory-energy savings subject to a
client-visible response-time budget. This example sweeps the CP-Limit on
an OLTP-Db-style trace (network DMAs interleaved with ~233 processor
accesses per transfer), showing the savings/performance trade-off curve
of Figure 5 and how the calibrated per-request parameter ``mu`` scales.

Run:  python examples/database_server_tuning.py
"""

from repro import calibrate_mu, oltp_database_trace, simulate
from repro.analysis.tables import format_table
from repro.config import SimulationConfig

CP_LIMITS = (0.02, 0.05, 0.10, 0.20, 0.30)


def main() -> None:
    trace = oltp_database_trace(duration_ms=25.0, seed=2)
    config = SimulationConfig()
    baseline = simulate(trace, config=config, technique="baseline")
    print(f"baseline: {baseline.energy_joules * 1e3:.3f} mJ, "
          f"uf={baseline.utilization_factor:.3f}, "
          f"{baseline.proc_accesses} processor accesses interleaved")

    rows = []
    for cp in CP_LIMITS:
        calibration = calibrate_mu(trace, config, cp)
        result = simulate(trace, config=config, technique="dma-ta-pl",
                          cp_limit=cp)
        rows.append([
            f"{cp:.0%}",
            f"{calibration.mu:.1f}",
            f"{result.energy_savings_vs(baseline):+.1%}",
            f"{result.client_degradation_vs(baseline):+.2%}",
            f"{result.utilization_factor:.3f}",
            "yes" if result.guarantee_violated else "no",
        ])
    print()
    print(format_table(
        ["CP-Limit", "calibrated mu", "energy savings",
         "measured degradation", "uf", "guarantee violated?"],
        rows,
        title="CP-Limit sweep on OLTP-Db (the Figure 5 trade-off)"))

    print("\nReading the table: pick the smallest CP-Limit whose savings "
          "satisfy your power budget; the measured degradation always "
          "stays below the limit, and most of the benefit arrives by "
          "~10% — beyond that the chips are already gathered to full "
          "utilization (Section 5.2).")


if __name__ == "__main__":
    main()
