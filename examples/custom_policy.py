"""Extending the library: a custom low-level policy and platform.

Shows the extension points a systems researcher would use:

* build a custom :class:`DynamicThresholdPolicy` (here: a conservative
  two-step policy that never enters powerdown — trading idle energy for
  wake latency) and compare it against the break-even defaults and a
  static nap policy, reproducing prior work's static-vs-dynamic finding;
* swap the device model for the DDR-SDRAM variant (Section 3's "the
  analysis is similar with different absolute numbers") and watch the
  bandwidth-ratio geometry change.

Run:  python examples/custom_policy.py
"""

import dataclasses

from repro import (
    DynamicThresholdPolicy,
    PowerState,
    StaticPolicy,
    ddr_sdram_model,
    simulate,
    synthetic_storage_trace,
)
from repro.analysis.tables import format_table
from repro.config import MemoryConfig, SimulationConfig


def main() -> None:
    trace = synthetic_storage_trace(duration_ms=15.0, seed=9)

    no_powerdown = DynamicThresholdPolicy.from_mapping({
        PowerState.STANDBY: 25.0,
        PowerState.NAP: 100.0,
    })
    static_nap = StaticPolicy(state=PowerState.NAP)

    rows = []
    for name, policy in (("dynamic (break-even)", None),
                         ("dynamic (no powerdown)", no_powerdown),
                         ("static nap", static_nap)):
        config = SimulationConfig()
        if policy is not None:
            config = dataclasses.replace(config, policy=policy)
        result = simulate(trace, config=config, technique="baseline")
        rows.append([name, f"{result.energy_joules * 1e3:.3f}",
                     f"{result.energy.fractions()['low_power']:.0%}",
                     result.wakes])
    print(format_table(
        ["low-level policy", "energy mJ", "low-power share", "wakes"],
        rows,
        title="Low-level policy comparison (dynamic beats static, "
              "as in Lebeck et al.)"))

    # --- DDR variant -----------------------------------------------------
    ddr_memory = MemoryConfig(power_model=ddr_sdram_model())
    ddr_config = SimulationConfig(memory=ddr_memory)
    rdram_config = SimulationConfig()
    rows = []
    for name, config in (("RDRAM 3.2 GB/s", rdram_config),
                         ("DDR 2.1 GB/s", ddr_config)):
        base = simulate(trace, config=config, technique="baseline")
        ta = simulate(trace, config=config, technique="dma-ta",
                      cp_limit=0.10)
        rows.append([
            name,
            f"{config.bandwidth_ratio:.2f}",
            f"{config.saturating_buses}",
            f"{base.utilization_factor:.3f}",
            f"{ta.energy_savings_vs(base):+.1%}",
        ])
    print()
    print(format_table(
        ["device", "Rm/Rb", "k", "baseline uf", "DMA-TA savings @10%"],
        rows,
        title="Device sensitivity: the slower DDR device narrows the "
              "mismatch, shrinking both the waste and the savings"))


if __name__ == "__main__":
    main()
