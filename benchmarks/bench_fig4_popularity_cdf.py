"""Figure 4: CDF of page popularity in the OLTP-St DMA workload.

The paper's storage trace shows ~20% of the pages receiving ~60% of the
DMA accesses. The regenerated curve is printed as (page %, access %)
pairs; the 20% point is the calibration target of the substitute trace
generator.
"""

from repro.analysis.tables import format_table
from repro.traces.stats import popularity_cdf, top_fraction_access_share

from benchmarks.common import (
    Stopwatch,
    get_trace,
    metric,
    save_record,
    save_report,
)


def test_fig4_popularity_cdf(benchmark):
    trace = get_trace("OLTP-St")
    watch = Stopwatch()
    with watch.phase("cdf"):
        cdf = benchmark.pedantic(lambda: popularity_cdf(trace, points=20),
                                 rounds=1, iterations=1)

    rows = [[f"{x * 100:.0f}%", f"{y * 100:.1f}%"] for x, y in cdf]
    top20 = top_fraction_access_share(trace, 0.2)
    text = format_table(
        ["pages (most popular first)", "DMA accesses"], rows,
        title=f"Figure 4: OLTP-St popularity CDF "
              f"(paper: 20% -> ~60%; measured 20% -> {top20 * 100:.1f}%)")
    save_report("fig4_popularity_cdf", text)

    metrics = [metric("top20_access_share", top20, unit="fraction",
                      expected=0.60)]
    metrics += [metric(f"cdf@{x:.0%}", y, unit="fraction")
                for x, y in cdf]
    save_record("fig4_popularity_cdf", "fig4", metrics,
                phases=watch.phases)

    ys = [y for _, y in cdf]
    assert ys == sorted(ys), "CDF must be monotone"
    assert top20 > 0.35, "popularity skew missing from the trace"
