"""Engine performance and agreement: fluid vs precise vs scalar oracle.

Not a paper figure — this bench justifies the methodology twice over:
the fluid (change-point) engine must reproduce the per-request reference
engine's energy numbers while running orders of magnitude faster, and
the vectorized precise engine (the array-timeline kernel) must match the
scalar event-stepping oracle bit-for-bit while delivering its own
speedup (``oracle/speedup``; see docs/ENGINES.md).
"""

import time

from repro import simulate
from repro.analysis.tables import format_table
from repro.traces.synthetic import synthetic_storage_trace

from benchmarks.common import Stopwatch, metric, save_record, save_report

DURATION_MS = 2.0

#: The small sweep used to price fleet observability (2 pool workers).
FLEET_CP_LIMITS = (0.05, 0.20)


def test_engine_agreement_and_speed(benchmark):
    trace = synthetic_storage_trace(duration_ms=DURATION_MS,
                                    transfers_per_ms=100, seed=51)

    watch = Stopwatch()
    with watch.phase("precise"):
        start = time.perf_counter()
        precise = simulate(trace, technique="baseline", engine="precise")
        precise_s = time.perf_counter() - start

    with watch.phase("precise-scalar"):
        start = time.perf_counter()
        scalar = simulate(trace, technique="baseline",
                          engine="precise-scalar")
        scalar_s = time.perf_counter() - start

    with watch.phase("fluid"):
        fluid = benchmark.pedantic(
            lambda: simulate(trace, technique="baseline", engine="fluid"),
            rounds=1, iterations=1)
    start = time.perf_counter()
    simulate(trace, technique="baseline", engine="fluid")
    fluid_s = time.perf_counter() - start

    # Live telemetry: the enabled path must keep the physics bit-exact
    # and its wall-clock cost is published as telemetry/overhead_frac
    # (per-epoch sampling, detectors on, no HTTP exporters).
    from repro.obs.telemetry import TelemetrySampler

    with watch.phase("fluid-telemetry"):
        start = time.perf_counter()
        sampler = TelemetrySampler()
        telemetered = simulate(trace, technique="baseline",
                               engine="fluid", telemetry=sampler)
        telemetry_s = time.perf_counter() - start

    rows = [
        ["fluid", f"{fluid_s * 1e3:.1f} ms",
         f"{fluid.energy_joules * 1e3:.4f}",
         f"{fluid.utilization_factor:.4f}"],
        ["precise", f"{precise_s * 1e3:.1f} ms",
         f"{precise.energy_joules * 1e3:.4f}",
         f"{precise.utilization_factor:.4f}"],
        ["precise-scalar", f"{scalar_s * 1e3:.1f} ms",
         f"{scalar.energy_joules * 1e3:.4f}",
         f"{scalar.utilization_factor:.4f}"],
        ["speedup / delta", f"{precise_s / max(fluid_s, 1e-9):.0f}x",
         f"{abs(1 - fluid.energy_joules / precise.energy_joules) * 100:.2f}%",
         f"{abs(fluid.utilization_factor - precise.utilization_factor):.4f}"],
    ]
    text = format_table(
        ["engine", "wall clock", "energy mJ", "uf"], rows,
        title=f"Engine cross-validation on {DURATION_MS} ms of "
              f"Synthetic-St ({precise.requests} DMA-memory requests)")
    save_report("engines", text)

    energy_delta = abs(1 - fluid.energy_joules / precise.energy_joules)
    metrics = [
        # Perfect agreement would be a zero relative energy delta.
        metric("fluid_vs_precise/energy_delta", energy_delta,
               unit="fraction", expected=0.0),
        metric("fluid_vs_precise/uf_delta",
               abs(fluid.utilization_factor - precise.utilization_factor),
               unit="uf"),
        metric("fluid_vs_precise/speedup",
               precise_s / max(fluid_s, 1e-9), unit="x"),
        metric("fluid/wall_s", fluid_s, unit="s"),
        metric("precise/wall_s", precise_s, unit="s"),
        # The scalar oracle must agree bit-for-bit with the vectorized
        # precise engine — not within tolerance (see docs/ENGINES.md).
        metric("oracle/energy_delta",
               abs(scalar.energy_joules - precise.energy_joules),
               unit="J", expected=0.0),
        metric("oracle/speedup", scalar_s / max(precise_s, 1e-9),
               unit="x"),
        metric("precise_scalar/wall_s", scalar_s, unit="s"),
        metric("telemetry/overhead_frac",
               max(0.0, telemetry_s / max(fluid_s, 1e-9) - 1.0),
               unit="fraction"),
        metric("telemetry/samples", float(sampler.samples_captured),
               unit="count"),
    ]

    # Fleet observability: a traced 2-worker sweep (workers stream
    # spans/heartbeats/audit rollups to the parent collector) must stay
    # byte-identical to the plain pool and its wall-clock premium is
    # published as fleet/overhead_frac.
    from repro.analysis.sweep import sweep_cp_limit
    from repro.obs.fleet import FleetCollector, FleetConfig

    with watch.phase("fleet-sweep"):
        start = time.perf_counter()
        plain_points = sweep_cp_limit(trace, list(FLEET_CP_LIMITS),
                                      ["dma-ta"], max_workers=2)
        plain_s = time.perf_counter() - start
        collector = FleetCollector(FleetConfig())
        start = time.perf_counter()
        fleet_points = sweep_cp_limit(trace, list(FLEET_CP_LIMITS),
                                      ["dma-ta"], max_workers=2,
                                      fleet=collector)
        fleet_s = time.perf_counter() - start
        fleet_report = collector.report()
        collector.close()

    metrics += [
        metric("fleet/overhead_frac",
               max(0.0, fleet_s / max(plain_s, 1e-9) - 1.0),
               unit="fraction"),
        metric("fleet/spans_merged", float(fleet_report.spans_merged),
               unit="count"),
    ]
    save_record("engines", "engines", metrics, phases=watch.phases,
                fleet=fleet_report.as_dict())

    assert all(p.ok for p in plain_points + fleet_points)
    assert [p.result.energy.as_dict() for p in fleet_points] == \
        [p.result.energy.as_dict() for p in plain_points]
    assert fleet_report.computed == len(FLEET_CP_LIMITS) + 1  # + baseline
    assert not fleet_report.stalls
    assert telemetered.energy.as_dict() == fluid.energy.as_dict()
    assert sampler.samples_captured > 0
    assert scalar.energy.as_dict() == precise.energy.as_dict()
    assert abs(1 - fluid.energy_joules / precise.energy_joules) < 0.03
    assert precise_s > fluid_s


def test_fluid_engine_throughput(benchmark):
    """Raw fluid-engine throughput on the paper-scale workload."""
    trace = synthetic_storage_trace(duration_ms=10.0, transfers_per_ms=100,
                                    seed=52)
    result = benchmark.pedantic(
        lambda: simulate(trace, technique="dma-ta-pl", cp_limit=0.10),
        rounds=1, iterations=1)
    assert result.transfers > 500
