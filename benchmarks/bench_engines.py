"""Engine performance and agreement: fluid vs precise.

Not a paper figure — this bench justifies the methodology: the fluid
(change-point) engine must reproduce the per-request reference engine's
energy numbers while running orders of magnitude faster, which is what
makes the full figure sweeps tractable.
"""

import time

from repro import simulate
from repro.analysis.tables import format_table
from repro.traces.synthetic import synthetic_storage_trace

from benchmarks.common import Stopwatch, metric, save_record, save_report

DURATION_MS = 2.0


def test_engine_agreement_and_speed(benchmark):
    trace = synthetic_storage_trace(duration_ms=DURATION_MS,
                                    transfers_per_ms=100, seed=51)

    watch = Stopwatch()
    with watch.phase("precise"):
        start = time.perf_counter()
        precise = simulate(trace, technique="baseline", engine="precise")
        precise_s = time.perf_counter() - start

    with watch.phase("fluid"):
        fluid = benchmark.pedantic(
            lambda: simulate(trace, technique="baseline", engine="fluid"),
            rounds=1, iterations=1)
    start = time.perf_counter()
    simulate(trace, technique="baseline", engine="fluid")
    fluid_s = time.perf_counter() - start

    rows = [
        ["fluid", f"{fluid_s * 1e3:.1f} ms",
         f"{fluid.energy_joules * 1e3:.4f}",
         f"{fluid.utilization_factor:.4f}"],
        ["precise", f"{precise_s * 1e3:.1f} ms",
         f"{precise.energy_joules * 1e3:.4f}",
         f"{precise.utilization_factor:.4f}"],
        ["speedup / delta", f"{precise_s / max(fluid_s, 1e-9):.0f}x",
         f"{abs(1 - fluid.energy_joules / precise.energy_joules) * 100:.2f}%",
         f"{abs(fluid.utilization_factor - precise.utilization_factor):.4f}"],
    ]
    text = format_table(
        ["engine", "wall clock", "energy mJ", "uf"], rows,
        title=f"Engine cross-validation on {DURATION_MS} ms of "
              f"Synthetic-St ({precise.requests} DMA-memory requests)")
    save_report("engines", text)

    energy_delta = abs(1 - fluid.energy_joules / precise.energy_joules)
    metrics = [
        # Perfect agreement would be a zero relative energy delta.
        metric("fluid_vs_precise/energy_delta", energy_delta,
               unit="fraction", expected=0.0),
        metric("fluid_vs_precise/uf_delta",
               abs(fluid.utilization_factor - precise.utilization_factor),
               unit="uf"),
        metric("fluid_vs_precise/speedup",
               precise_s / max(fluid_s, 1e-9), unit="x"),
        metric("fluid/wall_s", fluid_s, unit="s"),
        metric("precise/wall_s", precise_s, unit="s"),
    ]
    save_record("engines", "engines", metrics, phases=watch.phases)

    assert abs(1 - fluid.energy_joules / precise.energy_joules) < 0.03
    assert precise_s > fluid_s


def test_fluid_engine_throughput(benchmark):
    """Raw fluid-engine throughput on the paper-scale workload."""
    trace = synthetic_storage_trace(duration_ms=10.0, transfers_per_ms=100,
                                    seed=52)
    result = benchmark.pedantic(
        lambda: simulate(trace, technique="dma-ta-pl", cp_limit=0.10),
        rounds=1, iterations=1)
    assert result.transfers > 500
