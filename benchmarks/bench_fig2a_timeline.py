"""Figure 2(a): the 4-serve / 8-idle cycle pattern of one DMA transfer.

A single 8-KB transfer over one PCI-X bus: the chip serves each 8-byte
DMA-memory request in 4 cycles and then idles ~8 cycles until the bus
delivers the next one — two-thirds of the active energy wasted. Both
engines must reproduce the exact pattern; the precise engine is the
benchmarked one (it walks all 1024 requests event by event).
"""

from repro import simulate
from repro.analysis.tables import format_table
from repro.traces.records import DMATransfer
from repro.traces.trace import Trace

from benchmarks.common import save_report


def _trace() -> Trace:
    return Trace(name="fig2a",
                 records=[DMATransfer(time=1000.0, page=0, size_bytes=8192)],
                 duration_cycles=100_000.0)


def test_fig2a_timeline(benchmark):
    precise = benchmark.pedantic(
        lambda: simulate(_trace(), technique="baseline", engine="precise"),
        rounds=1, iterations=1)
    fluid = simulate(_trace(), technique="baseline", engine="fluid")

    rows = []
    for result in (fluid, precise):
        serve_per_request = result.time.serving_dma / result.requests
        idle_per_request = result.time.idle_dma / result.requests
        rows.append([
            result.engine,
            f"{serve_per_request:.2f}",
            f"{idle_per_request:.2f}",
            f"{serve_per_request + idle_per_request:.2f}",
            f"{result.utilization_factor:.3f}",
        ])
    text = format_table(
        ["engine", "serve cyc/req", "idle cyc/req", "period cyc/req", "uf"],
        rows,
        title="Figure 2(a): paper predicts 4 serve + 8 idle = 12-cycle "
              "period, uf = 1/3")
    save_report("fig2a_timeline", text)

    for result in (fluid, precise):
        assert abs(result.time.serving_dma / result.requests - 4.0) < 0.01
        assert abs(result.utilization_factor - 1 / 3) < 0.01
