"""Figure 2(a): the 4-serve / 8-idle cycle pattern of one DMA transfer.

A single 8-KB transfer over one PCI-X bus: the chip serves each 8-byte
DMA-memory request in 4 cycles and then idles ~8 cycles until the bus
delivers the next one — two-thirds of the active energy wasted. Both
engines must reproduce the exact pattern; the precise engine is the
benchmarked one (it walks all 1024 requests event by event).
"""

from repro import simulate
from repro.analysis.tables import format_table
from repro.traces.records import DMATransfer
from repro.traces.trace import Trace

from benchmarks.common import Stopwatch, metric, save_record, save_report


def _trace() -> Trace:
    return Trace(name="fig2a",
                 records=[DMATransfer(time=1000.0, page=0, size_bytes=8192)],
                 duration_cycles=100_000.0)


def test_fig2a_timeline(benchmark):
    watch = Stopwatch()
    with watch.phase("precise"):
        precise = benchmark.pedantic(
            lambda: simulate(_trace(), technique="baseline",
                             engine="precise"),
            rounds=1, iterations=1)
    with watch.phase("fluid"):
        fluid = simulate(_trace(), technique="baseline", engine="fluid")

    rows = []
    for result in (fluid, precise):
        serve_per_request = result.time.serving_dma / result.requests
        idle_per_request = result.time.idle_dma / result.requests
        rows.append([
            result.engine,
            f"{serve_per_request:.2f}",
            f"{idle_per_request:.2f}",
            f"{serve_per_request + idle_per_request:.2f}",
            f"{result.utilization_factor:.3f}",
        ])
    text = format_table(
        ["engine", "serve cyc/req", "idle cyc/req", "period cyc/req", "uf"],
        rows,
        title="Figure 2(a): paper predicts 4 serve + 8 idle = 12-cycle "
              "period, uf = 1/3")
    save_report("fig2a_timeline", text)

    metrics = []
    for result in (fluid, precise):
        serve = result.time.serving_dma / result.requests
        idle = result.time.idle_dma / result.requests
        metrics.extend([
            metric(f"{result.engine}/serve_cycles_per_req", serve,
                   unit="cycles", expected=4.0),
            metric(f"{result.engine}/idle_cycles_per_req", idle,
                   unit="cycles", expected=8.0),
            metric(f"{result.engine}/uf", result.utilization_factor,
                   unit="uf", expected=1 / 3),
        ])
    save_record("fig2a_timeline", "fig2a", metrics, phases=watch.phases)

    for result in (fluid, precise):
        assert abs(result.time.serving_dma / result.requests - 4.0) < 0.01
        assert abs(result.utilization_factor - 1 / 3) < 0.01
