"""Figure 6: energy breakdowns of baseline / DMA-TA / DMA-TA-PL.

At a 10% CP-Limit on the storage workload: the active-serving energy is
identical across schemes (same work), the active-idle-DMA waste shrinks
under DMA-TA and shrinks further under DMA-TA-PL, transitions drop
(fewer wakes), and DMA-TA-PL pays a visible but smaller migration bucket
— more than offset by the idle-energy reduction on longer traces.
"""

from repro.analysis.tables import format_breakdown, format_table

from benchmarks.common import (
    Stopwatch,
    get_trace,
    metric,
    run_cached,
    save_record,
    save_report,
)


def test_fig6_breakdown_techniques(benchmark):
    trace = get_trace("Synthetic-St")

    def run_all():
        return (run_cached(trace, "baseline"),
                run_cached(trace, "dma-ta", cp_limit=0.10),
                run_cached(trace, "dma-ta-pl", cp_limit=0.10))

    watch = Stopwatch()
    with watch.phase("runs"):
        baseline, ta, tapl = benchmark.pedantic(run_all, rounds=1,
                                                iterations=1)

    text = format_breakdown(
        [baseline, ta, tapl],
        labels=["baseline", "DMA-TA", "DMA-TA-PL"],
        title="Figure 6: energy breakdowns at CP-Limit 10% (Synthetic-St)")
    text += "\n\n" + format_table(
        ["scheme", "wakes", "migrations"],
        [["baseline", baseline.wakes, 0],
         ["DMA-TA", ta.wakes, 0],
         ["DMA-TA-PL", tapl.wakes, tapl.migrations]],
        title="Transition and migration activity")
    save_report("fig6_breakdown_techniques", text)

    metrics = []
    for label, result in (("baseline", baseline), ("dma-ta", ta),
                          ("dma-ta-pl", tapl)):
        metrics.extend([
            metric(f"{label}/total_mJ", result.energy_joules * 1e3,
                   unit="mJ"),
            metric(f"{label}/idle_dma_mJ",
                   result.energy.idle_dma * 1e3, unit="mJ"),
            metric(f"{label}/serving_dma_mJ",
                   result.energy.serving_dma * 1e3, unit="mJ"),
            metric(f"{label}/wakes", result.wakes, unit="count"),
        ])
    metrics.append(metric("dma-ta-pl/migration_mJ",
                          tapl.energy.migration * 1e3, unit="mJ"))
    save_record("fig6_breakdown_techniques", "fig6", metrics,
                phases=watch.phases)

    # Serving energy identical; idle-DMA strictly decreasing.
    assert abs(ta.energy.serving_dma - baseline.energy.serving_dma) < 1e-9
    assert ta.energy.idle_dma < baseline.energy.idle_dma
    assert tapl.energy.idle_dma < ta.energy.idle_dma
    # Fewer power-mode transitions under alignment (paper: "the number of
    # power-mode transitions is also decreased").
    assert ta.wakes <= baseline.wakes
    # Migration overhead visible but more than offset.
    assert tapl.energy.migration > 0
    assert tapl.energy.migration < (baseline.energy.idle_dma
                                    - tapl.energy.idle_dma)
