"""Table 2: the four evaluation traces and their characteristics.

Regenerates the trace set and prints a Table 2-style summary extended
with the measured rates, which should match the published figures:
OLTP-St ~45 net + ~16.7 disk transfers/ms; OLTP-Db ~100 transfers/ms
with ~233 processor accesses per transfer; the synthetic traces at
100 transfers/ms with Zipf(1) popularity. The benchmarked operation is
trace generation itself (the full server models run underneath).
"""

from repro.analysis.tables import format_table
from repro.traces.oltp import oltp_storage_trace
from repro.traces.stats import characterize

from benchmarks.common import (
    BENCH_MS,
    Stopwatch,
    get_trace,
    metric,
    save_record,
    save_report,
)

TRACES = ("OLTP-St", "Synthetic-St", "OLTP-Db", "Synthetic-Db")


def test_table2_traces(benchmark):
    watch = Stopwatch()
    with watch.phase("generate"):
        benchmark.pedantic(
            lambda: oltp_storage_trace(duration_ms=min(BENCH_MS, 10.0),
                                       seed=99),
            rounds=1, iterations=1)

    rows = []
    by_name = {}
    for name in TRACES:
        stats = characterize(get_trace(name))
        by_name[name] = stats
        rows.append([
            name,
            f"{stats.duration_ms:.1f}",
            stats.transfers,
            f"{stats.net_transfers_per_ms:.1f}",
            f"{stats.disk_transfers_per_ms:.1f}",
            f"{stats.proc_accesses_per_ms:.0f}",
            f"{stats.proc_accesses_per_transfer:.0f}",
            f"{stats.top20_access_fraction * 100:.0f}%",
        ])
    text = format_table(
        ["trace", "ms", "transfers", "net/ms", "disk/ms", "proc/ms",
         "proc/transfer", "top-20% share"],
        rows, title="Table 2 (regenerated; paper: OLTP-St 45.0+16.7/ms, "
                    "OLTP-Db 100/ms & 233 proc/transfer)")
    save_report("table2_traces", text)

    metrics = []
    for name in TRACES:
        stats = by_name[name]
        # Published rates exist only for the OLTP traces.
        net_expected = 45.0 if name == "OLTP-St" else None
        disk_expected = 16.7 if name == "OLTP-St" else None
        proc_expected = 233.0 if name == "OLTP-Db" else None
        metrics.extend([
            metric(f"{name}/net_transfers_per_ms",
                   stats.net_transfers_per_ms, unit="1/ms",
                   expected=net_expected),
            metric(f"{name}/disk_transfers_per_ms",
                   stats.disk_transfers_per_ms, unit="1/ms",
                   expected=disk_expected),
            metric(f"{name}/proc_accesses_per_transfer",
                   stats.proc_accesses_per_transfer, unit="count",
                   expected=proc_expected),
            metric(f"{name}/top20_access_fraction",
                   stats.top20_access_fraction, unit="fraction"),
        ])
    save_record("table2_traces", "table2", metrics, phases=watch.phases)

    st = characterize(get_trace("OLTP-St"))
    assert 30 <= st.net_transfers_per_ms <= 60
    db = characterize(get_trace("OLTP-Db"))
    assert 200 <= db.proc_accesses_per_transfer <= 260
