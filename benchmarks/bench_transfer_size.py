"""Sensitivity: DMA transfer size (Section 3's 512-byte example).

The paper notes transfers range from 512-byte disk sectors to 8-KB
pages, and that "a 512-byte DMA transfer over a PCI-X bus keeps a
1600-MHz RDRAM memory chip active for 768 (64 x 12) memory cycles" —
far longer than any idle threshold either way. Transfer size changes the
*duration* of each waste episode but not its 2:1 idle:serving geometry,
so the baseline breakdown shape should be size-invariant while absolute
energy scales with the bytes moved.
"""

import pytest

from repro import simulate
from repro.analysis.tables import format_table
from repro.traces.synthetic import synthetic_storage_trace
from repro.traces.transform import resize_transfers

from benchmarks.common import (
    BENCH_MS,
    Stopwatch,
    metric,
    percent,
    save_record,
    save_report,
)

SIZES = (512, 2048, 8192, 32768)


def test_transfer_size_sensitivity(benchmark):
    base_trace = synthetic_storage_trace(duration_ms=min(BENCH_MS, 15.0),
                                         seed=81)

    def sweep():
        rows = {}
        for size in SIZES:
            trace = resize_transfers(base_trace, size)
            baseline = simulate(trace, technique="baseline")
            ta = simulate(trace, technique="dma-ta", cp_limit=0.10)
            active_per_transfer = (baseline.time.active_dma_total
                                   / baseline.transfers)
            rows[size] = (active_per_transfer,
                          baseline.utilization_factor,
                          ta.energy_savings_vs(baseline))
        return rows

    watch = Stopwatch()
    with watch.phase("sweep"):
        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    text = format_table(
        ["transfer B", "active cycles/transfer", "baseline uf",
         "DMA-TA savings @10%"],
        [[size, f"{cycles:.0f}", f"{uf:.3f}", percent(savings)]
         for size, (cycles, uf, savings) in sorted(rows.items())],
        title="Transfer-size sensitivity (paper: a 512-B transfer keeps "
              "the chip active 768 cycles; geometry is size-invariant)")
    save_report("transfer_size", text)

    metrics = []
    for size, (cycles, uf, savings) in sorted(rows.items()):
        # Section 3's worked example pins only the 512-byte case.
        metrics.extend([
            metric(f"size={size}/active_cycles_per_transfer", cycles,
                   unit="cycles",
                   expected=768.0 if size == 512 else None),
            metric(f"size={size}/baseline_uf", uf, unit="uf",
                   expected=1 / 3),
            metric(f"size={size}/dma-ta", savings, unit="fraction"),
        ])
    save_record("transfer_size", "transfer_size", metrics,
                phases=watch.phases)

    # The 512-byte case: 64 requests x ~12 cycles ~= 768 active cycles.
    assert rows[512][0] == pytest.approx(768, rel=0.15)
    # uf ~ 1/3 at every size (the mismatch geometry, not the size).
    for size in SIZES:
        assert abs(rows[size][1] - 1 / 3) < 0.06, size
