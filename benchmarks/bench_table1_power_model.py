"""Table 1: power states, transition costs, and derived thresholds.

Regenerates the paper's Table 1 from the executable model and prints the
break-even thresholds the dynamic policy derives from it. The benchmarked
operation is the chip model's accrual hot path.
"""

from repro.analysis.tables import format_table
from repro.energy.policies import break_even_cycles, default_dynamic_policy
from repro.energy.rdram import rdram_1600_model
from repro.energy.states import LOW_POWER_STATES, PowerState
from repro.memory.chip import ChipRates, FluidChip

from benchmarks.common import Stopwatch, metric, save_record, save_report


def _table1_text() -> str:
    model = rdram_1600_model()
    rows = []
    for state in PowerState:
        rows.append([state.value, f"{model.power(state) * 1e3:.0f} mW", "-"])
    for state in LOW_POWER_STATES:
        down = model.downward[state]
        rows.append([f"active -> {state.value}",
                     f"{down.power_watts * 1e3:.0f} mW",
                     f"{down.time_cycles:.0f} cycles"])
    for state in LOW_POWER_STATES:
        up = model.upward[state]
        ns = up.time_cycles / model.frequency_hz * 1e9
        rows.append([f"{state.value} -> active",
                     f"{up.power_watts * 1e3:.0f} mW", f"+{ns:.0f} ns"])
    table = format_table(["state/transition", "power", "time"], rows,
                         title="Table 1 (regenerated from the model)")
    thresholds = format_table(
        ["state", "break-even idle (cycles)"],
        [[s.value, f"{break_even_cycles(model, s):.1f}"]
         for s in LOW_POWER_STATES],
        title="Derived dynamic-policy thresholds")
    return table + "\n\n" + thresholds


def test_table1_power_model(benchmark):
    model = rdram_1600_model()
    chip = FluidChip(0, model, default_dynamic_policy(model),
                     start_asleep=False)
    chip.set_busy(0.0, True, ChipRates(dma=1 / 3))

    # Hot path microbenchmark: one closed-form accrual step.
    state = {"t": 0.0}

    def step():
        state["t"] += 1000.0
        chip.advance(state["t"])

    watch = Stopwatch()
    with watch.phase("accrual"):
        benchmark.pedantic(step, rounds=200, iterations=1)
    save_report("table1_power_model", _table1_text())

    metrics = [
        metric("power/active", model.power(PowerState.ACTIVE), unit="W",
               expected=0.300),
        metric("power/powerdown", model.power(PowerState.POWERDOWN),
               unit="W", expected=0.003),
    ]
    for state in LOW_POWER_STATES:
        metrics.append(metric(f"power/{state.value}", model.power(state),
                              unit="W"))
        metrics.append(metric(f"break_even/{state.value}",
                              break_even_cycles(model, state),
                              unit="cycles"))
    save_record("table1_power_model", "table1", metrics,
                phases=watch.phases)

    # Sanity: the published numbers survived transcription.
    assert model.power(PowerState.ACTIVE) == 0.300
    assert model.power(PowerState.POWERDOWN) == 0.003
