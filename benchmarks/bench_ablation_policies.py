"""Ablation: low-level policy choice (Section 2.2's premise).

The paper builds on the prior-work finding that dynamic threshold
policies conserve more than static ones, and notes that DMA traffic
makes the results "almost insensitive to the threshold setting" (the
transfers dwarf the thresholds). Both claims are checked here, plus the
always-on reference that anchors the scale.
"""

import dataclasses

from repro import simulate
from repro.analysis.tables import format_table
from repro.config import SimulationConfig
from repro.energy.policies import StaticPolicy, default_dynamic_policy
from repro.energy.rdram import rdram_1600_model
from repro.energy.states import PowerState

from benchmarks.common import (
    Stopwatch,
    get_trace,
    metric,
    save_record,
    save_report,
)


def test_ablation_low_level_policies(benchmark):
    trace = get_trace("Synthetic-St")
    model = rdram_1600_model()

    policies = {
        "always on": None,  # the nopm technique
        "static standby": StaticPolicy(state=PowerState.STANDBY),
        "static nap": StaticPolicy(state=PowerState.NAP),
        "static powerdown": StaticPolicy(state=PowerState.POWERDOWN),
        "dynamic (break-even)": default_dynamic_policy(model),
        "dynamic (4x thresholds)": default_dynamic_policy(model, scale=4.0),
    }

    def sweep():
        results = {}
        for name, policy in policies.items():
            if policy is None:
                results[name] = simulate(trace, technique="nopm")
                continue
            config = dataclasses.replace(SimulationConfig(), policy=policy)
            results[name] = simulate(trace, config=config,
                                     technique="baseline")
        return results

    watch = Stopwatch()
    with watch.phase("sweep"):
        results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[name, f"{r.energy_joules * 1e3:.3f}", r.wakes]
            for name, r in results.items()]
    text = format_table(
        ["low-level policy", "energy mJ", "wakes"], rows,
        title="Low-level policy ablation (dynamic < static < always-on; "
              "threshold scaling is second order for DMA traffic)")
    save_report("ablation_policies", text)

    metrics = []
    for name, r in results.items():
        slug = name.replace(" ", "_").replace("(", "").replace(")", "")
        metrics.extend([
            metric(f"{slug}/energy_mJ", r.energy_joules * 1e3, unit="mJ"),
            metric(f"{slug}/wakes", r.wakes, unit="count"),
        ])
    save_record("ablation_policies", "ablation_policies", metrics,
                phases=watch.phases)

    energy = {name: r.energy_joules for name, r in results.items()}
    assert energy["dynamic (break-even)"] < energy["static standby"]
    assert energy["dynamic (break-even)"] < energy["always on"]
    assert energy["static nap"] < energy["always on"]
    # DMA transfers dwarf the thresholds: 4x thresholds cost little.
    drift = abs(1 - energy["dynamic (4x thresholds)"]
                / energy["dynamic (break-even)"])
    assert drift < 0.15


def test_ablation_opportunistic_migration(benchmark):
    """Section 4.2.2: migration copies riding on already-active cycles.

    The paper expected ("we expect our results will be better") that
    hiding the copies in active-idle cycles would beat the evaluated
    configuration; this ablation measures that expectation.
    """
    from repro.config import PopularityLayoutConfig

    trace = get_trace("Synthetic-St")
    baseline = simulate(trace, technique="baseline")

    def sweep():
        standard = simulate(trace, technique="dma-ta-pl", cp_limit=0.10)
        config = dataclasses.replace(
            SimulationConfig(),
            layout=PopularityLayoutConfig(opportunistic_copies=True))
        opportunistic = simulate(trace, config=config,
                                 technique="dma-ta-pl", cp_limit=0.10)
        return standard, opportunistic

    watch = Stopwatch()
    with watch.phase("sweep"):
        standard, opportunistic = benchmark.pedantic(sweep, rounds=1,
                                                     iterations=1)
    rows = []
    for name, r in (("standard copies", standard),
                    ("opportunistic copies", opportunistic)):
        rows.append([name, f"{r.energy_savings_vs(baseline):+.1%}",
                     f"{r.energy.migration * 1e3:.3f}", r.migrations])
    text = format_table(
        ["migration mode", "savings @10%", "migration mJ", "moves"],
        rows, title="Section 4.2.2 ablation: opportunistic page copies")
    save_report("ablation_opportunistic_migration", text)

    metrics = []
    for name, r in (("standard", standard),
                    ("opportunistic", opportunistic)):
        metrics.extend([
            metric(f"{name}/savings", r.energy_savings_vs(baseline),
                   unit="fraction"),
            metric(f"{name}/migration_mJ", r.energy.migration * 1e3,
                   unit="mJ"),
            metric(f"{name}/migrations", r.migrations, unit="count"),
        ])
    save_record("ablation_opportunistic_migration",
                "ablation_opportunistic_migration", metrics,
                phases=watch.phases)

    assert (opportunistic.energy_savings_vs(baseline)
            >= standard.energy_savings_vs(baseline) - 0.005)
    assert opportunistic.energy.migration <= standard.energy.migration
