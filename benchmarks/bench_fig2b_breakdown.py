"""Figure 2(b): baseline memory-energy breakdown for the two workloads.

The paper reports, under the dynamic low-level policy with three PCI-X
buses: 48-51% of energy spent active-but-idle between the DMA-memory
requests of in-flight transfers, 26-27% actually serving, only 3-4%
waiting out idleness thresholds, and the rest in transitions and
low-power residency. The regenerated breakdown must reproduce that
ordering and the idle:serving ~ 2:1 ratio implied by the 3:1 bandwidth
mismatch.
"""

from repro.analysis.tables import format_breakdown

from benchmarks.common import (
    Stopwatch,
    get_trace,
    metric,
    run_cached,
    save_record,
    save_report,
)


def test_fig2b_breakdown(benchmark):
    names = ("OLTP-St", "OLTP-Db", "Synthetic-St", "Synthetic-Db")
    traces = {name: get_trace(name) for name in names}

    watch = Stopwatch()
    with watch.phase("runs"):
        results = benchmark.pedantic(
            lambda: {name: run_cached(traces[name], "baseline")
                     for name in names},
            rounds=1, iterations=1)

    text = format_breakdown(
        [results[name] for name in names], labels=list(names),
        title="Figure 2(b): baseline energy breakdown "
              "(paper: idle-DMA 48-51%, serving 26-27%, threshold 3-4%; "
              "our OLTP substitutes run at a lower per-chip intensity, "
              "so their powerdown floor weighs more — the idle:serving "
              "2:1 ratio is the load-bearing shape)")
    save_report("fig2b_breakdown", text)

    # Paper bands (Synthetic-St runs at the published 100 transfers/ms):
    # idle-DMA 48-51%, serving 26-27%, threshold 3-4% — band midpoints.
    paper = {"idle_dma": 0.495, "serving_dma": 0.265,
             "idle_threshold": 0.035}
    metrics = []
    for name in names:
        fractions = results[name].energy.fractions()
        for bucket in ("serving_dma", "idle_dma", "idle_threshold",
                       "transition", "low_power"):
            expected = paper.get(bucket) if name == "Synthetic-St" else None
            metrics.append(metric(f"{name}/{bucket}", fractions[bucket],
                                  unit="fraction", expected=expected))
        metrics.append(metric(f"{name}/total_mJ",
                              results[name].energy_joules * 1e3,
                              unit="mJ"))
    save_record("fig2b_breakdown", "fig2b", metrics, phases=watch.phases)

    # The 3:1 bandwidth mismatch pins idle-DMA ~ 2x serving everywhere
    # DMA traffic dominates.
    for name in ("OLTP-St", "Synthetic-St"):
        e = results[name].energy
        assert 1.6 < e.idle_dma / e.serving_dma < 2.4, name
        assert e.fractions()["idle_threshold"] < 0.05, name
    # At the paper's 100 transfers/ms, the published band is reproduced.
    synth = results["Synthetic-St"].energy.fractions()
    assert synth["idle_dma"] == max(synth.values())
    assert 0.40 <= synth["idle_dma"] <= 0.55
    # Processor accesses consume idle cycles: database traces idle less.
    assert (results["Synthetic-Db"].energy.fractions()["idle_dma"]
            < synth["idle_dma"])
