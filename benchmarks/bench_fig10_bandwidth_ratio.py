"""Figure 10: savings as a function of the memory / I-O bandwidth ratio.

Memory fixed at 3.2 GB/s, per-bus I/O bandwidth swept over 0.5 / 1.064 /
2 / 3 GB/s (ratios ~6.4 / ~3 / 1.6 / ~1.07). The paper: at ratio ~1 the
chip is already fully utilised while serving, so the techniques save
only ~5%; the idle waste — and the savings — grow with the ratio, with
DMA-TA-PL pulling ahead faster.
"""

from repro import simulate
from repro.analysis.tables import format_table
from repro.config import SimulationConfig
from repro.traces.synthetic import synthetic_storage_trace

from benchmarks.common import (
    BENCH_MS,
    Stopwatch,
    metric,
    percent,
    save_record,
    save_report,
)

BUS_BANDWIDTHS = (0.5e9, 1.064e9, 2.0e9, 3.0e9)
CP = 0.10


def test_fig10_bandwidth_ratio(benchmark):
    trace = synthetic_storage_trace(duration_ms=BENCH_MS, seed=41)

    def sweep():
        rows = {}
        for bandwidth in BUS_BANDWIDTHS:
            config = SimulationConfig().with_bus_bandwidth(bandwidth)
            ratio = config.bandwidth_ratio
            baseline = simulate(trace, config=config, technique="baseline")
            ta = simulate(trace, config=config, technique="dma-ta",
                          cp_limit=CP)
            tapl = simulate(trace, config=config, technique="dma-ta-pl",
                            cp_limit=CP)
            rows[bandwidth] = (ratio, ta.energy_savings_vs(baseline),
                               tapl.energy_savings_vs(baseline),
                               baseline.utilization_factor)
        return rows

    watch = Stopwatch()
    with watch.phase("sweep"):
        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    text = format_table(
        ["bus GB/s", "ratio Rm/Rb", "DMA-TA", "DMA-TA-PL", "baseline uf"],
        [[f"{bw / 1e9:.3f}", f"{ratio:.2f}", percent(ta), percent(tapl),
          f"{uf:.3f}"]
         for bw, (ratio, ta, tapl, uf) in sorted(rows.items())],
        title="Figure 10: savings vs memory/I-O bandwidth ratio at "
              "CP-Limit 10% (paper: ~5% at ratio ~1, growing with ratio)")
    save_report("fig10_bandwidth_ratio", text)

    metrics = []
    for bw, (ratio, ta, tapl, uf) in sorted(rows.items()):
        # The paper gives one number here: ~5% savings at ratio ~1.
        expected = 0.05 if bw == 3.0e9 else None
        metrics.extend([
            metric(f"ratio={ratio:.2f}/dma-ta", ta, unit="fraction",
                   expected=expected),
            metric(f"ratio={ratio:.2f}/dma-ta-pl", tapl,
                   unit="fraction"),
            metric(f"ratio={ratio:.2f}/baseline_uf", uf, unit="uf"),
        ])
    save_record("fig10_bandwidth_ratio", "fig10", metrics,
                phases=watch.phases)

    ratio_one = rows[3.0e9]
    ratio_six = rows[0.5e9]
    # Near-matched bandwidths leave little to reclaim.
    assert abs(ratio_one[1]) < 0.10
    assert ratio_one[3] > 0.85, "baseline uf ~ Rb/Rm should approach 1"
    # Larger mismatch, larger opportunity.
    assert ratio_six[2] > ratio_one[2]
    assert rows[1.064e9][2] > ratio_one[2]
