"""Ablation: FIFO vs fair-shared bus arbitration (DESIGN.md section 6).

The paper's timing analysis assumes one transfer owns a bus at a time
(FIFO) — requests arrive at the fixed bus period and aligned transfers
saturate the chip. Under request-granularity fair sharing, concurrent
transfers on one bus *stretch* each other, keeping more chips active-idle
for longer and diluting DMA-TA's benefit. This bench quantifies that
modelling choice.
"""

import dataclasses

from repro import simulate
from repro.analysis.tables import format_table
from repro.config import BusConfig, SimulationConfig
from repro.traces.synthetic import synthetic_storage_trace

from benchmarks.common import (
    BENCH_MS,
    Stopwatch,
    metric,
    percent,
    save_record,
    save_report,
)


def test_ablation_bus_sharing(benchmark):
    trace = synthetic_storage_trace(duration_ms=min(BENCH_MS, 15.0), seed=61)

    def sweep():
        rows = {}
        for sharing in ("fifo", "fair"):
            config = dataclasses.replace(
                SimulationConfig(), buses=BusConfig(sharing=sharing))
            baseline = simulate(trace, config=config, technique="baseline")
            ta = simulate(trace, config=config, technique="dma-ta",
                          cp_limit=0.10)
            rows[sharing] = (baseline.energy_joules,
                             ta.energy_savings_vs(baseline),
                             ta.utilization_factor)
        return rows

    watch = Stopwatch()
    with watch.phase("sweep"):
        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["bus sharing", "baseline mJ", "DMA-TA savings", "DMA-TA uf"],
        [[name, f"{e * 1e3:.3f}", percent(s), f"{uf:.3f}"]
         for name, (e, s, uf) in rows.items()],
        title="Ablation: bus arbitration model (paper assumes FIFO-style "
              "full-rate streams)")
    save_report("ablation_bus_sharing", text)

    metrics = []
    for name, (energy, savings, uf) in rows.items():
        metrics.extend([
            metric(f"{name}/baseline_mJ", energy * 1e3, unit="mJ"),
            metric(f"{name}/dma-ta", savings, unit="fraction"),
            metric(f"{name}/dma-ta_uf", uf, unit="uf"),
        ])
    save_record("ablation_bus_sharing", "ablation_bus_sharing", metrics,
                phases=watch.phases)

    # FIFO (the paper's model) must give DMA-TA at least as much benefit.
    assert rows["fifo"][1] >= rows["fair"][1] - 0.02
