"""Figure 7: utilization factors of DMA-TA and DMA-TA-PL vs CP-Limit.

The paper: without the techniques uf ~ 0.33 (the 3:1 bandwidth mismatch);
with DMA-TA-PL it reaches ~0.63 at a 10% CP-Limit and ~0.75 at 30%,
growing quickly at first and then flattening — the same saturation the
savings show.
"""

from repro.analysis.tables import format_table

from benchmarks.common import (
    CP_LIMITS,
    Stopwatch,
    get_trace,
    metric,
    percent,
    run_cached,
    save_record,
    save_report,
)


def test_fig7_utilization(benchmark):
    trace = get_trace("Synthetic-St")

    def sweep():
        baseline = run_cached(trace, "baseline")
        series = {"baseline": baseline.utilization_factor}
        for technique in ("dma-ta", "dma-ta-pl"):
            for cp in CP_LIMITS:
                result = run_cached(trace, technique, cp_limit=cp)
                series[(technique, cp)] = result.utilization_factor
        return series

    watch = Stopwatch()
    with watch.phase("sweep"):
        series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for technique in ("dma-ta", "dma-ta-pl"):
        row = [technique]
        for cp in CP_LIMITS:
            row.append(f"{series[(technique, cp)]:.3f}")
        rows.append(row)
    text = format_table(
        ["technique"] + [f"CP={cp:.0%}" for cp in CP_LIMITS], rows,
        title=f"Figure 7: utilization factor vs CP-Limit "
              f"(baseline uf = {series['baseline']:.3f}; paper: 0.33 "
              f"baseline, 0.63 @10%, 0.75 @30% for DMA-TA-PL)")
    save_report("fig7_utilization", text)

    paper_tapl = {0.10: 0.63, 0.30: 0.75}
    metrics = [metric("baseline/uf", series["baseline"], unit="uf",
                      expected=1 / 3)]
    for technique in ("dma-ta", "dma-ta-pl"):
        for cp in CP_LIMITS:
            expected = (paper_tapl.get(cp)
                        if technique == "dma-ta-pl" else None)
            metrics.append(metric(f"{technique}/uf/cp={cp:g}",
                                  series[(technique, cp)], unit="uf",
                                  expected=expected))
    save_record("fig7_utilization", "fig7", metrics, phases=watch.phases)

    assert abs(series["baseline"] - 1 / 3) < 0.05
    tapl = [series[("dma-ta-pl", cp)] for cp in CP_LIMITS]
    assert tapl[0] < tapl[2] <= tapl[-1] + 0.02, "uf must rise with CP"
    assert all(series[("dma-ta-pl", cp)] >= series[("dma-ta", cp)] - 0.02
               for cp in CP_LIMITS)
    assert all(u <= 1.0 for u in tapl)
