"""Workload zoo: characterization + energy/degradation per family.

Four records, one per ``BENCH_workload_<name>.json`` trajectory:

* ``workload_kv_store`` — Zipfian point reads, small transfers;
* ``workload_ml_inference`` — sequential tensor streams with deadlines;
* ``workload_video_stream`` — paced sequential CDN readers;
* ``workload_drift`` — the two drift scenarios (diurnal popularity
  shift, flash crowd) that force PL re-migration mid-run.

Each record carries the family's Table-2-style characterization next to
its baseline/DMA-TA/DMA-TA-PL energy and client-degradation numbers, so
fidelity *and* policy behaviour stay regression-gated as the zoo grows
(see docs/WORKLOADS.md).
"""

from repro.analysis.tables import format_table
from repro.obs import RingTracer
from repro.sim.run import simulate
from repro.traces.stats import characterize
from repro.traces.zoo import kv_store_trace

from benchmarks.common import (
    Stopwatch,
    get_trace,
    metric,
    percent,
    run_cached,
    save_record,
    save_report,
)

CP_LIMIT = 0.10


def _characterization_metrics(trace, prefix):
    stats = characterize(trace)
    return stats, [
        metric(f"{prefix}/transfers_per_ms", stats.transfers_per_ms,
               unit="1/ms"),
        metric(f"{prefix}/proc_accesses_per_transfer",
               stats.proc_accesses_per_transfer, unit="count"),
        metric(f"{prefix}/mean_transfer_bytes", stats.mean_transfer_bytes,
               unit="B"),
        metric(f"{prefix}/pages_referenced", stats.pages_referenced,
               unit="pages"),
        metric(f"{prefix}/top20_access_fraction",
               stats.top20_access_fraction, unit="fraction"),
    ]


def _policy_metrics(trace, prefix):
    baseline = run_cached(trace, "baseline",
                          label=f"{prefix}:baseline")
    ta = run_cached(trace, "dma-ta", cp_limit=CP_LIMIT,
                    label=f"{prefix}:dma-ta")
    tapl = run_cached(trace, "dma-ta-pl", cp_limit=CP_LIMIT,
                      label=f"{prefix}:dma-ta-pl")
    metrics = []
    rows = []
    for result, label in ((ta, "dma-ta"), (tapl, "dma-ta-pl")):
        savings = result.energy_savings_vs(baseline)
        degradation = result.client_degradation_vs(baseline)
        metrics.extend([
            metric(f"{prefix}/{label}/savings", savings, unit="fraction"),
            metric(f"{prefix}/{label}/client_degradation", degradation,
                   unit="fraction"),
            metric(f"{prefix}/{label}/migrations", result.migrations,
                   unit="pages"),
        ])
        rows.append([label, percent(savings), percent(degradation),
                     result.migrations])
    return metrics, rows


def _workload_bench(benchmark, family, figure, extra_families=(),
                    extra_metrics=()):
    watch = Stopwatch()
    with watch.phase("generate"):
        benchmark.pedantic(
            lambda: kv_store_trace(duration_ms=2.0, seed=77),
            rounds=1, iterations=1)

    metrics = []
    report_rows = []
    for name in (family, *extra_families):
        trace = get_trace(name)
        with watch.phase(f"characterize:{name}"):
            stats, char_metrics = _characterization_metrics(trace, name)
        metrics.extend(char_metrics)
        policy_metrics, rows = _policy_metrics(trace, name)
        metrics.extend(policy_metrics)
        for row in rows:
            report_rows.append([name, f"{stats.transfers_per_ms:.1f}",
                                f"{stats.top20_access_fraction:.0%}",
                                *row])
        assert stats.transfers > 0
    metrics.extend(extra_metrics)
    text = format_table(
        ["family", "tr/ms", "top-20%", "technique", "savings",
         "degradation", "migrations"],
        report_rows,
        title=f"workload zoo: {figure} at CP-Limit {CP_LIMIT:.0%}")
    save_report(figure, text)
    save_record(figure, figure, metrics, phases=watch.phases)


def test_workload_kv_store(benchmark):
    _workload_bench(benchmark, "kv-store", "workload_kv_store")


def test_workload_ml_inference(benchmark):
    _workload_bench(benchmark, "ml-inference", "workload_ml_inference")


def test_workload_video_stream(benchmark):
    _workload_bench(benchmark, "video-stream", "workload_video_stream")


def test_workload_drift(benchmark):
    # Count the PL migration waves directly: distinct interval
    # boundaries at which the planner actually moved pages. Anything
    # beyond the first wave is a re-migration chasing the drift.
    tracer = RingTracer()
    trace = get_trace("drift-diurnal")
    simulate(trace, technique="dma-ta-pl", cp_limit=CP_LIMIT,
             tracer=tracer)
    waves = {e.ts for e in tracer.events if e.name == "pl.migration"}
    _workload_bench(
        benchmark, "drift-diurnal", "workload_drift",
        extra_families=("flash-crowd",),
        extra_metrics=[metric("drift-diurnal/migration_waves", len(waves),
                              unit="intervals")])
