"""Figure 5: energy savings vs CP-Limit for all four workloads.

The paper's headline figure: DMA-TA and DMA-TA-PL savings over the
baseline dynamic policy as the allowed client-perceived response-time
degradation grows from 0 to 30%, for the storage and database traces.
Expected shapes: savings rise quickly up to ~10% CP-Limit and then
flatten; DMA-TA-PL (2 groups) beats DMA-TA alone; storage workloads
save more than database workloads; with too many PL groups the
migration overhead erodes (and can erase) the benefit.
"""

import pytest

from repro.analysis.tables import format_table
from repro.config import SimulationConfig
from repro.sim.run import simulate

from benchmarks.common import (
    CP_LIMITS,
    Stopwatch,
    get_trace,
    metric,
    percent,
    prefetch_grid,
    run_cached,
    save_record,
    save_report,
)

TRACES = ("OLTP-St", "Synthetic-St", "OLTP-Db", "Synthetic-Db")
TECHNIQUES = ("dma-ta", "dma-ta-pl")

#: Paper-published Figure 5 points (OLTP-St): technique -> {cp: savings}.
PAPER_SAVINGS = {
    "dma-ta": {0.02: 0.06, 0.30: 0.248},
    "dma-ta-pl": {0.02: 0.194, 0.10: 0.386, 0.30: 0.445},
}


def test_fig5_savings_vs_cplimit(benchmark):
    def sweep():
        # One run_many() call covers every (trace, technique, CP) point
        # plus the four shared baselines; REPRO_BENCH_JOBS parallelises
        # it and REPRO_BENCH_CACHE makes reruns warm. The loop below
        # then only assembles memoised results.
        prefetch_grid([get_trace(name) for name in TRACES],
                      TECHNIQUES, CP_LIMITS)
        table = {}
        for name in TRACES:
            trace = get_trace(name)
            baseline = run_cached(trace, "baseline")
            for technique in TECHNIQUES:
                for cp in CP_LIMITS:
                    result = run_cached(trace, technique, cp_limit=cp)
                    table[(name, technique, cp)] = (
                        result.energy_savings_vs(baseline),
                        result.client_degradation_vs(baseline),
                        result.guarantee_violated,
                    )
        return table

    watch = Stopwatch()
    with watch.phase("sweep"):
        table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name in TRACES:
        for technique in TECHNIQUES:
            row = [name, technique]
            for cp in CP_LIMITS:
                savings, _, _ = table[(name, technique, cp)]
                row.append(percent(savings))
            rows.append(row)
    text = format_table(
        ["trace", "technique"] + [f"CP={cp:.0%}" for cp in CP_LIMITS],
        rows,
        title="Figure 5: energy savings vs CP-Limit "
              "(paper: OLTP-St DMA-TA 6-24.8%, DMA-TA-PL 19.4-44.5%, "
              "38.6% at CP=10%)")

    deg_rows = []
    for name in TRACES:
        row = [name]
        for cp in CP_LIMITS:
            _, degradation, _ = table[(name, "dma-ta-pl", cp)]
            row.append(percent(degradation))
        deg_rows.append(row)
    text += "\n\n" + format_table(
        ["trace"] + [f"CP={cp:.0%}" for cp in CP_LIMITS], deg_rows,
        title="Measured client-perceived degradation (must stay below "
              "each CP-Limit)")
    save_report("fig5_savings_vs_cplimit", text)

    metrics = []
    for name in TRACES:
        for technique in TECHNIQUES:
            for cp in CP_LIMITS:
                savings, degradation, _ = table[(name, technique, cp)]
                expected = (PAPER_SAVINGS[technique].get(cp)
                            if name == "OLTP-St" else None)
                metrics.append(metric(
                    f"{name}/{technique}/cp={cp:g}", savings,
                    unit="fraction", expected=expected))
                if technique == "dma-ta-pl":
                    metrics.append(metric(
                        f"{name}/degradation/cp={cp:g}", degradation,
                        unit="fraction"))
    save_record("fig5_savings_vs_cplimit", "fig5", metrics,
                phases=watch.phases)

    # Shape assertions.
    for name in ("Synthetic-St",):
        low = table[(name, "dma-ta", 0.02)][0]
        high = table[(name, "dma-ta", 0.30)][0]
        assert high > low, "savings must grow with CP-Limit"
        assert high > 0.10
    for name in TRACES:
        for cp in CP_LIMITS:
            _, degradation, violated = table[(name, "dma-ta-pl", cp)]
            assert degradation <= cp + 0.015
            assert not violated


def test_fig5_group_count_ablation(benchmark):
    """Section 5.2: 2 popularity groups beat 3 and 6 (migration churn).

    The group structure only matters when the hot set spans several
    chips, so this ablation uses smaller chips (2 MB) and a flatter
    popularity curve than the headline runs; with one hot chip, every
    group count degenerates to the same hot/cold split. The extra hot
    groups impose a strict ordering among hot pages, and rank noise at
    the group boundaries migrates pages back and forth — pure overhead,
    the effect behind the paper's -15.2% at 6 groups.
    """
    import dataclasses

    from repro.config import MemoryConfig, PopularityLayoutConfig
    from repro.traces.synthetic import synthetic_storage_trace

    from benchmarks.common import BENCH_MS

    trace = synthetic_storage_trace(duration_ms=BENCH_MS, zipf_alpha=0.5,
                                    seed=71)
    memory = MemoryConfig(num_chips=32, chip_bytes=2 << 20)

    def sweep():
        savings = {}
        base_config = dataclasses.replace(SimulationConfig(), memory=memory)
        baseline = simulate(trace, config=base_config, technique="baseline")
        for groups in (2, 3, 6):
            # A flat workload never produces confident multi-reference
            # counts inside one interval, so the noise filter is lowered
            # to let the multi-chip hot set form — which is exactly the
            # regime where extra groups churn.
            config = dataclasses.replace(
                base_config,
                layout=PopularityLayoutConfig(
                    num_groups=groups, min_hot_references=1,
                    interval_cycles=8_000_000.0))
            result = simulate(trace, config=config, technique="dma-ta-pl",
                              cp_limit=0.10)
            savings[groups] = (result.energy_savings_vs(baseline),
                               result.migrations)
        return savings

    watch = Stopwatch()
    with watch.phase("sweep"):
        savings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["PL groups", "savings at CP=10%", "page moves"],
        [[g, percent(s), m] for g, (s, m) in sorted(savings.items())],
        title="Figure 5 inset: group-count ablation on a multi-chip hot "
              "set (paper: 38.6% / 33.4% / -15.2% for 2 / 3 / 6 groups)")
    save_report("fig5_group_ablation", text)

    paper = {2: 0.386, 3: 0.334, 6: -0.152}
    metrics = []
    for groups, (s, moves) in sorted(savings.items()):
        metrics.append(metric(f"groups={groups}/savings", s,
                              unit="fraction", expected=paper[groups]))
        metrics.append(metric(f"groups={groups}/migrations", moves,
                              unit="pages"))
    save_record("fig5_group_ablation", "fig5", metrics,
                phases=watch.phases)

    assert savings[2][0] >= savings[6][0] - 0.01
    assert savings[6][1] >= savings[2][1], \
        "more groups must migrate at least as much"
