"""Figure 8: energy savings as a function of workload intensity.

Synthetic-St with the DMA transfer arrival rate swept around its default
of 100 transfers/ms. The paper: more intensive workloads give the
aligner more to align, so savings grow with intensity — but more slowly
at the top, where transfers increasingly overlap naturally even in the
baseline.

The sweep stops at 200 transfers/ms (~50% utilisation of the three
PCI-X buses with 8-KB transfers): beyond that, bus queueing delays the
released transfers by different amounts per bus, which skews the
gathered batches apart and erodes the alignment — a bus-contention
effect our explicit bus model exposes (DESIGN.md section 6).
"""

from repro import simulate
from repro.analysis.tables import format_table
from repro.traces.synthetic import synthetic_storage_trace

from benchmarks.common import (
    BENCH_MS,
    Stopwatch,
    metric,
    percent,
    save_record,
    save_report,
)

RATES = (25.0, 50.0, 100.0, 150.0, 200.0)
CP = 0.10


def test_fig8_intensity(benchmark):
    def sweep():
        rows = {}
        for rate in RATES:
            # Scale duration down at high rates to keep run time flat.
            duration = BENCH_MS * min(1.0, 100.0 / rate)
            trace = synthetic_storage_trace(
                duration_ms=max(duration, 5.0), transfers_per_ms=rate,
                seed=21)
            baseline = simulate(trace, technique="baseline")
            ta = simulate(trace, technique="dma-ta", cp_limit=CP)
            tapl = simulate(trace, technique="dma-ta-pl", cp_limit=CP)
            rows[rate] = (ta.energy_savings_vs(baseline),
                          tapl.energy_savings_vs(baseline),
                          baseline.utilization_factor)
        return rows

    watch = Stopwatch()
    with watch.phase("sweep"):
        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    text = format_table(
        ["transfers/ms", "DMA-TA savings", "DMA-TA-PL savings",
         "baseline uf"],
        [[f"{rate:.0f}", percent(ta), percent(tapl), f"{uf:.3f}"]
         for rate, (ta, tapl, uf) in sorted(rows.items())],
        title="Figure 8: savings vs workload intensity at CP-Limit 10% "
              "(paper: savings grow with intensity, flattening at the top)")
    save_report("fig8_intensity", text)

    metrics = []
    for rate, (ta, tapl, uf) in sorted(rows.items()):
        metrics.extend([
            metric(f"rate={rate:g}/dma-ta", ta, unit="fraction"),
            metric(f"rate={rate:g}/dma-ta-pl", tapl, unit="fraction"),
            metric(f"rate={rate:g}/baseline_uf", uf, unit="uf"),
        ])
    save_record("fig8_intensity", "fig8", metrics, phases=watch.phases)

    ta_series = [rows[rate][0] for rate in RATES]
    assert ta_series[0] < ta_series[2], "low intensity must save less"
    assert ta_series[-1] > 0.0
    # Natural baseline alignment grows with intensity.
    assert rows[RATES[-1]][2] > rows[RATES[0]][2]
