"""Figure 9: savings as a function of processor accesses per transfer.

Synthetic-Db with 0 to 500 64-byte processor accesses injected around
each DMA transfer (the published OLTP-Db average is 233). The paper:
processor accesses consume exactly the active-idle cycles the techniques
try to reclaim, so savings drop as their count grows — but remain
positive even in the hundreds.
"""

from repro import simulate
from repro.analysis.tables import format_table
from repro.traces.synthetic import synthetic_database_trace

from benchmarks.common import (
    BENCH_MS,
    Stopwatch,
    metric,
    percent,
    save_record,
    save_report,
)

PROC_COUNTS = (0, 50, 100, 233, 500)
CP = 0.10


def test_fig9_proc_accesses(benchmark):
    def sweep():
        rows = {}
        for count in PROC_COUNTS:
            trace = synthetic_database_trace(
                duration_ms=BENCH_MS, proc_accesses_per_transfer=count,
                seed=31)
            baseline = simulate(trace, technique="baseline")
            tapl = simulate(trace, technique="dma-ta-pl", cp_limit=CP)
            rows[count] = (tapl.energy_savings_vs(baseline),
                           baseline.utilization_factor)
        return rows

    watch = Stopwatch()
    with watch.phase("sweep"):
        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    text = format_table(
        ["proc accesses / transfer", "DMA-TA-PL savings", "baseline uf"],
        [[count, percent(savings), f"{uf:.3f}"]
         for count, (savings, uf) in sorted(rows.items())],
        title="Figure 9: savings vs processor accesses per transfer at "
              "CP-Limit 10% (paper: savings drop but stay significant; "
              "OLTP-Db sits at 233)")
    save_report("fig9_proc_accesses", text)

    metrics = []
    for count, (savings, uf) in sorted(rows.items()):
        metrics.extend([
            metric(f"proc={count}/dma-ta-pl", savings, unit="fraction"),
            metric(f"proc={count}/baseline_uf", uf, unit="uf"),
        ])
    save_record("fig9_proc_accesses", "fig9", metrics,
                phases=watch.phases)

    assert rows[0][0] > rows[500][0], "proc accesses must erode savings"
    assert rows[500][0] > -0.05, "savings should not collapse"
    # Baseline utilization rises as processor work soaks idle cycles.
    assert rows[500][1] > rows[0][1]
