"""Shared infrastructure for the reproduction benches.

Each bench regenerates one of the paper's tables or figures: it runs the
simulations under ``pytest-benchmark`` (one round — these are full
simulations, not microbenchmarks), prints the regenerated rows/series,
and archives them under ``benchmarks/results/`` **twice**: the
human-readable table as ``<name>.txt`` and a schema-versioned
:class:`repro.bench.BenchRecord` as ``<name>.json`` — the machine-
readable record that ``repro bench compare`` classifies against the
committed ``BENCH_<figure>.json`` trajectories (see docs/BENCHMARKS.md).
Both writes are atomic (temp file + rename), so an interrupted bench can
never leave a truncated artifact that later parses as a bogus baseline.

Simulation runs go through :mod:`repro.exec`: every run is memoised by
its *content* key (trace bytes + canonical config + technique params),
so all benches in one session share a single baseline run per (trace,
config) pair, and a bench can prefetch its whole grid through the
parallel executor. Knobs (see docs/EXECUTION.md):

* ``REPRO_BENCH_MS`` — trace duration in ms (default 25). Longer traces
  amortise PL's one-time migration cost and sharpen every estimate, at a
  linear cost in wall-clock time.
* ``REPRO_BENCH_JOBS`` — worker processes for prefetched grids
  (default 1 = serial).
* ``REPRO_BENCH_CACHE`` — set to 1 to persist results in the on-disk
  cache (``$REPRO_CACHE_DIR`` or ``.repro_cache/``) across sessions.
* ``REPRO_PROFILE`` — set to 1 to wrap every engine run in cProfile;
  the merged hot paths land in each bench's JSON record.
"""

from __future__ import annotations

import datetime
import os
import platform
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

from repro import __version__
from repro.bench import BenchRecord, Metric, Phase
from repro.bench.trajectory import write_json_atomic
from repro.config import SimulationConfig
from repro.exec import ResultCache, SimJob, run_many
from repro.obs.audit import audit_result, audit_summary
from repro.obs.perf import merge_profiles
from repro.sim.results import SimulationResult
from repro.traces.oltp import oltp_database_trace, oltp_storage_trace
from repro.traces.synthetic import synthetic_database_trace, synthetic_storage_trace
from repro.traces.trace import Trace
from repro.traces.zoo import ZOO

RESULTS_DIR = Path(__file__).parent / "results"

#: Trace duration for every bench, in milliseconds.
BENCH_MS = float(os.environ.get("REPRO_BENCH_MS", "25"))

#: Worker processes used by :func:`prefetch_grid` (1 = serial).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Whether bench runs persist results in the on-disk cache.
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "0").lower() not in (
    "", "0", "no", "false")

#: The CP-Limit grid of Figures 5 and 7.
CP_LIMITS = (0.02, 0.05, 0.10, 0.20, 0.30)

_TRACE_CACHE: dict[str, Trace] = {}
#: In-session result memo, keyed by content (SimJob.key()).
_RUN_CACHE: dict[str, SimulationResult] = {}
#: The shared on-disk cache (None when REPRO_BENCH_CACHE is off).
DISK_CACHE: ResultCache | None = ResultCache() if BENCH_CACHE else None


class _SessionStats:
    """Per-record accumulators for the bench session.

    ``run_cached`` / ``prefetch_grid`` feed it executor outcomes; each
    :func:`save_record` call drains the accumulated state, so counters
    and wall-clock attribute to the bench that triggered the work even
    though the memo is shared across benches.
    """

    def __init__(self) -> None:
        self.sim_wall_s = 0.0
        self.memo_hits = 0
        self.memo_misses = 0
        self.disk_base: dict[str, int] = self._disk_counts()
        self.profiles: list[list[dict]] = []
        self.audited = 0
        self.audit_findings: list[str] = []

    @staticmethod
    def _disk_counts() -> dict[str, int]:
        return DISK_CACHE.stats.as_dict() if DISK_CACHE else {}

    def note_outcomes(self, outcomes) -> None:
        for outcome in outcomes:
            self.sim_wall_s += outcome.wall_s
            if outcome.ok and outcome.result.profile:
                self.profiles.append(outcome.result.profile)
            if outcome.ok:
                self.audited += 1
                for finding in audit_summary(audit_result(outcome.result)):
                    line = f"{outcome.job.tag or outcome.job.technique}: " \
                           f"{finding}"
                    if line not in self.audit_findings:
                        self.audit_findings.append(line)

    def drain(self) -> tuple[float, dict[str, int], list[dict] | None,
                             dict]:
        """(simulate wall, cache counters, merged profile, audit block)
        accumulated since the previous drain."""
        wall = self.sim_wall_s
        counts = {"memo_hits": self.memo_hits,
                  "memo_misses": self.memo_misses}
        disk_now = self._disk_counts()
        for key, value in disk_now.items():
            counts[f"disk_{key}"] = value - self.disk_base.get(key, 0)
        profile = merge_profiles(self.profiles) if self.profiles else None
        audit = {"checked": self.audited,
                 "findings": list(self.audit_findings)}
        self.sim_wall_s = 0.0
        self.memo_hits = self.memo_misses = 0
        self.disk_base = disk_now
        self.profiles = []
        self.audited = 0
        self.audit_findings = []
        return wall, counts, profile, audit


_SESSION = _SessionStats()


def get_trace(name: str, **overrides) -> Trace:
    """Build (and cache) an evaluation trace by name.

    Accepts the paper's four traces (``OLTP-St`` ... ``Synthetic-Db``)
    plus every workload-zoo family name (``kv-store``, ``drift-diurnal``,
    ...; see docs/WORKLOADS.md).
    """
    key = f"{name}:{sorted(overrides.items())}"
    if key not in _TRACE_CACHE:
        duration = overrides.pop("duration_ms", BENCH_MS)
        makers = {
            "OLTP-St": lambda: oltp_storage_trace(duration_ms=duration,
                                                  **overrides),
            "OLTP-Db": lambda: oltp_database_trace(duration_ms=duration,
                                                   **overrides),
            "Synthetic-St": lambda: synthetic_storage_trace(
                duration_ms=duration, **overrides),
            "Synthetic-Db": lambda: synthetic_database_trace(
                duration_ms=duration, **overrides),
        }
        for family, generator in ZOO.items():
            makers[family] = (
                lambda g=generator: g(duration_ms=duration, **overrides))
        _TRACE_CACHE[key] = makers[name]()
    return _TRACE_CACHE[key]


def _require(outcomes) -> None:
    failed = [o for o in outcomes if not o.ok]
    if failed:
        details = "; ".join(
            f"{o.job.technique}[{o.job.tag}]: {o.error}" for o in failed)
        raise RuntimeError(f"{len(failed)} bench run(s) failed: {details}")


def run_cached(trace: Trace, technique: str,
               config: SimulationConfig | None = None,
               cp_limit: float | None = None,
               label: str | None = None) -> SimulationResult:
    """Run a simulation once per unique content (trace, config, params).

    ``label`` is carried as a job tag for error messages only — unlike
    the old identity-based memo, the content key already distinguishes
    every input that matters (including the config).
    """
    job = SimJob(trace, technique, config=config, cp_limit=cp_limit,
                 tag=label or "")
    key = job.key()
    if key not in _RUN_CACHE:
        _SESSION.memo_misses += 1
        outcomes = run_many([job], cache=DISK_CACHE)
        _require(outcomes)
        _SESSION.note_outcomes(outcomes)
        _RUN_CACHE[key] = outcomes[0].result
    else:
        _SESSION.memo_hits += 1
    return _RUN_CACHE[key]


def prefetch_grid(traces, techniques, cp_limits,
                  config: SimulationConfig | None = None) -> None:
    """Warm the memo for a whole (trace x technique x CP-Limit) grid.

    Builds one baseline job per trace plus one job per grid point and
    executes them through :func:`repro.exec.run_many` with
    ``REPRO_BENCH_JOBS`` workers and the shared on-disk cache. Later
    :func:`run_cached` calls for the same points are memo hits, so
    benches keep their serial-looking bodies while the heavy lifting
    runs in parallel.
    """
    jobs = []
    for trace in traces:
        jobs.append(SimJob(trace, "baseline", config=config,
                           tag=f"{trace.name}:baseline"))
        for technique in techniques:
            for cp in cp_limits:
                jobs.append(SimJob(trace, technique, config=config,
                                   cp_limit=cp,
                                   tag=f"{trace.name}:cp={cp:g}"))
    _SESSION.memo_misses += len({job.key() for job in jobs}
                                - set(_RUN_CACHE))
    outcomes = run_many(jobs, max_workers=BENCH_JOBS, cache=DISK_CACHE)
    _require(outcomes)
    _SESSION.note_outcomes(outcomes)
    for outcome in outcomes:
        _RUN_CACHE[outcome.key] = outcome.result


def save_report(name: str, text: str) -> None:
    """Print the regenerated table and archive it under results/.

    The archive write is atomic: the text lands in a temp file in the
    same directory and is renamed into place, so an interrupted bench
    never leaves a truncated ``.txt``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    fd, tmp_name = tempfile.mkstemp(dir=RESULTS_DIR, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    print(f"\n===== {name} =====")
    print(text)


class Stopwatch:
    """Named wall-clock phases for one bench's JSON record."""

    def __init__(self) -> None:
        self._phases: list[tuple[str, float]] = []

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self._phases.append((name, time.perf_counter() - start))

    @property
    def phases(self) -> list[tuple[str, float]]:
        return list(self._phases)


def metric(name: str, value: float, unit: str = "",
           expected: float | None = None) -> Metric:
    """One record metric; ``expected`` is the paper's published value."""
    return Metric(name=name, value=float(value), unit=unit,
                  expected=expected)


def save_record(name: str, figure: str, metrics: list[Metric],
                phases: list[tuple[str, float]] | None = None,
                fleet: dict | None = None) -> Path:
    """Archive one bench run as ``results/<name>.json`` (atomically).

    ``phases`` are the bench's own stopwatch phases; a ``simulate``
    phase holding the executor wall-clock accumulated from
    :attr:`repro.exec.runner.JobOutcome.wall_s` since the previous
    record is appended automatically, as are the cache counters and
    (when ``REPRO_PROFILE=1``) the merged hot paths of the profiled
    runs. ``fleet`` is an optional
    :meth:`repro.obs.fleet.FleetReport.as_dict` rollup from a
    fleet-observed sweep the bench ran.
    """
    sim_wall, cache_counts, profile, audit = _SESSION.drain()
    if audit["findings"]:
        print(f"\naudit: {len(audit['findings'])} finding(s) in "
              f"{name}:")
        for line in audit["findings"]:
            print(f"  {line}")
    all_phases = [Phase(name=pname, wall_s=wall)
                  for pname, wall in (phases or [])]
    if sim_wall > 0:
        all_phases.append(Phase(name="simulate", wall_s=sim_wall))
    record = BenchRecord(
        name=name, figure=figure,
        created=datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        meta={
            "bench_ms": BENCH_MS,
            "jobs": BENCH_JOBS,
            "disk_cache": BENCH_CACHE,
            "python": platform.python_version(),
            "repro": __version__,
        },
        metrics=list(metrics),
        phases=all_phases,
        cache=cache_counts,
        profile=profile,
        audit=audit,
        fleet=dict(fleet) if fleet else {},
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    write_json_atomic(path, record.to_dict())
    return path


def percent(value: float) -> str:
    return f"{value * 100:6.1f}%"
