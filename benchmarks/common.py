"""Shared infrastructure for the reproduction benches.

Each bench regenerates one of the paper's tables or figures: it runs the
simulations under ``pytest-benchmark`` (one round — these are full
simulations, not microbenchmarks), prints the regenerated rows/series,
and archives them under ``benchmarks/results/`` so the EXPERIMENTS.md
numbers can be traced to a run.

``REPRO_BENCH_MS`` scales every trace's duration (default 25 ms). Longer
traces amortise PL's one-time migration cost and sharpen every estimate,
at a linear cost in wall-clock time.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro import simulate
from repro.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.traces.oltp import oltp_database_trace, oltp_storage_trace
from repro.traces.synthetic import synthetic_database_trace, synthetic_storage_trace
from repro.traces.trace import Trace

RESULTS_DIR = Path(__file__).parent / "results"

#: Trace duration for every bench, in milliseconds.
BENCH_MS = float(os.environ.get("REPRO_BENCH_MS", "25"))

#: The CP-Limit grid of Figures 5 and 7.
CP_LIMITS = (0.02, 0.05, 0.10, 0.20, 0.30)

_TRACE_CACHE: dict[str, Trace] = {}
_RUN_CACHE: dict[tuple, SimulationResult] = {}


def get_trace(name: str, **overrides) -> Trace:
    """Build (and cache) one of the four evaluation traces by name."""
    key = f"{name}:{sorted(overrides.items())}"
    if key not in _TRACE_CACHE:
        duration = overrides.pop("duration_ms", BENCH_MS)
        makers = {
            "OLTP-St": lambda: oltp_storage_trace(duration_ms=duration,
                                                  **overrides),
            "OLTP-Db": lambda: oltp_database_trace(duration_ms=duration,
                                                   **overrides),
            "Synthetic-St": lambda: synthetic_storage_trace(
                duration_ms=duration, **overrides),
            "Synthetic-Db": lambda: synthetic_database_trace(
                duration_ms=duration, **overrides),
        }
        _TRACE_CACHE[key] = makers[name]()
    return _TRACE_CACHE[key]


def run_cached(trace: Trace, technique: str,
               config: SimulationConfig | None = None,
               cp_limit: float | None = None,
               label: str | None = None) -> SimulationResult:
    """Run a simulation once per unique (trace, technique, cp, config)."""
    key = (id(trace), technique, cp_limit, label or "")
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = simulate(trace, config=config,
                                   technique=technique, cp_limit=cp_limit)
    return _RUN_CACHE[key]


def save_report(name: str, text: str) -> None:
    """Print the regenerated table and archive it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def percent(value: float) -> str:
    return f"{value * 100:6.1f}%"
