"""Shared infrastructure for the reproduction benches.

Each bench regenerates one of the paper's tables or figures: it runs the
simulations under ``pytest-benchmark`` (one round — these are full
simulations, not microbenchmarks), prints the regenerated rows/series,
and archives them under ``benchmarks/results/`` so the EXPERIMENTS.md
numbers can be traced to a run.

Simulation runs go through :mod:`repro.exec`: every run is memoised by
its *content* key (trace bytes + canonical config + technique params),
so all benches in one session share a single baseline run per (trace,
config) pair, and a bench can prefetch its whole grid through the
parallel executor. Knobs (see docs/EXECUTION.md):

* ``REPRO_BENCH_MS`` — trace duration in ms (default 25). Longer traces
  amortise PL's one-time migration cost and sharpen every estimate, at a
  linear cost in wall-clock time.
* ``REPRO_BENCH_JOBS`` — worker processes for prefetched grids
  (default 1 = serial).
* ``REPRO_BENCH_CACHE`` — set to 1 to persist results in the on-disk
  cache (``$REPRO_CACHE_DIR`` or ``.repro_cache/``) across sessions.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.config import SimulationConfig
from repro.exec import ResultCache, SimJob, run_many
from repro.sim.results import SimulationResult
from repro.traces.oltp import oltp_database_trace, oltp_storage_trace
from repro.traces.synthetic import synthetic_database_trace, synthetic_storage_trace
from repro.traces.trace import Trace

RESULTS_DIR = Path(__file__).parent / "results"

#: Trace duration for every bench, in milliseconds.
BENCH_MS = float(os.environ.get("REPRO_BENCH_MS", "25"))

#: Worker processes used by :func:`prefetch_grid` (1 = serial).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Whether bench runs persist results in the on-disk cache.
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "0").lower() not in (
    "", "0", "no", "false")

#: The CP-Limit grid of Figures 5 and 7.
CP_LIMITS = (0.02, 0.05, 0.10, 0.20, 0.30)

_TRACE_CACHE: dict[str, Trace] = {}
#: In-session result memo, keyed by content (SimJob.key()).
_RUN_CACHE: dict[str, SimulationResult] = {}
#: The shared on-disk cache (None when REPRO_BENCH_CACHE is off).
DISK_CACHE: ResultCache | None = ResultCache() if BENCH_CACHE else None


def get_trace(name: str, **overrides) -> Trace:
    """Build (and cache) one of the four evaluation traces by name."""
    key = f"{name}:{sorted(overrides.items())}"
    if key not in _TRACE_CACHE:
        duration = overrides.pop("duration_ms", BENCH_MS)
        makers = {
            "OLTP-St": lambda: oltp_storage_trace(duration_ms=duration,
                                                  **overrides),
            "OLTP-Db": lambda: oltp_database_trace(duration_ms=duration,
                                                   **overrides),
            "Synthetic-St": lambda: synthetic_storage_trace(
                duration_ms=duration, **overrides),
            "Synthetic-Db": lambda: synthetic_database_trace(
                duration_ms=duration, **overrides),
        }
        _TRACE_CACHE[key] = makers[name]()
    return _TRACE_CACHE[key]


def _require(outcomes) -> None:
    failed = [o for o in outcomes if not o.ok]
    if failed:
        details = "; ".join(
            f"{o.job.technique}[{o.job.tag}]: {o.error}" for o in failed)
        raise RuntimeError(f"{len(failed)} bench run(s) failed: {details}")


def run_cached(trace: Trace, technique: str,
               config: SimulationConfig | None = None,
               cp_limit: float | None = None,
               label: str | None = None) -> SimulationResult:
    """Run a simulation once per unique content (trace, config, params).

    ``label`` is carried as a job tag for error messages only — unlike
    the old identity-based memo, the content key already distinguishes
    every input that matters (including the config).
    """
    job = SimJob(trace, technique, config=config, cp_limit=cp_limit,
                 tag=label or "")
    key = job.key()
    if key not in _RUN_CACHE:
        outcomes = run_many([job], cache=DISK_CACHE)
        _require(outcomes)
        _RUN_CACHE[key] = outcomes[0].result
    return _RUN_CACHE[key]


def prefetch_grid(traces, techniques, cp_limits,
                  config: SimulationConfig | None = None) -> None:
    """Warm the memo for a whole (trace x technique x CP-Limit) grid.

    Builds one baseline job per trace plus one job per grid point and
    executes them through :func:`repro.exec.run_many` with
    ``REPRO_BENCH_JOBS`` workers and the shared on-disk cache. Later
    :func:`run_cached` calls for the same points are memo hits, so
    benches keep their serial-looking bodies while the heavy lifting
    runs in parallel.
    """
    jobs = []
    for trace in traces:
        jobs.append(SimJob(trace, "baseline", config=config,
                           tag=f"{trace.name}:baseline"))
        for technique in techniques:
            for cp in cp_limits:
                jobs.append(SimJob(trace, technique, config=config,
                                   cp_limit=cp,
                                   tag=f"{trace.name}:cp={cp:g}"))
    outcomes = run_many(jobs, max_workers=BENCH_JOBS, cache=DISK_CACHE)
    _require(outcomes)
    for outcome in outcomes:
        _RUN_CACHE[outcome.key] = outcome.result


def save_report(name: str, text: str) -> None:
    """Print the regenerated table and archive it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def percent(value: float) -> str:
    return f"{value * 100:6.1f}%"
