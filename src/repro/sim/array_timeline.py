"""The batched array-timeline kernel behind the vectorized precise engine.

The scalar precise engine walks every 8-byte DMA-memory request through
four heap events (bus-free, request-at-chip, serve-done, and a stale
descent timer). On the paper's geometry — a 12-cycle bus period against a
4-cycle chip service — a released transfer quickly settles into the
Figure 2(a) steady state: serve 4 cycles, sit active-idle 8, repeat, with
exactly one request on the wire at all times. With several transfers
streaming to one chip from different buses the pattern is the merge of
one such arithmetic progression per bus. Inside these windows nothing is
*decided*; the event machinery only re-derives the progressions, one
heap operation at a time.

This module collapses those windows. When a serve completes and the chip
goes idle while transfers are still streaming to it, the kernel:

1. checks every streaming transfer is in the steady pipeline shape (one
   request on the wire, one just acknowledged, owning its bus, unstalled)
   and the chip is ACTIVE with nothing queued and no wake or descent in
   progress;
2. computes a safe horizon — the next event that can observe shared
   simulation state (trace arrival, DMA-TA epoch, PL migration interval,
   or a bus handoff that would start another stream to this chip);
3. materialises each stream's request schedule as a numpy event vector
   (`np.add.accumulate` over the bus period, so the timestamps are
   bit-identical to the scalar engine's iterative ``end = start + gap``
   bus bookkeeping) and merges them into one chip timeline;
4. keeps the longest prefix on which the merge is conflict-free — every
   serve completes strictly before the next arrival, the horizon, and
   every stream's first unbatched request — so each request is served
   the instant it arrives, exactly as the scalar engine would;
5. applies the per-request residency, energy, degradation, and histogram
   accounting in vectorized form, using sequential-semantics reductions
   (`np.add.accumulate` seeded with the running value) so every
   accumulator receives exactly the floating-point value the scalar
   engine's repeated ``+=`` would have produced;
6. rewrites the engine state (bus occupancy, per-transfer progress, chip
   clock, descent generation) to the state the scalar engine would hold,
   and re-arms the in-flight heap events.

Everything outside these windows — wake and descent transitions, DMA-TA
gather/release decisions, migrations, bus handoffs, transfer heads and
tails, windows where requests actually queue at the chip — stays on the
scalar event path, which is why the kernel is bit-exact by construction
rather than by tolerance. The scalar path remains available as the
oracle via ``engine="precise-scalar"`` (see ``docs/ENGINES.md``).

Only numpy APIs present since 1.20 are used (``np.add.accumulate``,
``np.maximum``, ``np.searchsorted``, ``np.argsort``); CI pins
``numpy==1.20.*`` on one matrix leg to keep it that way.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.energy.states import PowerState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.precise import PreciseEngine, _PChip

#: Below this many requests the batch bookkeeping costs more than the
#: scalar events it replaces.
MIN_BATCH = 8

#: Maximum streams merged per window; chips fed by more are left scalar.
_MAX_STREAMS = 4

#: Margin (cycles) for the cheap phase-compatibility precheck. Streams
#: share one bus period, so their relative phases are constant across a
#: window up to accumulate-chain ulp drift (sub-microcycle for any
#: batchable window); a millicycle margin dwarfs it.
_PHASE_MARGIN = 1e-3

#: Safety margin (cycles) subtracted from projected bus-handoff times.
#: The projection uses ``free_at + remaining * gap`` while the engine
#: accumulates iteratively; the float discrepancy is bounded by
#: ``remaining * ulp(t)`` — sub-microcycle at simulation scales — so a
#: millicycle margin is overwhelmingly conservative.
_HANDOFF_MARGIN = 1e-3


def _seq_add(seed: float, values: np.ndarray) -> float:
    """``seed + v0 + v1 + ...`` with scalar left-to-right semantics.

    ``np.add.accumulate`` is specified as the sequential partial-sum
    scan, so the result is bit-identical to a Python ``+=`` loop — the
    property the energy-conservation gate (``energy_delta == 0`` against
    the scalar oracle) rests on.
    """
    arr = np.empty(len(values) + 1)
    arr[0] = seed
    arr[1:] = values
    return float(np.add.accumulate(arr)[-1])


class ArrayTimelineKernel:
    """Steady-window batching for one :class:`PreciseEngine` run."""

    def __init__(self, engine: "PreciseEngine") -> None:
        self.engine = engine
        model = engine.config.memory.power_model
        self.gap = engine._bus_gap
        self.serve = engine._serve_cycles
        self.frequency = model.frequency_hz
        #: Scalar ``touch`` uses ``model.active_power`` while serving and
        #: ``model.power(state)`` while active-idle; keep both even though
        #: they are numerically equal, so the arithmetic provenance is
        #: explicit.
        self.p_serve = model.active_power
        self.p_idle = model.power(PowerState.ACTIVE)
        schedule = engine.chips[0].schedule if engine.chips else ()
        first_threshold = schedule[0][0] if schedule else math.inf
        #: Batching requires (a) a strictly positive idle stretch between
        #: back-to-back requests of one stream (otherwise the pipeline
        #: stalls and the cadence is different) and (b) a power policy
        #: whose first descent threshold cannot fire inside the longest
        #: possible idle stretch, ``gap - serve`` (otherwise the scalar
        #: engine would begin a downward transition mid-stream).
        self.enabled = (self.gap - self.serve > 1e-9
                        and first_threshold >= self.gap - self.serve)
        # Window statistics (surfaced as kernel.* counters).
        self.batches = 0
        self.batched_requests = 0

    # ------------------------------------------------------------------

    def _horizon(self, chip_id: int, own_buses: set) -> float:
        """Latest time the steady window is provably undisturbed.

        Trace arrivals, DMA-TA epochs, and PL migration intervals all
        observe shared state (slack credits, ``arrived_requests``, the
        page layout), so the window must close strictly before any of
        them. A transfer queued in another bus's FIFO and bound for this
        chip starts streaming when that bus's current transfer finishes
        transmitting; a conservative lower bound on that handoff closes
        the window too. (The window's own buses cannot hand off: every
        stream keeps at least one request untransmitted.)
        """
        engine = self.engine
        # Telemetry samples and state digests must observe scalar-
        # consistent state, so a pending sample time closes the window
        # like any other shared-state observer (math.inf — no cut at
        # all — when disabled).
        horizon = min(engine._next_arrival_time,
                      engine._next_epoch_time,
                      engine._next_interval_time,
                      engine._next_telemetry_time,
                      engine._next_digest_time)
        for other_bus, fifo in enumerate(engine._bus_fifo):
            if other_bus in own_buses or not fifo:
                continue
            if not any(queued.chip_id == chip_id for queued in fifo):
                continue
            current = engine._bus_current[other_bus]
            if current is None:
                return -math.inf  # inconsistent bus state: never batch
            remaining = current.total_requests - current.transmitted
            handoff = (engine._bus_free_at[other_bus]
                       + remaining * self.gap - _HANDOFF_MARGIN)
            horizon = min(horizon, handoff)
        return horizon

    # ------------------------------------------------------------------

    def try_batch(self, chip: "_PChip", now: float) -> bool:
        """Fast-forward the steady window of ``chip``'s streams starting
        after the serve that just completed at ``now``. Returns True if a
        batch was applied (the engine state then matches the scalar
        engine at the last batched serve completion)."""
        if not self.enabled:
            return False
        streams = chip.streams
        n_streams = len(streams)
        if not 0 < n_streams <= _MAX_STREAMS:
            return False
        # The chip must be this window's alone: ACTIVE, nothing queued,
        # no transition in flight. (Transfers parked in a bus FIFO are
        # dormant — counted in ``inflight_transfers`` but invisible
        # until their handoff, which the horizon accounts for.)
        if (chip.serving is not None or chip.has_queued
                or chip.waking_until is not None
                or chip.transition_until is not None
                or chip.state is not PowerState.ACTIVE):
            return False
        engine = self.engine
        # Every stream must be in the steady pipeline shape: one request
        # on the wire, one just acknowledged, owning its bus. The final
        # request's tail (bus handoff, transfer completion) stays
        # scalar, so at most total-1 requests are ever batched.
        for t in streams:
            if (t.outstanding != 1 or t.stalled
                    or t.transmitted != t.served + 1
                    or engine._bus_current[t.bus_id] is not t
                    or not engine._bus_free_at[t.bus_id] > now):
                return False

        own_buses = {t.bus_id for t in streams}
        if len(own_buses) != n_streams:
            return False  # two streams on one bus: not steady
        if n_streams > 1:
            # Cheap phase precheck before any array work: all streams
            # advance by the same period, so the merge is conflict-free
            # iff consecutive phases (cyclically) are more than a serve
            # apart. This is advisory — the exact per-pair check on the
            # merged timeline below is what guarantees correctness — but
            # it rejects hopeless windows in O(k log k).
            phases = sorted(math.fmod(engine._bus_free_at[t.bus_id],
                                      self.gap) for t in streams)
            spacing = min(b - a for a, b in zip(phases, phases[1:]))
            spacing = min(spacing, self.gap - (phases[-1] - phases[0]))
            if spacing < self.serve + _PHASE_MARGIN:
                return False
        if sum(t.total_requests - t.served - 1 for t in streams) < MIN_BATCH:
            return False
        horizon = self._horizon(chip.chip_id, own_buses)
        if not now < horizon:
            return False

        # One event vector per stream: chain[j] is the chip-arrival time
        # of its (j+1)-th upcoming request; the accumulate chain
        # reproduces the scalar bus bookkeeping ``end = start + gap``
        # bit-for-bit. The last element is the first arrival *not*
        # batchable for that stream (its tail, or past the horizon) and
        # acts as a window cut in the merge below.
        chains = []
        for t in streams:
            first = engine._bus_free_at[t.bus_id]
            limit = t.total_requests - t.served - 1
            if math.isfinite(horizon):
                by_horizon = int((horizon - self.serve - first)
                                 / self.gap) + 2
                if by_horizon < limit:
                    limit = max(0, by_horizon)
            chain = np.empty(limit + 1)
            chain[0] = first
            chain[1:] = self.gap
            np.add.accumulate(chain, out=chain)
            chains.append(chain)

        if n_streams == 1:
            merged = chains[0]
            stream_of = None
            order = None
        else:
            merged = np.concatenate(chains)
            stream_of = np.repeat(np.arange(n_streams),
                                  [len(c) for c in chains])
            order = np.argsort(merged, kind="stable")
            merged = merged[order]
            stream_of = stream_of[order]

        # Longest conflict-free prefix: every serve must complete
        # strictly before the next arrival (no queueing at the chip —
        # each batched request is served the instant it lands, exactly
        # the scalar cadence), strictly before the horizon, and strictly
        # before any stream's first unbatched request. Under-batching is
        # always safe; every cut below is conservative.
        serve_ends = merged + self.serve
        count = len(merged) - 1  # never batch past the last cut element
        if n_streams > 1:
            gap_ok = serve_ends[:-1] < merged[1:]
            if not gap_ok.all():
                count = min(count, int(np.argmin(gap_ok)))
            # Cut at each stream's final (unbatchable) chain element.
            for s in range(n_streams):
                positions = np.nonzero(stream_of == s)[0]
                count = min(count, int(positions[-1]))
        if math.isfinite(horizon):
            count = min(count,
                        int(np.searchsorted(serve_ends, horizon,
                                            side="left")))
        if count < MIN_BATCH:
            return False

        arrivals = merged[:count]
        ends = serve_ends[:count]
        if n_streams == 1:
            per_stream = [count]
            next_up = [(float(chains[0][count]), streams[0])]
        else:
            counts = np.bincount(stream_of[:count], minlength=n_streams)
            per_stream = counts.tolist()
            next_up = [(float(chains[s][per_stream[s]]), streams[s])
                       for s in range(n_streams) if per_stream[s]]
            next_up.sort(key=lambda pair: pair[0])
            # The re-armed wire events must keep the scalar heap order;
            # bail on exact timestamp collisions rather than guess.
            for (t_a, _), (t_b, _) in zip(next_up, next_up[1:]):
                if t_a == t_b:
                    return False

        starts = np.empty(count)
        starts[0] = chip._last
        starts[1:] = ends[:-1]

        # Residency and energy accounting, exactly as the scalar
        # ``touch`` pair per request: an active-idle span from the
        # previous serve end to this arrival, then a serve span.
        idle_cycles = arrivals - starts
        serve_cycles = ends - arrivals
        idle_joules = self.p_idle * (idle_cycles / self.frequency)
        serve_joules = self.p_serve * (serve_cycles / self.frequency)
        chip.time.idle_dma = _seq_add(chip.time.idle_dma, idle_cycles)
        chip.energy.idle_dma = _seq_add(chip.energy.idle_dma, idle_joules)
        chip.time.serving_dma = _seq_add(chip.time.serving_dma, serve_cycles)
        chip.energy.serving_dma = _seq_add(chip.energy.serving_dma,
                                           serve_joules)

        # Degradation accounting (scalar: ``extra = (now - arrival) -
        # cycles`` clamped at zero, accumulated sequentially) and the
        # per-request service histogram, including each transfer's
        # amortised head delay.
        extras = np.maximum(0.0, serve_cycles - self.serve)
        engine.extra_service_total = _seq_add(engine.extra_service_total,
                                              extras)
        heads = np.array([t.head_delay / t.total_requests for t in streams])
        if n_streams == 1:
            hist_values = np.maximum(self.serve, serve_cycles) + heads[0]
        else:
            hist_values = (np.maximum(self.serve, serve_cycles)
                           + heads[stream_of[:count]])
        engine._dma_service_hist.record_many(hist_values.tolist())

        if engine.tracer is not None:
            span = engine.tracer.span
            track = chip._track
            starts_l = starts.tolist()
            arrivals_l = arrivals.tolist()
            idle_c = idle_cycles.tolist()
            serve_c = serve_cycles.tolist()
            idle_j = idle_joules.tolist()
            serve_j = serve_joules.tolist()
            for i in range(count):
                span(starts_l[i], idle_c[i], "active-idle", track,
                     {"bucket": "idle_dma", "joules": idle_j[i]})
                span(arrivals_l[i], serve_c[i], "serve", track,
                     {"bucket": "serving_dma", "joules": serve_j[i]})
            for s, t in enumerate(streams):
                if per_stream[s]:
                    mine = (extras if n_streams == 1
                            else extras[stream_of[:count] == s])
                    t.extra_cycles = _seq_add(t.extra_cycles, mine)

        # Advance the discrete state to the post-window scalar state.
        from repro.sim.precise import _EV_BUS_FREE, _EV_REQUEST_AT_CHIP

        engine.arrived_requests += count
        for s, t in enumerate(streams):
            if not per_stream[s]:
                continue
            t.served += per_stream[s]
            t.transmitted += per_stream[s]
            t.skip_arrivals += 1       # the pre-batch wire event pair
            engine._bus_skip[t.bus_id] += 1  # is now stale; swallow it
        chip._last = float(ends[-1])
        chip.idle_since = chip._last
        chip.descent_index = 0
        # Scalar bookkeeping bumps the generation once per serve start
        # and once per descent (re-)arm; replicate so any descent timer
        # left in the heap is recognised as stale.
        chip.descent_generation += count * (2 if chip.schedule else 1)
        # Re-arm each stream's in-flight request at the post-window time
        # (same push order as ``_transmit``: request-at-chip, bus-free;
        # streams ordered by wire time as their transmits would have
        # been).
        for time_next, t in next_up:
            engine._bus_free_at[t.bus_id] = time_next
            engine.queue.push(time_next, _EV_REQUEST_AT_CHIP, t)
            engine.queue.push(time_next, _EV_BUS_FREE, t.bus_id)

        self.batches += 1
        self.batched_requests += count
        return True


__all__ = ["ArrayTimelineKernel", "MIN_BATCH"]
