"""Simulation results and their derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.accounting import EnergyBreakdown, TimeBreakdown
from repro.obs.metrics import MetricsReport


@dataclass
class SimulationResult:
    """Everything a simulation run measured.

    Attributes:
        trace_name: name of the input trace.
        technique: ``"nopm" | "baseline" | "dma-ta" | "pl" | "dma-ta-pl"``.
        engine: ``"fluid"`` or ``"precise"`` (``precise-scalar`` runs
            report ``"precise"`` — the model is identical; only the
            stepping strategy differs).
        duration_cycles: simulated horizon (trace duration or last
            completion, whichever is later).
        energy: aggregate energy breakdown over all chips.
        time: aggregate chip-time breakdown over all chips.
        transfers: DMA transfers processed.
        requests: DMA-memory requests those transfers decomposed into.
        proc_accesses: processor cache-line accesses processed.
        mu: the DMA-TA degradation parameter in force (0 for baseline).
        service_cycles: the undisturbed per-request service time ``T``.
        head_delay_cycles: total gather+wake delay imposed on transfer
            head requests.
        extra_service_cycles: total per-request service-time inflation
            from chip-side throttling.
        client_responses: measured response time per client request id.
        migrations: PL page moves executed.
        table_flushes: PL translation-table flush interrupts.
        wakes: chip low-power -> ACTIVE transitions.
        controller_stats: controller-specific counters.
        guarantee_violated: True if the measured average per-request
            degradation exceeded ``mu * T``.
    """

    trace_name: str
    technique: str
    engine: str
    duration_cycles: float
    energy: EnergyBreakdown
    time: TimeBreakdown
    transfers: int = 0
    requests: int = 0
    proc_accesses: int = 0
    mu: float = 0.0
    service_cycles: float = 0.0
    head_delay_cycles: float = 0.0
    extra_service_cycles: float = 0.0
    client_responses: dict[int, float] = field(default_factory=dict)
    migrations: int = 0
    table_flushes: int = 0
    wakes: int = 0
    controller_stats: dict[str, float] = field(default_factory=dict)
    guarantee_violated: bool = False
    #: ``chip_id -> [(start, end, serving_fraction), ...]`` busy intervals,
    #: populated when the run was started with ``record_timeline=True``.
    timeline: dict[int, list[tuple[float, float, float]]] | None = None
    #: Per-chip total energy (joules), index = chip id.
    chip_energy: list[float] = field(default_factory=list)
    #: The run's metrics snapshot (counters, histograms, per-chip state
    #: residency, transition counts); see :mod:`repro.obs.metrics`.
    metrics: MetricsReport | None = None
    #: Folded cProfile hot paths of the engine run (dicts with ``func``/
    #: ``ncalls``/``tot_s``/``cum_s``), populated only when the run was
    #: profiled (``REPRO_PROFILE=1`` or ``simulate(..., profile=True)``);
    #: see :mod:`repro.obs.perf`. Results served from the on-disk cache
    #: keep whatever the *original* computation recorded.
    profile: list[dict] | None = None
    #: The run's :class:`~repro.obs.diff.DigestTrail` (per-epoch rolling
    #: state-digest chain), populated only when the run was started with
    #: ``simulate(..., digests=DigestRecorder(...))``; see
    #: :mod:`repro.obs.diff`.
    digests: object | None = None

    def hottest_chips(self, count: int = 3) -> list[tuple[int, float]]:
        """The ``count`` chips consuming the most energy, descending.

        With PL enabled, these are the designated hot chips — a direct
        check that the layout actually concentrated the traffic.
        """
        ranked = sorted(enumerate(self.chip_energy), key=lambda kv: -kv[1])
        return ranked[:count]

    def energy_concentration(self, top_fraction: float = 0.1) -> float:
        """Energy share of the hottest ``top_fraction`` of chips."""
        if not self.chip_energy:
            return 0.0
        total = sum(self.chip_energy)
        if total <= 0:
            return 0.0
        count = max(1, round(top_fraction * len(self.chip_energy)))
        hottest = sorted(self.chip_energy, reverse=True)[:count]
        return sum(hottest) / total

    # --- derived metrics -----------------------------------------------

    @property
    def energy_joules(self) -> float:
        """Total memory energy of the run."""
        return self.energy.total

    @property
    def utilization_factor(self) -> float:
        """The paper's ``uf`` (Section 5.3)."""
        return self.time.utilization_factor()

    @property
    def avg_extra_service_cycles(self) -> float:
        """Mean extra service time per DMA-memory request."""
        if self.requests <= 0:
            return 0.0
        return (self.head_delay_cycles + self.extra_service_cycles) / self.requests

    @property
    def avg_service_degradation(self) -> float:
        """Measured per-request degradation (compare against ``mu``)."""
        if self.service_cycles <= 0:
            return 0.0
        return self.avg_extra_service_cycles / self.service_cycles

    @property
    def mean_client_response_cycles(self) -> float:
        """Mean measured client-perceived response time."""
        if not self.client_responses:
            return 0.0
        return sum(self.client_responses.values()) / len(self.client_responses)

    def energy_savings_vs(self, baseline: "SimulationResult") -> float:
        """Fractional energy saved relative to ``baseline`` (Figure 5)."""
        if baseline.energy_joules <= 0:
            return 0.0
        return 1.0 - self.energy_joules / baseline.energy_joules

    def client_degradation_vs(self, baseline: "SimulationResult") -> float:
        """Measured client-perceived response-time degradation.

        Compares mean responses over the client requests both runs
        completed; this is the quantity CP-Limit bounds.
        """
        shared = self.client_responses.keys() & baseline.client_responses.keys()
        if not shared:
            return 0.0
        mine = sum(self.client_responses[i] for i in shared) / len(shared)
        theirs = sum(baseline.client_responses[i] for i in shared) / len(shared)
        if theirs <= 0:
            return 0.0
        return mine / theirs - 1.0

    def summary(self) -> str:
        """A human-readable multi-line summary of the run."""
        fractions = self.energy.fractions()
        lines = [
            f"trace={self.trace_name} technique={self.technique} "
            f"engine={self.engine}",
            f"  duration: {self.duration_cycles:.0f} cycles, "
            f"transfers: {self.transfers}, requests: {self.requests}, "
            f"proc accesses: {self.proc_accesses}",
            f"  energy: {self.energy_joules * 1e3:.3f} mJ "
            f"(uf={self.utilization_factor:.3f}, wakes={self.wakes})",
        ]
        for bucket in ("serving_dma", "serving_proc", "idle_dma",
                       "idle_threshold", "transition", "low_power",
                       "migration"):
            share = fractions.get(bucket, 0.0)
            lines.append(f"    {bucket:<15} {share * 100:5.1f}%")
        if self.mu > 0:
            lines.append(
                f"  guarantee: mu={self.mu:.3g}, measured "
                f"degradation={self.avg_service_degradation:.3g} "
                f"({'VIOLATED' if self.guarantee_violated else 'ok'})")
        if self.migrations:
            lines.append(
                f"  migrations: {self.migrations} "
                f"(table flushes: {self.table_flushes})")
        return "\n".join(lines)
