"""Event-queue plumbing shared by both simulation engines."""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Any

from repro.errors import SimulationError


class EventKind(enum.IntEnum):
    """Event taxonomy. Lower values win ties at equal timestamps.

    COMPLETE precedes ARRIVAL at the same instant so that a chip freed by
    a finishing transfer is seen idle by a simultaneous arrival — matching
    the hardware, where the controller observes completion first.
    """

    COMPLETE = 0
    STREAM_START = 1
    ARRIVAL = 2
    PROC_DONE = 3
    EPOCH = 4
    INTERVAL = 5
    # TELEMETRY pops last at equal timestamps so a sample observes the
    # post-everything state of its instant; the handler is read-only.
    TELEMETRY = 6
    # DIGEST follows the same read-only discipline: it pops after
    # TELEMETRY so digest chains fold the fully settled epoch state.
    DIGEST = 7


class EventQueue:
    """A deterministic time-ordered event queue (heapq based).

    Ties are broken by :class:`EventKind`, then by insertion order, so a
    run is fully reproducible.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Timestamp of the last popped event."""
        return self._now

    def push(self, time: float, kind: Any, payload: Any = None) -> None:
        """Schedule an event. ``kind`` must be int-comparable (enum or int)."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"event scheduled in the past ({time} < {self._now})")
        heapq.heappush(self._heap, (time, kind, next(self._seq), payload))

    def pop(self) -> tuple[float, Any, Any]:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, kind, _, payload = heapq.heappop(self._heap)
        self._now = max(self._now, time)
        return time, kind, payload

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
