"""Simulation engines and results.

Two engines implement the same semantics at different granularities:
:class:`~repro.sim.fluid.FluidEngine` advances analytically between
change-points (fast; the default), while
:class:`~repro.sim.precise.PreciseEngine` simulates every DMA-memory
request as an event (slow; the cross-validation reference).

:func:`simulate` is the public entry point.
"""

from repro.sim.results import SimulationResult
from repro.sim.run import simulate, TECHNIQUES
from repro.sim.fluid import FluidEngine
from repro.sim.precise import PreciseEngine

__all__ = [
    "SimulationResult",
    "simulate",
    "TECHNIQUES",
    "FluidEngine",
    "PreciseEngine",
]
