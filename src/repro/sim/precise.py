"""The precise (per-DMA-memory-request) reference engine.

Every 8-byte DMA-memory request is an explicit event: the bus transmits it
(one request per bus period, FIFO/round-robin among the bus's in-flight
transfers), the chip queues and serves it (4 cycles at Table 1 defaults,
processor accesses first), and the dynamic policy walks the chip down
through its power states with real timers. This reproduces Figure 2(a)
literally — serve 4 cycles, sit active-idle 8 — and is the ground truth
the fluid engine is validated against.

It is two to three orders of magnitude slower than the fluid engine, so
use it for small traces, tests, and spot checks.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque

from repro.config import SimulationConfig
from repro.core.controller import BaselineController, MemoryController
from repro.core.layout import PopularityGrouper
from repro.core.migration import MigrationPlanner
from repro.core.popularity import PopularityTracker
from repro.energy.accounting import EnergyBreakdown, TimeBreakdown
from repro.energy.policies import AlwaysOnPolicy
from repro.energy.states import PowerState
from repro.errors import ConfigurationError, GuaranteeViolationError
from repro.io.devices import BusAssigner
from repro.memory.address import MutableLayout, PageLayout, RandomLayout
from repro.obs.events import TRACK_SIM, bus_track, chip_track
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import active_tracer
from repro.sim.engine import EventQueue
from repro.sim.results import SimulationResult
from repro.traces.records import DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

TECHNIQUES = ("nopm", "baseline", "dma-ta", "pl", "dma-ta-pl")

# Event kinds (kept local: the precise engine has its own taxonomy).
_EV_ARRIVAL = 0
_EV_BUS_FREE = 1
_EV_REQUEST_AT_CHIP = 2
_EV_SERVE_DONE = 3
_EV_CHIP_READY = 4
_EV_DESCENT = 5
_EV_EPOCH = 6
_EV_INTERVAL = 7
# Highest kinds: a telemetry sample / state digest pops last at equal
# timestamps, so it observes the post-everything state of its instant.
# Handled inline in the run loop (read-only, never in _HANDLERS, never
# extends the run). DIGEST pops after TELEMETRY.
_EV_TELEMETRY = 8
_EV_DIGEST = 9

# Request priority classes (lower value served first).
_PRIO_PROC = 0
_PRIO_DMA = 1
_PRIO_MIGRATION = 2


@dataclass
class _PTransfer:
    """Runtime state of one DMA transfer in the precise engine."""

    record: DMATransfer
    chip_id: int
    bus_id: int
    total_requests: int
    arrival_time: float
    release_time: float = 0.0
    transmitted: int = 0
    served: int = 0
    #: Requests delivered to the chip but not yet served. The DMA engine
    #: keeps at most two in flight (one in service, one on the wire) —
    #: the pipelining behind Figure 2(a)'s fixed 12-cycle request cadence
    #: — and stalls when the chip falls behind (e.g. while waking).
    outstanding: int = 0
    stalled: bool = False
    #: Engine-assigned per-run transfer ordinal (deterministic, unlike
    #: ``id(self)``); keys the audit layer's per-transfer waterfall.
    seq: int = 0
    #: Wake latency paid by this transfer's release (audit waterfall).
    wake_wait: float = 0.0
    #: Per-request service inflation accumulated for this transfer;
    #: only maintained while a tracer is attached.
    extra_cycles: float = 0.0
    #: Stale ``REQUEST_AT_CHIP`` events to swallow. When the array-
    #: timeline kernel fast-forwards a steady window it re-arms the
    #: in-flight request at the post-window time; the pre-window event
    #: pair is still in the heap and must be ignored once.
    skip_arrivals: int = 0

    @property
    def done(self) -> bool:
        return self.served >= self.total_requests

    @property
    def head_delay(self) -> float:
        return max(0.0, self.release_time - self.arrival_time)

    # Duck-typing for the shared controllers.
    @property
    def is_dma(self) -> bool:
        return True

    @property
    def num_requests(self) -> int:
        return self.total_requests

    @property
    def stream_id(self) -> int:
        return id(self)


@dataclass
class _Request:
    """One queued unit of chip work."""

    priority: int
    arrival: float
    cycles: float
    transfer: _PTransfer | None = None


class _PChip:
    """Per-request chip model with explicit power-state timers."""

    def __init__(self, chip_id: int, model, policy) -> None:
        self.chip_id = chip_id
        self.model = model
        self.schedule = policy.schedule(model)
        self.energy = EnergyBreakdown()
        self.time = TimeBreakdown()
        self.wake_count = 0
        #: Optional event tracer (set by the engine when tracing is live).
        self.tracer = None
        #: ``"from->to"`` power-state transition counts.
        self.transition_counts: dict[str, int] = {}
        self._track = chip_track(chip_id)

        self.queue: list[Deque[_Request]] = [deque(), deque(), deque()]
        self.serving: _Request | None = None
        self.inflight_transfers = 0
        #: Transfers actively streaming to this chip (first request on
        #: the wire through last request served), in stream-start order.
        #: ``inflight_transfers`` also counts transfers parked in a bus
        #: FIFO; the array-timeline kernel needs the distinction.
        self.streams: list = []

        # Power state machinery.
        if self.schedule:
            self.state = self.schedule[-1][1]
        else:
            self.state = PowerState.ACTIVE
        self.descent_generation = 0
        self.descent_index = len(self.schedule)  # fully descended at start
        self.idle_since = 0.0
        self.waking_until: float | None = None
        self.transition_until: float | None = None
        self.transition_target: PowerState | None = None

        # Accrual bookkeeping.
        self._last = 0.0

    # --- accrual ---------------------------------------------------------

    def touch(self, now: float) -> None:
        """Accrue energy/time since the last checkpoint at the current mode."""
        if now <= self._last:
            return
        start = self._last
        delta = now - self._last
        self._last = now
        seconds = delta / self.model.frequency_hz

        if self.serving is not None:
            power = self.model.active_power
            joules = power * seconds
            if self.serving.priority == _PRIO_PROC:
                bucket = "serving_proc"
                self.time.serving_proc += delta
                self.energy.serving_proc += joules
            elif self.serving.priority == _PRIO_DMA:
                bucket = "serving_dma"
                self.time.serving_dma += delta
                self.energy.serving_dma += joules
            else:
                bucket = "migration"
                self.time.migration += delta
                self.energy.migration += joules
            if self.tracer is not None:
                self.tracer.span(start, delta, "serve", self._track,
                                 {"bucket": bucket, "joules": joules})
            return

        if self.waking_until is not None or self.transition_until is not None:
            # In transit between states; power set when transit began.
            self.time.transition += delta
            self.energy.transition += self._transit_power * seconds
            if self.tracer is not None:
                self.tracer.span(start, delta, "transition", self._track,
                                 {"bucket": "transition",
                                  "joules": self._transit_power * seconds})
            return

        power = self.model.power(self.state)
        joules = power * seconds
        if self.state is PowerState.ACTIVE:
            if self.inflight_transfers > 0:
                bucket = "idle_dma"
                self.time.idle_dma += delta
                self.energy.idle_dma += joules
            else:
                bucket = "idle_threshold"
                self.time.idle_threshold += delta
                self.energy.idle_threshold += joules
            name = "active-idle"
        else:
            bucket = "low_power"
            name = self.state.value
            self.time.low_power += delta
            self.energy.low_power += joules
        if self.tracer is not None:
            self.tracer.span(start, delta, name, self._track,
                             {"bucket": bucket, "joules": joules})

    _transit_power = 0.0

    def observe(self, now: float) -> tuple[dict[str, float], float]:
        """Residency-to-date buckets and instantaneous power at ``now``.

        Strictly read-only: the pending ``now - _last`` span is
        classified exactly as :meth:`touch` will classify it, but
        nothing is accrued — splitting an accrual at an observation
        point would change float rounding, and telemetry-enabled runs
        must stay bit-identical in energy. Used by the live-telemetry
        sampler only.
        """
        buckets = self.time.as_dict()
        buckets.pop("total", None)
        in_transit = (self.waking_until is not None
                      or self.transition_until is not None)
        if self.serving is not None:
            power = self.model.active_power
        elif in_transit:
            power = self._transit_power
        else:
            power = self.model.power(self.state)
        delta = now - self._last
        if delta <= 0:
            return buckets, power
        if self.serving is not None:
            if self.serving.priority == _PRIO_PROC:
                buckets["serving_proc"] += delta
            elif self.serving.priority == _PRIO_DMA:
                buckets["serving_dma"] += delta
            else:
                buckets["migration"] += delta
        elif in_transit:
            buckets["transition"] += delta
        elif self.state is PowerState.ACTIVE:
            if self.inflight_transfers > 0:
                buckets["idle_dma"] += delta
            else:
                buckets["idle_threshold"] += delta
        else:
            buckets["low_power"] += delta
        return buckets, power

    def _count_transition(self, source: PowerState,
                          target: PowerState) -> None:
        edge = f"{source.value}->{target.value}"
        self.transition_counts[edge] = self.transition_counts.get(edge, 0) + 1

    # --- power state ------------------------------------------------------

    def is_low_power(self, now: float) -> bool:
        if self.waking_until is not None:
            return False  # already on the way up
        return self.state is not PowerState.ACTIVE or self.transition_until is not None

    def begin_wake(self, now: float) -> float:
        """Start (or join) a wake-up; returns the ready time."""
        if self.waking_until is not None:
            return self.waking_until
        if self.state is PowerState.ACTIVE and self.transition_until is None:
            return now
        self.touch(now)
        self.descent_generation += 1
        ready = now
        if self.transition_until is not None and self.transition_target is not None:
            # Finish the downward transition first.
            ready = self.transition_until
            pending_state = self.transition_target
            self._count_transition(self.state, pending_state)
        else:
            pending_state = self.state
        up = self.model.upward[pending_state]
        self._transit_power = up.power_watts
        ready += up.time_cycles
        self.waking_until = ready
        self.wake_count += 1
        # The remaining downward leg is subsumed into the transit window;
        # charge it at the downward power by splitting the accrual.
        if self.transition_until is not None and self.transition_until > now:
            down = self.model.downward[self.transition_target]
            leg = self.transition_until - now
            leg_joules = down.power_watts * leg / self.model.frequency_hz
            self.time.transition += leg
            self.energy.transition += leg_joules
            if self.tracer is not None:
                self.tracer.span(now, leg, "transition", self._track,
                                 {"bucket": "transition",
                                  "joules": leg_joules})
            self._last = self.transition_until
        self.transition_until = None
        self.transition_target = None
        self.state = pending_state
        return ready

    def finish_wake(self, now: float) -> None:
        self.touch(now)
        self.waking_until = None
        self._count_transition(self.state, PowerState.ACTIVE)
        self.state = PowerState.ACTIVE
        self.descent_index = 0
        self.idle_since = now

    def begin_descent_step(self, now: float) -> tuple[float, PowerState] | None:
        """Start the next downward transition; returns (end, target)."""
        if self.descent_index >= len(self.schedule):
            return None
        _, target = self.schedule[self.descent_index]
        self.touch(now)
        down = self.model.downward[target]
        self._transit_power = down.power_watts
        self.transition_until = now + down.time_cycles
        self.transition_target = target
        return self.transition_until, target

    def finish_descent_step(self, now: float) -> None:
        self.touch(now)
        assert self.transition_target is not None
        self._count_transition(self.state, self.transition_target)
        self.state = self.transition_target
        self.transition_until = None
        self.transition_target = None
        self.descent_index += 1

    def next_descent_due(self) -> float | None:
        """Idle offset at which the next descent step begins."""
        if self.descent_index >= len(self.schedule):
            return None
        threshold, _ = self.schedule[self.descent_index]
        return self.idle_since + threshold

    # --- queueing ----------------------------------------------------------

    def enqueue(self, request: _Request) -> None:
        self.queue[request.priority].append(request)

    def pop_request(self) -> _Request | None:
        for bucket in self.queue:
            if bucket:
                return bucket.popleft()
        return None

    @property
    def has_queued(self) -> bool:
        return any(self.queue)


class PreciseEngine:
    """Per-request event-driven simulation (the validation reference)."""

    def __init__(self, trace: Trace, config: SimulationConfig,
                 technique: str = "baseline", seed: int = 0,
                 tracer=None, vectorize: bool = True,
                 telemetry=None, digests=None) -> None:
        if technique not in TECHNIQUES:
            raise ConfigurationError(
                f"unknown technique {technique!r}; expected one of {TECHNIQUES}")
        self.trace = trace
        self.config = config
        self.technique = technique
        self.tracer = active_tracer(tracer)
        self.registry = MetricsRegistry()

        from repro.sim.fluid import build_base_layout

        policy = AlwaysOnPolicy() if technique == "nopm" else config.policy
        memory = config.memory
        base_layout = build_base_layout(config, seed)
        self._pl_enabled = technique in ("pl", "dma-ta-pl")
        self.layout = MutableLayout(base_layout) if self._pl_enabled else base_layout
        self.chips = [
            _PChip(i, memory.power_model, policy)
            for i in range(memory.num_chips)
        ]
        if self.tracer is not None:
            for chip in self.chips:
                chip.tracer = self.tracer
        self.assigner = BusAssigner(config.buses.count)

        if technique in ("dma-ta", "dma-ta-pl"):
            self.controller: MemoryController = TemporalAlignmentControllerShim(
                config, self._arrived_requests,
                tracer=self.tracer, registry=self.registry)
        else:
            self.controller = BaselineController()

        if self._pl_enabled:
            self._tracker = PopularityTracker(
                counter_bits=config.layout.counter_bits,
                aging_shift=config.layout.aging_shift)
            self._grouper = PopularityGrouper(
                memory.num_chips, memory.pages_per_chip, config.layout)
            self._planner = MigrationPlanner(
                config.layout, tracer=self.tracer, registry=self.registry)
            self._previous_hot: set[int] = set()
            self._previous_candidates: set[int] | None = None
        else:
            self._tracker = None
            self._previous_hot = set()
            self._previous_candidates = None

        # Bus state: one transfer owns a bus at a time (FIFO), matching
        # the fluid engine's default sharing discipline.
        self._bus_fifo: list[Deque[_PTransfer]] = [
            deque() for _ in range(config.buses.count)]
        self._bus_current: list[_PTransfer | None] = [None] * config.buses.count
        self._bus_free_at = [0.0] * config.buses.count
        #: Stale ``BUS_FREE`` events to swallow per bus (see
        #: :attr:`_PTransfer.skip_arrivals`).
        self._bus_skip = [0] * config.buses.count
        bus_bytes_per_cycle = (config.buses.bandwidth_bytes_per_s
                               / config.frequency_hz)
        self._bus_gap = memory.request_bytes / bus_bytes_per_cycle
        self._serve_cycles = config.serve_cycles
        self._proc_serve_cycles = config.proc_serve_cycles
        self._page_copy_cycles = (
            memory.page_bytes / memory.power_model.bytes_per_cycle)
        self._total_pages = memory.total_pages

        self.queue = EventQueue()
        self._records_done = not trace.records
        self._open_transfers = 0

        # Next times at which shared state can be observed (trace
        # arrival, DMA-TA epoch, PL interval); the array-timeline
        # kernel's batching horizon. Maintained wherever the
        # corresponding events are (re-)scheduled.
        self._next_arrival_time = (trace.records[0].time if trace.records
                                   else math.inf)
        self._next_epoch_time = math.inf
        self._next_interval_time = math.inf
        self._next_telemetry_time = math.inf
        self._next_digest_time = math.inf
        if vectorize:
            from repro.sim.array_timeline import ArrayTimelineKernel

            self._kernel: ArrayTimelineKernel | None = ArrayTimelineKernel(self)
        else:
            self._kernel = None

        # Statistics.
        self.transfers = 0
        self.requests = 0
        self.arrived_requests = 0
        self.proc_accesses = 0
        self.head_delay_total = 0.0
        self.extra_service_total = 0.0
        self.migrations = 0
        self.table_flushes = 0
        self._last_completion: dict[int, float] = {}
        self._dma_service_hist = self.registry.histogram(
            "dma.service_per_request")

        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.bind(self)
        self.digests = digests
        if digests is not None:
            digests.bind(self)

    def _arrived_requests(self) -> float:
        return float(self.arrived_requests)

    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        if self.tracer is not None:
            self.tracer.instant(0.0, "sim.config", TRACK_SIM, {
                "engine": "precise",
                "technique": self.technique,
                "mu": (self.config.alignment.mu
                       if self.technique in ("dma-ta", "dma-ta-pl")
                       else 0.0),
                "service_cycles": self.config.undisturbed_service_cycles,
                "epoch_cycles": self.config.alignment.epoch_cycles,
                "frequency_hz": self.config.memory.power_model.frequency_hz,
                "chips": self.config.memory.num_chips,
                "buses": self.config.buses.count,
            })
        if self.trace.records:
            self.queue.push(self.trace.records[0].time, _EV_ARRIVAL, 0)
        epoch = self.controller.epoch_cycles()
        if epoch:
            self.queue.push(epoch, _EV_EPOCH, None)
            self._next_epoch_time = epoch
        if self._pl_enabled:
            self.queue.push(self.config.layout.interval_cycles,
                            _EV_INTERVAL, None)
            self._next_interval_time = self.config.layout.interval_cycles
        if self.telemetry is not None:
            self._next_telemetry_time = self.telemetry.sample_cycles
            self.queue.push(self._next_telemetry_time, _EV_TELEMETRY, None)
        if self.digests is not None:
            self._next_digest_time = self.digests.sample_cycles
            self.queue.push(self._next_digest_time, _EV_DIGEST, None)

        # ``progress`` tracks the last state-changing event only:
        # a trailing telemetry sample must not stretch the simulated
        # horizon (that would accrue extra idle energy and break the
        # bit-identical-to-untelemetered guarantee). With telemetry
        # disabled this equals queue.now exactly (heap pops in order).
        progress = 0.0
        while self.queue:
            now, kind, payload = self.queue.pop()
            if kind == _EV_TELEMETRY:
                self._on_telemetry(now)
                continue
            if kind == _EV_DIGEST:
                self._on_digest(now)
                continue
            progress = now
            handler = self._HANDLERS[int(kind)]
            handler(self, payload, now)
            self._maybe_drain(now)

        end = max(progress, self.trace.duration_cycles)
        for chip in self.chips:
            chip.touch(end)
        if self.telemetry is not None:
            self.telemetry.sample(end, final=True)
        if self.digests is not None:
            self.digests.sample(end, final=True)
        return self._build_result(end)

    def _on_telemetry(self, now: float) -> None:
        self.telemetry.sample(now)
        if self._work_remaining():
            self._next_telemetry_time = now + self.telemetry.sample_cycles
            self.queue.push(self._next_telemetry_time, _EV_TELEMETRY, None)
        else:
            self._next_telemetry_time = math.inf

    def _on_digest(self, now: float) -> None:
        self.digests.sample(now)
        if self._work_remaining():
            self._next_digest_time = now + self.digests.sample_cycles
            self.queue.push(self._next_digest_time, _EV_DIGEST, None)
        else:
            self._next_digest_time = math.inf

    def _work_remaining(self) -> bool:
        return (not self._records_done or self._open_transfers > 0
                or self.controller.pending_count() > 0
                or any(c.has_queued or c.serving for c in self.chips))

    def _maybe_drain(self, now: float) -> None:
        if (self._records_done and self._open_transfers == 0
                and self.controller.pending_count() > 0
                and not any(c.has_queued or c.serving for c in self.chips)):
            for chip_id, transfers in self.controller.drain(now).items():
                self._do_release(chip_id, transfers, now, notify=True)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_arrival(self, index: int, now: float) -> None:
        record = self.trace.records[index]
        if index + 1 < len(self.trace.records):
            self._next_arrival_time = self.trace.records[index + 1].time
            self.queue.push(self._next_arrival_time, _EV_ARRIVAL, index + 1)
        else:
            self._next_arrival_time = math.inf
            self._records_done = True
        if isinstance(record, DMATransfer):
            self._on_transfer(record, now)
        elif isinstance(record, ProcessorBurst):
            self._on_proc(record, now)

    def _on_transfer(self, record: DMATransfer, now: float) -> None:
        page = record.page % self._total_pages
        chip_id = self.layout.chip_of(page)
        chip = self.chips[chip_id]
        bus_id = self.assigner.assign(record)
        n_req = record.num_requests(self.config.memory.request_bytes)
        self.transfers += 1
        self.requests += n_req
        transfer = _PTransfer(record=record, chip_id=chip_id, bus_id=bus_id,
                              total_requests=n_req, arrival_time=now,
                              seq=self.transfers)
        if self.tracer is not None:
            self.tracer.instant(now, "dma.arrive", TRACK_SIM,
                                {"id": transfer.seq, "chip": chip_id,
                                 "bus": bus_id, "requests": n_req})
        if self._tracker is not None:
            self._tracker.record(page, 1)  # one reference per transfer

        released = self.controller.admit(transfer, chip, now)
        if released:
            self._do_release(chip_id, released, now, notify=True)

    def _on_proc(self, record: ProcessorBurst, now: float) -> None:
        page = record.page % self._total_pages
        chip_id = self.layout.chip_of(page)
        chip = self.chips[chip_id]
        self.proc_accesses += record.count
        work = record.count * self._proc_serve_cycles
        dma_here = chip.inflight_transfers
        self.controller.on_proc_access(chip_id, work, dma_here, now)
        for _ in range(record.count):
            chip.enqueue(_Request(priority=_PRIO_PROC, arrival=now,
                                  cycles=self._proc_serve_cycles))
        # Buffered DMA heads stay buffered across the burst (the slack
        # account is charged for the coexistence, Section 4.1.3).
        self._kick_chip(chip, now)

    def _do_release(self, chip_id: int, transfers, now: float,
                    notify: bool) -> None:
        chip = self.chips[chip_id]
        latency = 0.0
        if chip.is_low_power(now):
            ready = chip.begin_wake(now)
            latency = ready - now
            self.queue.push(ready, _EV_CHIP_READY, chip_id)
        if notify and latency > 0:
            self.controller.on_wake(chip_id, latency, now, len(transfers))
        for transfer in transfers:
            transfer.release_time = now
            transfer.wake_wait = latency
            self.head_delay_total += transfer.head_delay
            self._open_transfers += 1
            chip.touch(now)
            chip.inflight_transfers += 1
            self._enqueue_on_bus(transfer, now)

    # --- bus -----------------------------------------------------------

    def _enqueue_on_bus(self, transfer: _PTransfer, now: float) -> None:
        bus_id = transfer.bus_id
        if self._bus_current[bus_id] is None:
            self._bus_current[bus_id] = transfer
            self._transmit(transfer, now)
        else:
            self._bus_fifo[bus_id].append(transfer)
            if self.tracer is not None:
                self.tracer.counter(now, "queue_depth", bus_track(bus_id),
                                    float(len(self._bus_fifo[bus_id])))

    def _transmit(self, transfer: _PTransfer, now: float) -> None:
        """Put one DMA-memory request of ``transfer`` on its bus."""
        bus_id = transfer.bus_id
        if transfer.transmitted == 0:
            self.chips[transfer.chip_id].streams.append(transfer)
        start = max(now, self._bus_free_at[bus_id])
        end = start + self._bus_gap
        self._bus_free_at[bus_id] = end
        transfer.transmitted += 1
        transfer.outstanding += 1
        if self.tracer is not None and transfer.transmitted == 1:
            # The transfer's first request hits the wire: the waterfall's
            # wake and bus-queueing stages are now known.
            self.tracer.instant(now, "dma.start", TRACK_SIM,
                                {"id": transfer.seq,
                                 "chip": transfer.chip_id,
                                 "wake": transfer.wake_wait,
                                 "bus_wait": max(0.0, start
                                                 - transfer.release_time)})
        self.queue.push(end, _EV_REQUEST_AT_CHIP, transfer)
        self.queue.push(end, _EV_BUS_FREE, bus_id)

    def _on_bus_free(self, bus_id: int, now: float) -> None:
        """The wire is free: keep the current transfer streaming, or hand
        the bus to the next queued transfer once this one has transmitted
        everything."""
        if self._bus_skip[bus_id]:
            self._bus_skip[bus_id] -= 1
            return
        transfer = self._bus_current[bus_id]
        if transfer is not None:
            if transfer.transmitted < transfer.total_requests:
                if transfer.outstanding >= 2:
                    transfer.stalled = True  # chip is behind; wait for acks
                else:
                    self._transmit(transfer, now)
                return
            self._bus_current[bus_id] = None
        fifo = self._bus_fifo[bus_id]
        if fifo:
            nxt = fifo.popleft()
            if self.tracer is not None:
                self.tracer.counter(now, "queue_depth", bus_track(bus_id),
                                    float(len(fifo)))
            self._bus_current[bus_id] = nxt
            self._transmit(nxt, now)

    def _on_request_ack(self, transfer: _PTransfer, now: float) -> None:
        """The chip served one of the transfer's requests (the ack that
        releases the DMA engine's next transmission when stalled)."""
        transfer.outstanding -= 1
        if (transfer.stalled
                and transfer.transmitted < transfer.total_requests):
            transfer.stalled = False
            self._transmit(transfer, now)
        elif (self._bus_current[transfer.bus_id] is transfer
                and transfer.transmitted >= transfer.total_requests):
            # Last requests acked; pass the bus on if the wire is idle.
            if self._bus_free_at[transfer.bus_id] <= now + 1e-12:
                self._on_bus_free(transfer.bus_id, now)

    # --- chip -----------------------------------------------------------

    def _on_request_at_chip(self, transfer: _PTransfer, now: float) -> None:
        if transfer.skip_arrivals:
            transfer.skip_arrivals -= 1
            return
        chip = self.chips[transfer.chip_id]
        self.arrived_requests += 1
        # A request landing during a wake window starts its service clock
        # when the chip is ready: the wake latency belongs to the power
        # policy (paid in the baseline too), not to the DMA-TA guarantee.
        arrival = now
        if chip.waking_until is not None:
            arrival = max(arrival, chip.waking_until)
        chip.enqueue(_Request(priority=_PRIO_DMA, arrival=arrival,
                              cycles=self._serve_cycles, transfer=transfer))
        self._kick_chip(chip, now)

    def _kick_chip(self, chip: _PChip, now: float) -> None:
        """Start serving if the chip is free, active, and has work."""
        if chip.serving is not None or not chip.has_queued:
            return
        if chip.waking_until is not None:
            return  # CHIP_READY will kick again
        if chip.is_low_power(now):
            ready = chip.begin_wake(now)
            self.queue.push(ready, _EV_CHIP_READY, chip.chip_id)
            return
        chip.touch(now)
        request = chip.pop_request()
        assert request is not None
        chip.serving = request
        chip.descent_generation += 1  # cancel any pending descent timer
        self.queue.push(now + request.cycles, _EV_SERVE_DONE, chip.chip_id)

    def _on_chip_ready(self, chip_id: int, now: float) -> None:
        chip = self.chips[chip_id]
        if chip.waking_until is None or chip.waking_until > now + 1e-9:
            return  # stale (a later wake superseded this one)
        chip.finish_wake(now)
        self._kick_chip(chip, now)
        if chip.serving is None:
            self._arm_descent(chip, now)

    def _on_serve_done(self, chip_id: int, now: float) -> None:
        chip = self.chips[chip_id]
        request = chip.serving
        assert request is not None
        chip.touch(now)
        chip.serving = None

        if request.priority == _PRIO_DMA and request.transfer is not None:
            transfer = request.transfer
            transfer.served += 1
            extra = (now - request.arrival) - request.cycles
            self.extra_service_total += max(0.0, extra)
            if self.tracer is not None:
                transfer.extra_cycles += max(0.0, extra)
            self._dma_service_hist.record(
                max(request.cycles, now - request.arrival)
                + transfer.head_delay / transfer.total_requests)
            self._on_request_ack(transfer, now)
            if transfer.done:
                chip.inflight_transfers -= 1
                chip.streams.remove(transfer)
                self._open_transfers -= 1
                if self.tracer is not None:
                    self.tracer.instant(
                        now, "dma.done", TRACK_SIM,
                        {"id": transfer.seq, "chip": transfer.chip_id,
                         "extra": transfer.extra_cycles,
                         "waited": transfer.head_delay,
                         "mig": int(bool(chip.queue[_PRIO_MIGRATION]))})
                record = transfer.record
                if record.request_id is not None:
                    prior = self._last_completion.get(record.request_id, 0.0)
                    self._last_completion[record.request_id] = max(prior, now)

        if chip.has_queued:
            self._kick_chip(chip, now)
        else:
            chip.idle_since = now
            chip.descent_index = 0
            self._arm_descent(chip, now)
            if self._kernel is not None and chip.streams:
                self._kernel.try_batch(chip, now)

    # --- power descent ----------------------------------------------------

    def _arm_descent(self, chip: _PChip, now: float) -> None:
        due = chip.next_descent_due()
        if due is None:
            return
        chip.descent_generation += 1
        self.queue.push(max(due, now), _EV_DESCENT,
                        (chip.chip_id, chip.descent_generation))

    def _on_descent(self, payload, now: float) -> None:
        chip_id, generation = payload
        chip = self.chips[chip_id]
        if generation != chip.descent_generation:
            return
        if (chip.serving is not None or chip.has_queued
                or chip.waking_until is not None):
            return
        step = chip.begin_descent_step(now)
        if step is None:
            return
        end, _ = step
        # Finish the transition, then arm the next step.
        self.queue.push(end, _EV_DESCENT, (chip_id, -chip.descent_generation))

    def _on_descent_finish(self, chip: _PChip, now: float) -> None:
        chip.finish_descent_step(now)
        self._arm_descent(chip, now)

    # --- epochs and intervals ------------------------------------------------

    def _on_epoch(self, payload, now: float) -> None:
        if not self._work_remaining():
            self._next_epoch_time = math.inf
            return
        self.registry.counter("sim.epochs").inc()
        if self.tracer is not None:
            self.tracer.counter(now, "pending_heads", TRACK_SIM,
                                float(self.controller.pending_count()))
            self.tracer.counter(now, "served_requests", TRACK_SIM,
                                float(self.arrived_requests))
        for chip_id, transfers in self.controller.on_epoch(now).items():
            self._do_release(chip_id, transfers, now, notify=True)
        epoch = self.controller.epoch_cycles()
        if epoch:
            self._next_epoch_time = now + epoch
            self.queue.push(self._next_epoch_time, _EV_EPOCH, None)
        else:
            self._next_epoch_time = math.inf

    def _on_interval(self, payload, now: float) -> None:
        if self._records_done and self._open_transfers == 0:
            self._next_interval_time = math.inf
            return
        assert self._tracker is not None
        ranked = self._tracker.ranked_pages()
        if ranked:
            plan = self._grouper.build_plan(
                ranked, self._previous_hot, self._previous_candidates)
            cold_index = plan.groups[-1].index
            self._previous_hot = {
                page for page, group in plan.page_group.items()
                if group != cold_index}
            self._previous_candidates = plan.candidates
            migration = self._planner.plan_and_apply(plan, self.layout, now)
            self._tracker.age()
            self.migrations += migration.num_moves
            self.table_flushes += migration.table_flushes
            for chip_id, cycles in migration.copy_cycles_per_chip(
                    self._page_copy_cycles).items():
                chip = self.chips[chip_id]
                pages = max(1, round(cycles / self._page_copy_cycles))
                for _ in range(pages):
                    chip.enqueue(_Request(priority=_PRIO_MIGRATION,
                                          arrival=now,
                                          cycles=self._page_copy_cycles))
                self._kick_chip(chip, now)
        if not self._records_done:
            self._next_interval_time = now + self.config.layout.interval_cycles
            self.queue.push(self._next_interval_time, _EV_INTERVAL, None)
        else:
            self._next_interval_time = math.inf

    # ------------------------------------------------------------------

    _HANDLERS = {}

    def _build_result(self, end: float) -> SimulationResult:
        energy = EnergyBreakdown()
        time = TimeBreakdown()
        wakes = 0
        for chip in self.chips:
            energy.add(chip.energy)
            time.add(chip.time)
            wakes += chip.wake_count
        energy.validate()
        time.validate()

        mu = (self.config.alignment.mu
              if self.technique in ("dma-ta", "dma-ta-pl") else 0.0)
        service = self.config.undisturbed_service_cycles
        avg_extra = ((self.head_delay_total + self.extra_service_total)
                     / self.requests) if self.requests else 0.0
        violated = mu > 0 and avg_extra > mu * service * (1 + 1e-6) + 1e-9
        if violated and self.config.strict_guarantee:
            raise GuaranteeViolationError(
                f"average extra service {avg_extra:.3f} cycles exceeds "
                f"mu*T = {mu * service:.3f}")

        responses = {}
        for request_id, client in self.trace.clients.items():
            completion = self._last_completion.get(request_id)
            if completion is None:
                continue
            responses[request_id] = max(
                0.0, completion - client.arrival + client.base_cycles)

        return SimulationResult(
            metrics=self._build_metrics(mu, service),
            trace_name=self.trace.name,
            technique=self.technique,
            engine="precise",
            duration_cycles=end,
            energy=energy,
            time=time,
            transfers=self.transfers,
            requests=self.requests,
            proc_accesses=self.proc_accesses,
            mu=mu,
            service_cycles=service,
            head_delay_cycles=self.head_delay_total,
            extra_service_cycles=self.extra_service_total,
            client_responses=responses,
            migrations=self.migrations,
            table_flushes=self.table_flushes,
            wakes=wakes,
            controller_stats=self.controller.stats(),
            guarantee_violated=violated,
            chip_energy=[c.energy.total for c in self.chips],
        )

    def _build_metrics(self, mu: float, service_cycles: float):
        """Snapshot the run's registry into a :class:`MetricsReport`."""
        registry = self.registry
        registry.counter("sim.transfers").inc(self.transfers)
        registry.counter("sim.requests").inc(self.requests)
        registry.counter("sim.proc_accesses").inc(self.proc_accesses)
        registry.counter("sim.wakes").inc(
            sum(c.wake_count for c in self.chips))
        if self._kernel is not None:
            registry.counter("kernel.batches").inc(self._kernel.batches)
            registry.counter("kernel.batched_requests").inc(
                self._kernel.batched_requests)
        registry.gauge("dma.service_bound").set((1 + mu) * service_cycles)
        slack = getattr(self.controller, "slack", None)
        if slack is not None:
            registry.counter("slack.violations").inc(slack.violations)
        chip_residency: dict[int, dict[str, float]] = {}
        transitions: dict[str, int] = {}
        for chip in self.chips:
            buckets = chip.time.as_dict()
            buckets.pop("total", None)
            chip_residency[chip.chip_id] = buckets
            for edge, count in chip.transition_counts.items():
                transitions[edge] = transitions.get(edge, 0) + count
        return registry.report(chip_residency=chip_residency,
                               transitions=transitions)


def _dispatch_descent(engine: PreciseEngine, payload, now: float) -> None:
    chip_id, generation = payload
    chip = engine.chips[chip_id]
    if generation < 0:
        # Transition-finish marker (generation stored negated).
        if -generation == chip.descent_generation and chip.transition_target:
            engine._on_descent_finish(chip, now)
        return
    engine._on_descent(payload, now)


PreciseEngine._HANDLERS = {
    _EV_ARRIVAL: PreciseEngine._on_arrival,
    _EV_BUS_FREE: PreciseEngine._on_bus_free,
    _EV_REQUEST_AT_CHIP: PreciseEngine._on_request_at_chip,
    _EV_SERVE_DONE: PreciseEngine._on_serve_done,
    _EV_CHIP_READY: PreciseEngine._on_chip_ready,
    _EV_DESCENT: _dispatch_descent,
    _EV_EPOCH: PreciseEngine._on_epoch,
    _EV_INTERVAL: PreciseEngine._on_interval,
}


class TemporalAlignmentControllerShim:
    """A thin import indirection so both engines share one controller.

    The precise engine's transfers duck-type the fluid streams (only
    ``bus_id`` and identity are used by the controller), so the shared
    :class:`~repro.core.temporal_alignment.TemporalAlignmentController`
    works unchanged; this subclass exists purely to keep the import local
    and the intent explicit.
    """

    def __new__(cls, config, arrived_requests, tracer=None, registry=None):
        from repro.core.temporal_alignment import TemporalAlignmentController

        return TemporalAlignmentController(config, arrived_requests,
                                           tracer=tracer, registry=registry)
