"""The public simulation entry point."""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.core.cp_limit import calibrate_mu
from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult
from repro.traces.trace import Trace

TECHNIQUES = ("nopm", "baseline", "dma-ta", "pl", "dma-ta-pl")
#: ``precise-scalar`` is the precise engine with the array-timeline
#: kernel disabled — the pure event-stepping oracle the vectorized
#: engine is gated against (see docs/ENGINES.md).
ENGINES = ("fluid", "precise", "precise-scalar")


def validate_simulation_args(
    technique: str,
    engine: str = "fluid",
    mu: float | None = None,
    cp_limit: float | None = None,
) -> None:
    """Check simulation arguments without running anything.

    :func:`simulate` calls this itself; :mod:`repro.exec` calls it before
    dispatching jobs to worker processes so that a bad job spec fails in
    the submitting process (with a clean :class:`ConfigurationError`)
    rather than deep inside a pool worker.
    """
    if technique not in TECHNIQUES:
        raise ConfigurationError(
            f"unknown technique {technique!r}; expected one of {TECHNIQUES}")
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    if mu is not None and cp_limit is not None:
        raise ConfigurationError("pass either mu or cp_limit, not both")
    if mu is not None and mu < 0:
        raise ConfigurationError("mu must be non-negative")


def simulate(
    trace: Trace,
    config: SimulationConfig | None = None,
    technique: str = "baseline",
    engine: str = "fluid",
    mu: float | None = None,
    cp_limit: float | None = None,
    seed: int = 0,
    record_timeline: bool = False,
    tracer=None,
    profile: bool | None = None,
    telemetry=None,
    digests=None,
) -> SimulationResult:
    """Run one simulation of ``trace`` under ``technique``.

    Args:
        trace: the input trace (see :mod:`repro.traces`).
        config: platform configuration; the paper's Section 5.1 platform
            by default.
        technique: ``nopm`` (no power management), ``baseline`` (dynamic
            low-level policy only), ``dma-ta``, ``pl``, or ``dma-ta-pl``.
        engine: ``fluid`` (fast, default), ``precise`` (per-request,
            with the array-timeline kernel), or ``precise-scalar`` (the
            pure event-stepping oracle; bit-identical results to
            ``precise``, one order of magnitude slower).
        mu: DMA-TA per-request degradation parameter; overrides the
            configured value.
        cp_limit: client-perceived response-time degradation limit; when
            given, ``mu`` is calibrated from the trace (Section 5.1) —
            mutually exclusive with ``mu``.
        seed: seed for the baseline random page layout.
        record_timeline: record per-chip busy intervals on the result
            (fluid engine only) for
            :func:`repro.analysis.timeline.render_heatmap`.
        tracer: optional :class:`~repro.obs.tracer.Tracer` receiving the
            run's structured events (power-state spans, TA decisions,
            slack charges, migrations); ``None`` or a disabled tracer
            costs nothing.
        profile: wrap the engine run in :mod:`cProfile` and attach the
            folded hot paths to ``result.profile``. ``None`` defers to
            the ``REPRO_PROFILE`` environment variable (see
            :mod:`repro.obs.perf`), which is how the switch reaches
            executor worker processes.
        telemetry: optional
            :class:`~repro.obs.telemetry.TelemetrySampler` capturing
            live per-epoch time series (residency, power, slack,
            migrations, bus depth) during the run; the sampler is
            read-only, so results stay bit-identical in energy. See
            ``docs/OBSERVABILITY.md`` ("Live telemetry").
        digests: optional :class:`~repro.obs.diff.DigestRecorder`
            folding a per-epoch state digest into a rolling hash chain;
            the recorder's :class:`~repro.obs.diff.DigestTrail` is
            attached to ``result.digests``. Read-only, same bit-identity
            guarantee as telemetry. See ``docs/OBSERVABILITY.md``
            ("Differential observability").

    Returns:
        The :class:`~repro.sim.results.SimulationResult`.
    """
    validate_simulation_args(technique, engine, mu=mu, cp_limit=cp_limit)

    config = config or SimulationConfig()
    if cp_limit is not None:
        calibration = calibrate_mu(trace, config, cp_limit)
        config = config.with_mu(calibration.mu)
    elif mu is not None:
        config = config.with_mu(mu)

    if engine == "fluid":
        from repro.sim.fluid import FluidEngine

        engine_run = FluidEngine(trace, config, technique=technique,
                                 seed=seed,
                                 record_timeline=record_timeline,
                                 tracer=tracer, telemetry=telemetry,
                                 digests=digests).run
    else:
        if record_timeline:
            raise ConfigurationError(
                "record_timeline is only supported by the fluid engine")
        from repro.sim.precise import PreciseEngine

        engine_run = PreciseEngine(trace, config, technique=technique,
                                   seed=seed, tracer=tracer,
                                   vectorize=engine != "precise-scalar",
                                   telemetry=telemetry,
                                   digests=digests).run

    from repro.obs.perf import profiling_enabled, run_profiled

    if not profiling_enabled(profile):
        result = engine_run()
    else:
        result, hot_paths = run_profiled(engine_run)
        result.profile = hot_paths
    if digests is not None:
        result.digests = digests.trail()
    return result
