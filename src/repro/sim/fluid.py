"""The fluid (change-point) simulation engine.

State only changes at *change-points*: transfer arrivals and completions,
gather releases, processor bursts, epoch/interval ticks, and wake
completions. Between change-points every chip carries a set of
constant-rate streams and energy accrues in closed form
(:class:`~repro.memory.chip.FluidChip`). For the paper's strictly periodic
DMA-memory request streams this is exact in aggregate while being orders
of magnitude faster than per-request simulation; the test suite
cross-validates it against :class:`~repro.sim.precise.PreciseEngine`.
"""

from __future__ import annotations

from collections import defaultdict

from repro.config import SimulationConfig
from repro.core.controller import BaselineController, MemoryController
from repro.core.layout import PopularityGrouper
from repro.core.migration import MigrationPlanner
from repro.core.popularity import PopularityTracker
from repro.core.temporal_alignment import TemporalAlignmentController
from repro.energy.policies import AlwaysOnPolicy
from repro.errors import ConfigurationError, GuaranteeViolationError
from repro.io.bus import FluidBus
from repro.io.devices import BusAssigner
from repro.io.dma import FluidStream, StreamKind, allocate_chip_capacity
from repro.memory.address import (
    InterleavedLayout,
    MutableLayout,
    PageLayout,
    RandomLayout,
    SequentialLayout,
)
from repro.memory.chip import ChipRates, FluidChip
from repro.memory.system import MemorySystem
from repro.obs.events import TRACK_SIM
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import active_tracer
from repro.sim.engine import EventKind, EventQueue
from repro.sim.results import SimulationResult
from repro.traces.records import DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

#: Remaining-work threshold (serving cycles) below which a stream is done.
_DONE_EPS = 1e-6

TECHNIQUES = ("nopm", "baseline", "dma-ta", "pl", "dma-ta-pl")


def build_base_layout(config: SimulationConfig, seed: int) -> PageLayout:
    """The initial page placement selected by ``config.base_layout``."""
    memory = config.memory
    if config.base_layout == "sequential":
        return SequentialLayout(memory.num_chips, memory.pages_per_chip)
    if config.base_layout == "interleaved":
        return InterleavedLayout(memory.num_chips, memory.pages_per_chip)
    return RandomLayout(memory.num_chips, memory.pages_per_chip, seed=seed)


class FluidEngine:
    """One simulation run of a trace under a technique.

    Args:
        trace: the input trace.
        config: platform and technique parameters.
        technique: one of ``nopm`` (no power management, the performance
            reference), ``baseline`` (the low-level dynamic policy alone),
            ``dma-ta``, ``pl``, or ``dma-ta-pl``.
        seed: seed of the baseline random page layout.
        tracer: optional :class:`~repro.obs.tracer.Tracer`; when given
            (and enabled) the run emits power-state residency spans, TA
            buffering/release decisions, slack charges, PL migrations,
            and per-epoch progress counters. A disabled or ``None``
            tracer is normalised away so the hot paths pay a single
            ``is not None`` check.
        telemetry: optional
            :class:`~repro.obs.telemetry.TelemetrySampler`; when given,
            the run schedules read-only TELEMETRY events at the
            sampler's cadence. Sampling never touches chip accrual, so
            a telemetry-enabled run stays bit-identical in energy.
        digests: optional :class:`~repro.obs.diff.DigestRecorder`; when
            given, the run schedules read-only DIGEST events at the
            recorder's epoch cadence and folds the observable state into
            a rolling hash chain. Same bit-identity discipline as
            telemetry.
    """

    def __init__(self, trace: Trace, config: SimulationConfig,
                 technique: str = "baseline", seed: int = 0,
                 record_timeline: bool = False,
                 tracer=None, telemetry=None, digests=None) -> None:
        if technique not in TECHNIQUES:
            raise ConfigurationError(
                f"unknown technique {technique!r}; expected one of {TECHNIQUES}")
        self.trace = trace
        self.config = config
        self.technique = technique
        self._record_timeline = record_timeline
        self.tracer = active_tracer(tracer)
        self.registry = MetricsRegistry()

        policy = AlwaysOnPolicy() if technique == "nopm" else config.policy
        memory_config = config.memory
        base_layout = build_base_layout(config, seed)
        self._pl_enabled = technique in ("pl", "dma-ta-pl")
        layout = MutableLayout(base_layout) if self._pl_enabled else base_layout
        self.memory = MemorySystem(memory_config, policy, layout)
        if record_timeline:
            for chip in self.memory.chips:
                chip.timeline = []
        if self.tracer is not None:
            for chip in self.memory.chips:
                chip.tracer = self.tracer

        model = memory_config.power_model
        self.buses = [
            FluidBus(i, config.buses.bandwidth_bytes_per_s, model,
                     sharing=config.buses.sharing)
            for i in range(config.buses.count)
        ]
        if self.tracer is not None:
            for bus in self.buses:
                bus.tracer = self.tracer
        self.assigner = BusAssigner(config.buses.count)

        if technique in ("dma-ta", "dma-ta-pl"):
            self.controller: MemoryController = TemporalAlignmentController(
                config, self._served_requests,
                tracer=self.tracer, registry=self.registry)
        else:
            self.controller = BaselineController()

        if self._pl_enabled:
            self._tracker = PopularityTracker(
                counter_bits=config.layout.counter_bits,
                aging_shift=config.layout.aging_shift)
            self._grouper = PopularityGrouper(
                memory_config.num_chips, memory_config.pages_per_chip,
                config.layout)
            self._planner = MigrationPlanner(
                config.layout, tracer=self.tracer, registry=self.registry)
            self._previous_hot: set[int] = set()
            self._previous_candidates: set[int] | None = None
        else:
            self._tracker = None
            self._grouper = None
            self._planner = None
            self._previous_hot = set()
            self._previous_candidates = None

        # Runtime state.
        self.queue = EventQueue()
        self._streams_at: dict[int, set[FluidStream]] = defaultdict(set)
        self._active: set[FluidStream] = set()
        self._records_done = not trace.records
        self._pending_starts = 0
        #: Time of the last event that actually changed state. Stale
        #: (version-superseded) completion events may sit far in the
        #: future; they must not stretch the simulated horizon.
        self._last_progress = 0.0

        # Global DMA work integral (for slack credits).
        self._dma_work_base = 0.0
        self._dma_work_rate = 0.0
        self._dma_work_time = 0.0

        # Statistics.
        self.transfers = 0
        self.requests = 0
        self.proc_accesses = 0
        self.head_delay_total = 0.0
        self.extra_service_total = 0.0
        self.bus_wait_total = 0.0
        self.migrations = 0
        self.table_flushes = 0
        self._last_completion: dict[int, float] = {}

        self._opportunistic = config.layout.opportunistic_copies
        self._dma_service_hist = self.registry.histogram(
            "dma.service_per_request")

        # Cached geometry.
        self._serve_cycles = config.serve_cycles
        self._proc_serve_cycles = config.proc_serve_cycles
        self._page_copy_cycles = (
            memory_config.page_bytes / model.bytes_per_cycle)
        self._total_pages = memory_config.total_pages

        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.bind(self)
        self.digests = digests
        if digests is not None:
            digests.bind(self)

    # ------------------------------------------------------------------
    # Global request-arrival accounting (slack credits)
    # ------------------------------------------------------------------

    def _served_dma_work(self, now: float) -> float:
        return self._dma_work_base + self._dma_work_rate * (
            now - self._dma_work_time)

    def _served_requests(self) -> float:
        """Arrived (~served) DMA-memory requests, excluding buffered heads."""
        return self._served_dma_work(self.queue.now) / self._serve_cycles

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        if self.tracer is not None:
            # Run parameters up front, so sinks (the auditor especially)
            # can bootstrap the guarantee/slack replay from the stream
            # alone.
            self.tracer.instant(0.0, "sim.config", TRACK_SIM, {
                "engine": "fluid",
                "technique": self.technique,
                "mu": (self.config.alignment.mu
                       if self.technique in ("dma-ta", "dma-ta-pl")
                       else 0.0),
                "service_cycles": self.config.undisturbed_service_cycles,
                "epoch_cycles": self.config.alignment.epoch_cycles,
                "frequency_hz": self.config.memory.power_model.frequency_hz,
                "chips": self.config.memory.num_chips,
                "buses": self.config.buses.count,
            })
        if self.trace.records:
            self.queue.push(self.trace.records[0].time, EventKind.ARRIVAL, 0)
        epoch = self.controller.epoch_cycles()
        if epoch:
            self.queue.push(epoch, EventKind.EPOCH, None)
        if self._pl_enabled:
            self.queue.push(
                self.config.layout.interval_cycles, EventKind.INTERVAL, None)
        if self.telemetry is not None:
            self.queue.push(self.telemetry.sample_cycles,
                            EventKind.TELEMETRY, None)
        if self.digests is not None:
            self.queue.push(self.digests.sample_cycles,
                            EventKind.DIGEST, None)

        while self.queue:
            now, kind, payload = self.queue.pop()
            if kind is EventKind.TELEMETRY:
                # Read-only snapshot: no drain, no progress update — a
                # telemetry-enabled run must replay the disabled run's
                # event sequence exactly.
                self._on_telemetry(now)
                continue
            if kind is EventKind.DIGEST:
                # Same read-only discipline as TELEMETRY.
                self._on_digest(now)
                continue
            if kind is EventKind.ARRIVAL:
                self._on_arrival(payload, now)
            elif kind is EventKind.COMPLETE:
                self._on_complete(payload, now)
            elif kind is EventKind.STREAM_START:
                self._on_stream_start(payload, now)
            elif kind is EventKind.EPOCH:
                self._on_epoch(now)
            elif kind is EventKind.INTERVAL:
                self._on_interval(now)
            self._maybe_drain(now)
            if self._records_done and not self._work_remaining():
                break  # only stale/periodic events can remain

        end = max(self._last_progress, self.trace.duration_cycles)
        self.memory.advance_all(end)
        if self.telemetry is not None:
            self.telemetry.sample(end, final=True)
        if self.digests is not None:
            self.digests.sample(end, final=True)
        return self._build_result(end)

    def _work_remaining(self) -> bool:
        return (not self._records_done or self._has_live_streams()
                or self._pending_starts > 0
                or any(bus.queue for bus in self.buses)
                or self.controller.pending_count() > 0)

    def _has_live_streams(self) -> bool:
        """Active streams that can still make progress on their own.

        Parked opportunistic migration copies (zero grant, waiting for
        real traffic to ride on) must not keep the run alive forever.
        """
        return any(s.kind is not StreamKind.MIGRATION or s.granted > 0
                   for s in self._active)

    def _maybe_drain(self, now: float) -> None:
        if (self._records_done and not self._active
                and self._pending_starts == 0
                and not any(bus.queue for bus in self.buses)
                and self.controller.pending_count() > 0):
            for chip_id, streams in self.controller.drain(now).items():
                self._release(self.memory.chips[chip_id], streams, now,
                              notify=True)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_arrival(self, index: int, now: float) -> None:
        self._last_progress = max(self._last_progress, now)
        record = self.trace.records[index]
        if index + 1 < len(self.trace.records):
            self.queue.push(self.trace.records[index + 1].time,
                            EventKind.ARRIVAL, index + 1)
        else:
            self._records_done = True

        if isinstance(record, DMATransfer):
            self._on_transfer(record, now)
        elif isinstance(record, ProcessorBurst):
            self._on_proc_burst(record, now)

    def _on_transfer(self, record: DMATransfer, now: float) -> None:
        page = record.page % self._total_pages
        chip = self.memory.chips[self.memory.layout.chip_of(page)]
        bus_id = self.assigner.assign(record)
        n_req = record.num_requests(self.config.memory.request_bytes)
        self.transfers += 1
        self.requests += n_req

        stream = FluidStream(
            kind=StreamKind.DMA,
            chip_id=chip.chip_id,
            total_work=n_req * self._serve_cycles,
            demand=self.buses[bus_id].full_share_demand,
            bus_id=bus_id,
            record=record,
            arrival_time=now,
            release_time=now,
            num_requests=n_req,
            seq=self.transfers,
        )
        if self.tracer is not None:
            self.tracer.instant(now, "dma.arrive", TRACK_SIM,
                                {"id": stream.seq, "chip": chip.chip_id,
                                 "bus": bus_id, "requests": n_req})
        if self._tracker is not None:
            # One reference per DMA transfer: counting individual
            # DMA-memory requests would saturate the narrow counters on a
            # single 8-KB transfer (1024 requests against a 255 cap) and
            # reduce the ranking to "touched recently".
            self._tracker.record(page, 1)

        chip.advance(now)
        released = self.controller.admit(stream, chip, now)
        if released:
            self._release(chip, released, now, notify=True)

    def _on_proc_burst(self, record: ProcessorBurst, now: float) -> None:
        page = record.page % self._total_pages
        chip = self.memory.chips[self.memory.layout.chip_of(page)]
        work = record.count * self._proc_serve_cycles
        self.proc_accesses += record.count

        dma_here = sum(1 for s in self._streams_at[chip.chip_id] if s.is_dma)
        self.controller.on_proc_access(chip.chip_id, work, dma_here, now)

        stream = FluidStream(
            kind=StreamKind.PROC,
            chip_id=chip.chip_id,
            total_work=work,
            demand=1.0,
            record=record,
            arrival_time=now,
            release_time=now,
        )
        # Buffered DMA heads stay buffered: the chip wakes only for the
        # burst and returns to gathering afterwards. The slack account is
        # charged for exactly this coexistence (Section 4.1.3).
        self._release(chip, [stream], now, notify=False)

    def _on_stream_start(self, payload, now: float) -> None:
        chip_id, streams = payload
        self._pending_starts -= 1
        self._start_streams(self.memory.chips[chip_id], list(streams), now)

    def _on_complete(self, payload, now: float) -> None:
        stream, version = payload
        if stream.version != version or stream not in self._active:
            return
        chip = self.memory.chips[stream.chip_id]
        chip.advance(now)
        for other in self._streams_at[chip.chip_id]:
            other.sync(now)
        if stream.remaining_work > _DONE_EPS:
            # Numerical drift: reschedule at the refreshed projection.
            stream.version += 1
            self.queue.push(stream.projected_completion(now),
                            EventKind.COMPLETE, (stream, stream.version))
            return
        bus_ids = {stream.bus_id} if stream.is_dma else set()
        granted = self._finish_stream(stream, now)
        self._rebalance(bus_ids, {chip.chip_id}, now)
        if granted is not None:
            self._activate(self.memory.chips[granted.chip_id],
                           [granted], now, notify=True)

    def _on_epoch(self, now: float) -> None:
        if not self._work_remaining():
            return
        self.registry.counter("sim.epochs").inc()
        if self.tracer is not None:
            self.tracer.counter(now, "pending_heads", TRACK_SIM,
                                float(self.controller.pending_count()))
            self.tracer.counter(now, "served_requests", TRACK_SIM,
                                self._served_requests())
        for chip_id, streams in self.controller.on_epoch(now).items():
            self._release(self.memory.chips[chip_id], streams, now,
                          notify=True)
        epoch = self.controller.epoch_cycles()
        if epoch:
            self.queue.push(now + epoch, EventKind.EPOCH, None)

    def _on_telemetry(self, now: float) -> None:
        self.telemetry.sample(now)
        if self._work_remaining():
            self.queue.push(now + self.telemetry.sample_cycles,
                            EventKind.TELEMETRY, None)

    def _on_digest(self, now: float) -> None:
        self.digests.sample(now)
        if self._work_remaining():
            self.queue.push(now + self.digests.sample_cycles,
                            EventKind.DIGEST, None)

    def _on_interval(self, now: float) -> None:
        if self._records_done and not self._active:
            return
        assert self._tracker and self._grouper and self._planner
        ranked = self._tracker.ranked_pages()
        if ranked:
            plan = self._grouper.build_plan(
                ranked, self._previous_hot, self._previous_candidates)
            cold_index = plan.groups[-1].index
            self._previous_hot = {
                page for page, group in plan.page_group.items()
                if group != cold_index}
            self._previous_candidates = plan.candidates
            migration = self._planner.plan_and_apply(
                plan, self.memory.layout, now)  # type: ignore[arg-type]
            self._tracker.age()
            self.migrations += migration.num_moves
            self.table_flushes += migration.table_flushes
            for chip_id, cycles in migration.copy_cycles_per_chip(
                    self._page_copy_cycles).items():
                stream = FluidStream(
                    kind=StreamKind.MIGRATION,
                    chip_id=chip_id,
                    total_work=cycles,
                    demand=1.0,
                    arrival_time=now,
                    release_time=now,
                )
                if self._opportunistic:
                    # Section 4.2.2: copies piggyback on cycles the chip
                    # is active for other traffic — never wake it.
                    stream.service_start = now
                    stream.last_sync = now
                    self._streams_at[chip_id].add(stream)
                    self._active.add(stream)
                    self._rebalance(set(), {chip_id}, now)
                else:
                    self._release(self.memory.chips[chip_id], [stream],
                                  now, notify=False)
        if not self._records_done:
            self.queue.push(now + self.config.layout.interval_cycles,
                            EventKind.INTERVAL, None)

    # ------------------------------------------------------------------
    # Stream lifecycle
    # ------------------------------------------------------------------

    def _release(self, chip: FluidChip, streams: list[FluidStream],
                 now: float, notify: bool) -> None:
        """Let ``streams`` proceed: DMA streams enter their bus queues
        (one transfer owns a bus at a time under FIFO sharing); processor
        and migration streams go straight to the chip."""
        direct: list[FluidStream] = []
        for stream in streams:
            stream.release_time = now
            if not stream.is_dma:
                direct.append(stream)
                continue
            if self.buses[stream.bus_id].enqueue(stream, now):
                self._activate(self.memory.chips[stream.chip_id],
                               [stream], now, notify=notify)
        if direct:
            self._activate(chip, direct, now, notify=False)

    def _activate(self, chip: FluidChip, streams: list[FluidStream],
                  now: float, notify: bool) -> None:
        """A bus grant (or direct release) reached the chip: wake it if
        needed and begin serving when it is ready."""
        chip.advance(now)
        latency = chip.wake_latency(now)
        dma_count = sum(1 for s in streams if s.is_dma)
        if notify and latency > 0 and dma_count:
            self.controller.on_wake(chip.chip_id, latency, now, dma_count)
        ready = chip.wake(now)
        for stream in streams:
            stream.service_start = ready
            stream.last_sync = ready
            if stream.is_dma:
                # The gather delay is what DMA-TA's guarantee covers;
                # wake latency is the low-level policy's cost and is
                # paid under the baseline as well (more often, in fact).
                self.head_delay_total += (
                    stream.release_time - stream.arrival_time)
                self.bus_wait_total += max(
                    0.0, now - stream.release_time)
                if self.tracer is not None:
                    self.tracer.instant(
                        now, "dma.start", TRACK_SIM,
                        {"id": stream.seq, "chip": chip.chip_id,
                         "wake": max(0.0, ready - now),
                         "bus_wait": max(0.0, now - stream.release_time)})
        if ready > now + 1e-9:
            self._pending_starts += 1
            self.queue.push(ready, EventKind.STREAM_START,
                            (chip.chip_id, tuple(streams)))
        else:
            self._start_streams(chip, streams, now)

    def _start_streams(self, chip: FluidChip, streams: list[FluidStream],
                       now: float) -> None:
        bus_ids: set[int] = set()
        for stream in streams:
            if stream.is_dma:
                bus_ids.add(stream.bus_id)
            self._streams_at[chip.chip_id].add(stream)
            self._active.add(stream)
        self._rebalance(bus_ids, {chip.chip_id}, now)

    def _finish_stream(self, stream: FluidStream,
                       now: float) -> FluidStream | None:
        """Retire a completed stream; returns the next bus grant, if any."""
        self._streams_at[stream.chip_id].discard(stream)
        self._active.discard(stream)
        granted = None
        if stream.is_dma:
            granted = self.buses[stream.bus_id].finish(stream, now)
            self.extra_service_total += stream.extra_service_cycles
            requests = stream.num_requests or 1
            per_request_extra = (
                stream.release_time - stream.arrival_time
                + stream.extra_service_cycles) / requests
            self._dma_service_hist.record(
                self.config.undisturbed_service_cycles + per_request_extra)
            if self.tracer is not None:
                self.tracer.instant(
                    now, "dma.done", TRACK_SIM,
                    {"id": stream.seq, "chip": stream.chip_id,
                     "extra": stream.extra_service_cycles,
                     "waited": max(0.0, stream.release_time
                                   - stream.arrival_time),
                     "mig": int(any(
                         s.kind is StreamKind.MIGRATION
                         for s in self._streams_at[stream.chip_id]))})
            record = stream.record
            if isinstance(record, DMATransfer) and record.request_id is not None:
                prior = self._last_completion.get(record.request_id, 0.0)
                self._last_completion[record.request_id] = max(prior, now)
        return granted

    # ------------------------------------------------------------------
    # Rate recomputation (the heart of the fluid model)
    # ------------------------------------------------------------------

    def _rebalance(self, bus_ids: set[int], chip_ids: set[int],
                   now: float) -> None:
        self._last_progress = max(self._last_progress, now)
        touched = set(chip_ids)
        for bus_id in bus_ids:
            touched |= {s.chip_id for s in self.buses[bus_id].members}

        # Phase 1: bring accounting up to date at the old rates.
        for chip_id in touched:
            self.memory.chips[chip_id].advance(now)
            for stream in self._streams_at[chip_id]:
                stream.sync(now)

        # Capture the global work integral before rates change.
        self._dma_work_base = self._served_dma_work(now)
        self._dma_work_time = now

        # Phase 2: refresh bus shares; retire streams that just finished.
        granted_now: list[FluidStream] = []
        pending_buses = set(bus_ids)
        while True:
            for bus_id in pending_buses:
                extra = self.buses[bus_id].refresh_demands()
                for chip_id in extra - touched:
                    self.memory.chips[chip_id].advance(now)
                    for stream in self._streams_at[chip_id]:
                        stream.sync(now)
                touched |= extra
            pending_buses = set()
            finished = [s for chip_id in touched
                        for s in self._streams_at[chip_id]
                        if s.remaining_work <= _DONE_EPS]
            if not finished:
                break
            for stream in finished:
                if stream.is_dma:
                    pending_buses.add(stream.bus_id)
                granted = self._finish_stream(stream, now)
                if granted is not None:
                    granted_now.append(granted)
            if not pending_buses:
                break

        # Phase 3: re-allocate chip capacity and reschedule completions.
        for chip_id in touched:
            chip = self.memory.chips[chip_id]
            active = list(self._streams_at[chip_id])
            if self._opportunistic and active and all(
                    s.kind is StreamKind.MIGRATION for s in active):
                # Opportunistic copies alone must not hold the chip up:
                # park them (zero grant) and let the chip descend; they
                # resume at the next rebalance that brings real traffic.
                for stream in active:
                    stream.granted = 0.0
                    stream.version += 1
                if chip.busy:
                    chip.set_idle(now)
                continue
            if not active:
                if chip.busy:
                    chip.set_idle(now)
                continue
            allocate_chip_capacity(active)
            rates = ChipRates(
                dma=sum(s.granted for s in active if s.kind is StreamKind.DMA),
                proc=sum(s.granted for s in active if s.kind is StreamKind.PROC),
                migration=sum(s.granted for s in active
                              if s.kind is StreamKind.MIGRATION),
            )
            has_dma = any(s.is_dma for s in active)
            chip.set_busy(now, has_dma, rates)
            for stream in active:
                stream.version += 1
                completion = stream.projected_completion(now)
                if completion != float("inf"):
                    self.queue.push(completion, EventKind.COMPLETE,
                                    (stream, stream.version))

        # Phase 4: refresh the global DMA work rate.
        self._dma_work_rate = sum(
            s.granted for s in self._active if s.is_dma)

        # Phase 5: hand freed buses to their next queued transfers.
        for stream in granted_now:
            self._activate(self.memory.chips[stream.chip_id],
                           [stream], now, notify=True)

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def _build_result(self, end: float) -> SimulationResult:
        energy = self.memory.total_energy()
        time = self.memory.total_time()
        energy.validate()
        time.validate()

        mu = (self.config.alignment.mu
              if self.technique in ("dma-ta", "dma-ta-pl") else 0.0)
        service = self.config.undisturbed_service_cycles
        avg_extra = ((self.head_delay_total + self.extra_service_total)
                     / self.requests) if self.requests else 0.0
        violated = mu > 0 and avg_extra > mu * service * (1 + 1e-6) + 1e-9
        if violated and self.config.strict_guarantee:
            raise GuaranteeViolationError(
                f"average extra service {avg_extra:.3f} cycles exceeds "
                f"mu*T = {mu * service:.3f}")

        responses = {}
        for request_id, client in self.trace.clients.items():
            completion = self._last_completion.get(request_id)
            if completion is None:
                continue
            responses[request_id] = max(
                0.0, completion - client.arrival + client.base_cycles)

        return SimulationResult(
            metrics=self._build_metrics(mu, service),
            trace_name=self.trace.name,
            technique=self.technique,
            engine="fluid",
            duration_cycles=end,
            energy=energy,
            time=time,
            transfers=self.transfers,
            requests=self.requests,
            proc_accesses=self.proc_accesses,
            mu=mu,
            service_cycles=service,
            head_delay_cycles=self.head_delay_total,
            extra_service_cycles=self.extra_service_total,
            client_responses=responses,
            migrations=self.migrations,
            table_flushes=self.table_flushes,
            wakes=self.memory.total_wakes(),
            controller_stats=self.controller.stats(),
            guarantee_violated=violated,
            timeline=({c.chip_id: c.timeline for c in self.memory.chips}
                      if self._record_timeline else None),
            chip_energy=[c.energy.total for c in self.memory.chips],
        )

    def _build_metrics(self, mu: float, service_cycles: float):
        """Snapshot the run's registry into a :class:`MetricsReport`."""
        registry = self.registry
        registry.counter("sim.transfers").inc(self.transfers)
        registry.counter("sim.requests").inc(self.requests)
        registry.counter("sim.proc_accesses").inc(self.proc_accesses)
        registry.counter("sim.wakes").inc(self.memory.total_wakes())
        registry.gauge("dma.service_bound").set((1 + mu) * service_cycles)
        slack = getattr(self.controller, "slack", None)
        if slack is not None:
            registry.counter("slack.violations").inc(slack.violations)
        chip_residency: dict[int, dict[str, float]] = {}
        transitions: dict[str, int] = {}
        for chip in self.memory.chips:
            buckets = chip.time.as_dict()
            buckets.pop("total", None)
            chip_residency[chip.chip_id] = buckets
            for edge, count in chip.transition_counts.items():
                transitions[edge] = transitions.get(edge, 0) + count
        return registry.report(chip_residency=chip_residency,
                               transitions=transitions)
