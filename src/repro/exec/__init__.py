"""Parallel, cached sweep execution.

The figure sweeps are embarrassingly parallel — every point is one
independent :func:`repro.simulate` call — and highly redundant — every
technique point compares against the same baseline run. This package
exploits both properties:

* :class:`SimJob` / :func:`run_many` — declarative job specs fanned out
  over a process pool with eager validation, content-keyed
  deduplication, per-job timeouts, and graceful serial fallback;
* :class:`ResultCache` — a content-addressed on-disk cache under
  ``.repro_cache/`` (``$REPRO_CACHE_DIR``) that makes repeated sweeps
  and shared baselines nearly free across processes and sessions.

See ``docs/EXECUTION.md`` for the full story.
"""

from repro.exec.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
)
from repro.exec.jobs import CACHE_SCHEMA_VERSION, SimJob, validate_jobs
from repro.exec.runner import JobOutcome, run_many

__all__ = [
    "SimJob",
    "validate_jobs",
    "JobOutcome",
    "run_many",
    "ResultCache",
    "CacheStats",
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "CACHE_SCHEMA_VERSION",
]
