"""The parallel sweep executor.

:func:`run_many` takes a list of :class:`~repro.exec.jobs.SimJob` specs
and returns one :class:`JobOutcome` per job, **in input order**, no
matter how execution was scheduled. The pipeline is:

1. **validate** every spec eagerly (bad jobs raise
   :class:`~repro.errors.ConfigurationError` in the submitting process,
   before anything runs);
2. **deduplicate** by content key, so e.g. a shared baseline run appears
   once in the work list however many sweep points reference it;
3. **probe the cache** (when one is given) for each unique key;
4. **execute** the remaining jobs — serially, or fanned out over a
   ``concurrent.futures.ProcessPoolExecutor`` when ``max_workers > 1``;
5. **store** fresh results back into the cache.

Failure containment: an exception raised inside one job is captured on
that job's outcome (``error``) and every other job still completes. A
*pool* failure — a broken worker process, an unpicklable payload, or an
environment where processes cannot be spawned at all — degrades
gracefully: the affected and remaining jobs are re-run serially in the
submitting process instead.

A per-job ``timeout_s`` bounds how long the submitter waits for each
parallel job; a timed-out job is marked failed and its eventual result
is abandoned (the worker process itself is not killed mid-task).
Timeouts apply to pool execution only — the serial path runs each job
to completion.
"""

from __future__ import annotations

import concurrent.futures
import functools
import logging
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.exec.cache import ResultCache
from repro.exec.jobs import SimJob, validate_jobs
from repro.sim.results import SimulationResult
from repro.sim.run import simulate

#: Exceptions that indict the pool machinery rather than the job itself;
#: jobs failing this way are retried serially in-process. AttributeError
#: and TypeError are how pickle reports an unshippable payload (local
#: function, closure, lock, ...); a genuine in-worker error of those
#: types just gets one redundant serial retry with the same outcome.
_POOL_FAILURES = (BrokenProcessPool, pickle.PicklingError, OSError,
                  AttributeError, TypeError)

logger = logging.getLogger(__name__)


@dataclass
class JobOutcome:
    """What happened to one job.

    Attributes:
        job: the submitted spec.
        key: the job's content key (shared by deduplicated jobs).
        result: the simulation result, or ``None`` if the job failed.
        error: ``None`` on success, else a one-line failure description.
        from_cache: the result was loaded from the on-disk cache rather
            than computed in this call.
        wall_s: wall-clock seconds the job's worker spent computing the
            result (0.0 for cache hits, failures, and deduplicated
            followers of an already-computed key).
    """

    job: SimJob
    key: str
    result: SimulationResult | None = None
    error: str | None = None
    from_cache: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


def _execute(job: SimJob) -> SimulationResult:
    """The worker body: one fully-specified simulate() call."""
    return simulate(job.trace, config=job.config, technique=job.technique,
                    engine=job.engine, mu=job.mu, cp_limit=job.cp_limit,
                    seed=job.seed)


def _timed_call(worker: Callable[[SimJob], SimulationResult],
                job: SimJob) -> tuple[SimulationResult, float]:
    """Run ``worker(job)`` and measure its wall time (pool-picklable)."""
    start = time.perf_counter()
    result = worker(job)
    return result, time.perf_counter() - start


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def run_many(
    jobs: Iterable[SimJob],
    max_workers: int | None = None,
    cache: ResultCache | None = None,
    timeout_s: float | None = None,
    worker: Callable[[SimJob], SimulationResult] | None = None,
) -> list[JobOutcome]:
    """Run many simulations, possibly in parallel, possibly cached.

    Args:
        jobs: the job specs; the returned list matches their order.
        max_workers: process-pool width; ``None`` or ``1`` runs serially
            in this process (deterministic and dependency-free), ``> 1``
            fans unique jobs out over worker processes.
        cache: optional :class:`~repro.exec.cache.ResultCache`; hits skip
            execution entirely and fresh results are stored back. ``None``
            disables all cache reads **and** writes.
        timeout_s: per-job wait bound for pool execution (see module
            docstring); ``None`` waits indefinitely.
        worker: override of the job body, mainly for fault-injection
            tests; must be picklable for pool execution (a module-level
            function). Defaults to running :func:`repro.simulate`.

    Returns:
        One :class:`JobOutcome` per input job, in input order. Identical
        jobs (same content key) are computed once and share a result.

    Raises:
        ConfigurationError: if any job spec is invalid (raised before
            any job runs).
    """
    jobs = list(jobs)
    validate_jobs(jobs)
    worker = worker or _execute
    timed = functools.partial(_timed_call, worker)

    keys = [job.key() for job in jobs]
    order: list[str] = []  # unique keys, first-appearance order
    first_job: dict[str, SimJob] = {}
    for job, key in zip(jobs, keys):
        if key not in first_job:
            first_job[key] = job
            order.append(key)

    results: dict[str, SimulationResult] = {}
    errors: dict[str, str] = {}
    walls: dict[str, float] = {}
    cached: set[str] = set()

    if cache is not None:
        for key in order:
            hit = cache.get(key)
            if hit is not None:
                results[key] = hit
                cached.add(key)

    pending = [key for key in order if key not in results]

    def run_serially(key: str) -> None:
        try:
            results[key], walls[key] = timed(first_job[key])
        except Exception as exc:
            errors[key] = _describe(exc)

    if len(pending) <= 1 or not max_workers or max_workers <= 1:
        for key in pending:
            run_serially(key)
    else:
        _run_pool(pending, first_job, timed,
                  min(max_workers, len(pending)), timeout_s,
                  results, errors, walls, run_serially)

    if cache is not None:
        for key in pending:
            if key in results:
                cache.put(key, results[key])

    outcomes = []
    seen: set[str] = set()
    for job, key in zip(jobs, keys):
        outcomes.append(JobOutcome(
            job=job, key=key,
            result=results.get(key),
            error=errors.get(key),
            from_cache=key in cached,
            wall_s=walls.get(key, 0.0) if key not in seen else 0.0,
        ))
        seen.add(key)
    return outcomes


def _run_pool(
    pending: Sequence[str],
    first_job: dict[str, SimJob],
    timed: Callable[[SimJob], tuple[SimulationResult, float]],
    max_workers: int,
    timeout_s: float | None,
    results: dict[str, SimulationResult],
    errors: dict[str, str],
    walls: dict[str, float],
    run_serially: Callable[[str], None],
) -> None:
    """Fan ``pending`` out over a process pool, filling results/errors.

    Any pool-machinery failure (see :data:`_POOL_FAILURES`) downgrades
    the affected and remaining jobs to the serial path.
    """
    try:
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers)
    except _POOL_FAILURES + (RuntimeError,) as exc:
        logger.warning("process pool unavailable (%s); running %d jobs "
                       "serially", _describe(exc), len(pending))
        for key in pending:
            run_serially(key)
        return

    pool_broken = False
    with executor:
        try:
            futures = {key: executor.submit(timed, first_job[key])
                       for key in pending}
        except _POOL_FAILURES as exc:
            logger.warning("pool submission failed (%s); running %d jobs "
                           "serially", _describe(exc), len(pending))
            for key in pending:
                run_serially(key)
            return
        for key in pending:
            if pool_broken:
                run_serially(key)
                continue
            try:
                results[key], walls[key] = futures[key].result(
                    timeout=timeout_s)
            except concurrent.futures.TimeoutError:
                logger.warning("job %s timed out after %gs", key[:12],
                               timeout_s)
                errors[key] = (f"timed out after {timeout_s:g}s "
                               "(result abandoned)")
                futures[key].cancel()
            except _POOL_FAILURES as exc:
                logger.warning("pool broke (%s); downgrading remaining "
                               "jobs to serial execution", _describe(exc))
                pool_broken = True
                run_serially(key)
            except Exception as exc:
                errors[key] = _describe(exc)
        if pool_broken:
            executor.shutdown(wait=False, cancel_futures=True)
