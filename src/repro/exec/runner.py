"""The parallel sweep executor.

:func:`run_many` takes a list of :class:`~repro.exec.jobs.SimJob` specs
and returns one :class:`JobOutcome` per job, **in input order**, no
matter how execution was scheduled. The pipeline is:

1. **validate** every spec eagerly (bad jobs raise
   :class:`~repro.errors.ConfigurationError` in the submitting process,
   before anything runs);
2. **deduplicate** by content key, so e.g. a shared baseline run appears
   once in the work list however many sweep points reference it;
3. **probe the cache** (when one is given) for each unique key;
4. **execute** the remaining jobs — serially, or fanned out over a
   ``concurrent.futures.ProcessPoolExecutor`` when ``max_workers > 1``;
5. **store** fresh results back into the cache.

Failure containment: an exception raised inside one job is captured on
that job's outcome (``error``) and every other job still completes. A
*pool* failure — a broken worker process, an unpicklable payload, or an
environment where processes cannot be spawned at all — degrades
gracefully: the affected and remaining jobs are re-run serially in the
submitting process instead.

Hang containment: the submitter never waits unboundedly on the pool.
An explicit per-job ``timeout_s`` marks an overrunning job failed and
abandons its eventual result. With ``timeout_s=None`` (the default) a
*derived* wait bound applies instead — generous (the larger of
:data:`DEFAULT_WAIT_FLOOR_S` and 20x the slowest job observed so far,
floor overridable via ``REPRO_EXEC_WAIT_FLOOR_S``) — and a job that
exceeds it is *downgraded*, not failed: its future is cancelled and the
job re-runs on the serial path in the submitting process. Timeouts and
wait bounds apply to pool execution only — the serial path runs each
job to completion.

The pool's start method follows the platform default; set
``REPRO_EXEC_START_METHOD=spawn`` (or ``forkserver``/``fork``) to
override — useful where fork inherits problematic state (threads, CUDA
handles) into workers.

Fleet observability: pass a :class:`~repro.obs.fleet.FleetCollector` as
``fleet=`` and the pool is built with the fleet initializer so workers
stream progress events (started/heartbeat/finished, trace spans, audit
rollups) back to the submitting process. The collector's heartbeat
watchdog can declare a silent worker stalled; the runner then cancels
that job's future and requeues it onto the serial path, so a frozen
worker costs one requeue instead of the whole sweep.
"""

from __future__ import annotations

import concurrent.futures
import functools
import logging
import multiprocessing
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.exec.cache import ResultCache
from repro.exec.jobs import SimJob, validate_jobs
from repro.sim.results import SimulationResult
from repro.sim.run import simulate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.fleet import FleetCollector

#: Exceptions that indict the pool machinery rather than the job itself;
#: jobs failing this way are retried serially in-process. AttributeError
#: and TypeError are how pickle reports an unshippable payload (local
#: function, closure, lock, ...); a genuine in-worker error of those
#: types just gets one redundant serial retry with the same outcome.
_POOL_FAILURES = (BrokenProcessPool, pickle.PicklingError, OSError,
                  AttributeError, TypeError)

#: Environment override of the pool's multiprocessing start method.
START_METHOD_ENV = "REPRO_EXEC_START_METHOD"

#: Environment override of the derived wait bound's floor (seconds).
WAIT_FLOOR_ENV = "REPRO_EXEC_WAIT_FLOOR_S"

#: Default floor of the derived pool wait bound. Generous on purpose:
#: it exists to catch pool deadlocks, not slow jobs.
DEFAULT_WAIT_FLOOR_S = 120.0

#: Derived bound = max(floor, this factor x slowest observed job wall).
_WAIT_WALL_FACTOR = 20.0

#: Poll period of the pool wait loop (also bounds stall-requeue latency).
_POLL_S = 0.05

logger = logging.getLogger(__name__)


@dataclass
class JobOutcome:
    """What happened to one job.

    Attributes:
        job: the submitted spec.
        key: the job's content key (shared by deduplicated jobs).
        result: the simulation result, or ``None`` if the job failed.
        error: ``None`` on success, else a one-line failure description.
        from_cache: the result was loaded from the on-disk cache rather
            than computed in this call.
        wall_s: wall-clock seconds the job's worker spent computing the
            result (0.0 for cache hits, failures, and deduplicated
            followers of an already-computed key).
    """

    job: SimJob
    key: str
    result: SimulationResult | None = None
    error: str | None = None
    from_cache: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


def _execute(job: SimJob) -> SimulationResult:
    """The worker body: one fully-specified simulate() call."""
    return simulate(job.trace, config=job.config, technique=job.technique,
                    engine=job.engine, mu=job.mu, cp_limit=job.cp_limit,
                    seed=job.seed)


def _timed_call(worker: Callable[[SimJob], SimulationResult],
                job: SimJob) -> tuple[SimulationResult, float]:
    """Run ``worker(job)`` and measure its wall time (pool-picklable)."""
    start = time.perf_counter()
    result = worker(job)
    return result, time.perf_counter() - start


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def executor_mp_context():
    """The multiprocessing context the pool should use, or ``None``.

    ``None`` means "the platform default". ``REPRO_EXEC_START_METHOD``
    selects an explicit start method (``spawn``, ``forkserver``,
    ``fork``); an invalid value is ignored with a warning rather than
    failing the sweep.
    """
    name = os.environ.get(START_METHOD_ENV, "").strip()
    if not name:
        return None
    try:
        return multiprocessing.get_context(name)
    except ValueError:
        logger.warning(
            "ignoring %s=%r (valid start methods: %s)", START_METHOD_ENV,
            name, ", ".join(multiprocessing.get_all_start_methods()))
        return None


def _wait_floor_s() -> float:
    """The derived wait bound's floor (env-overridable, for tests)."""
    raw = os.environ.get(WAIT_FLOOR_ENV, "").strip()
    if raw:
        try:
            value = float(raw)
        except ValueError:
            value = -1.0
        if value > 0:
            return value
        logger.warning("ignoring %s=%r (want a positive number of "
                       "seconds)", WAIT_FLOOR_ENV, raw)
    return DEFAULT_WAIT_FLOOR_S


def run_many(
    jobs: Iterable[SimJob],
    max_workers: int | None = None,
    cache: ResultCache | None = None,
    timeout_s: float | None = None,
    worker: Callable[[SimJob], SimulationResult] | None = None,
    fleet: "FleetCollector | None" = None,
) -> list[JobOutcome]:
    """Run many simulations, possibly in parallel, possibly cached.

    Args:
        jobs: the job specs; the returned list matches their order.
        max_workers: process-pool width; ``None`` or ``1`` runs serially
            in this process (deterministic and dependency-free), ``> 1``
            fans unique jobs out over worker processes.
        cache: optional :class:`~repro.exec.cache.ResultCache`; hits skip
            execution entirely and fresh results are stored back. ``None``
            disables all cache reads **and** writes.
        timeout_s: explicit per-job wait bound for pool execution; an
            overrunning job is marked failed and its result abandoned.
            ``None`` (default) applies the generous *derived* bound
            instead, which downgrades overrunning jobs to the serial
            path rather than failing them (see module docstring).
        worker: override of the job body, mainly for fault-injection
            tests; must be picklable for pool execution (a module-level
            function). Defaults to running :func:`repro.simulate`.
        fleet: optional :class:`~repro.obs.fleet.FleetCollector`; pool
            workers then stream progress/trace/audit events to it and
            its watchdog can requeue stalled jobs onto the serial path.

    Returns:
        One :class:`JobOutcome` per input job, in input order. Identical
        jobs (same content key) are computed once and share a result.

    Raises:
        ConfigurationError: if any job spec is invalid (raised before
            any job runs).
    """
    jobs = list(jobs)
    validate_jobs(jobs)
    default_body = worker is None
    worker = worker or _execute
    timed = functools.partial(_timed_call, worker)

    keys = [job.key() for job in jobs]
    order: list[str] = []  # unique keys, first-appearance order
    first_job: dict[str, SimJob] = {}
    for job, key in zip(jobs, keys):
        if key not in first_job:
            first_job[key] = job
            order.append(key)

    results: dict[str, SimulationResult] = {}
    errors: dict[str, str] = {}
    walls: dict[str, float] = {}
    cached: set[str] = set()

    if fleet is not None:
        fleet.start()
        fleet.expect(len(order))
        for key in order:
            fleet.note_submitted(key, first_job[key])

    if cache is not None:
        for key in order:
            hit = cache.get(key)
            if hit is not None:
                results[key] = hit
                cached.add(key)
                if fleet is not None:
                    fleet.note_cache_hit(key, first_job[key])

    pending = [key for key in order if key not in results]

    def run_serially(key: str) -> None:
        if fleet is not None:
            fleet.note_serial_start(key)
        try:
            results[key], walls[key] = timed(first_job[key])
        except Exception as exc:
            errors[key] = _describe(exc)
        if fleet is not None:
            fleet.note_serial_finish(key, key in results,
                                     errors.get(key),
                                     walls.get(key, 0.0))

    try:
        if len(pending) <= 1 or not max_workers or max_workers <= 1:
            for key in pending:
                run_serially(key)
        else:
            _run_pool(pending, first_job, timed, worker, default_body,
                      min(max_workers, len(pending)), timeout_s,
                      results, errors, walls, run_serially, fleet)
    finally:
        if fleet is not None:
            fleet.quiesce()

    if cache is not None:
        for key in pending:
            if key in results:
                cache.put(key, results[key])

    outcomes = []
    seen: set[str] = set()
    for job, key in zip(jobs, keys):
        outcomes.append(JobOutcome(
            job=job, key=key,
            result=results.get(key),
            error=errors.get(key),
            from_cache=key in cached,
            wall_s=walls.get(key, 0.0) if key not in seen else 0.0,
        ))
        seen.add(key)
    return outcomes


def _run_pool(
    pending: Sequence[str],
    first_job: dict[str, SimJob],
    timed: Callable[[SimJob], tuple[SimulationResult, float]],
    worker: Callable[[SimJob], SimulationResult],
    default_body: bool,
    max_workers: int,
    timeout_s: float | None,
    results: dict[str, SimulationResult],
    errors: dict[str, str],
    walls: dict[str, float],
    run_serially: Callable[[str], None],
    fleet: "FleetCollector | None",
) -> None:
    """Fan ``pending`` out over a process pool, filling results/errors.

    Any pool-machinery failure (see :data:`_POOL_FAILURES`) downgrades
    the affected and remaining jobs to the serial path. The wait loop
    polls with :func:`concurrent.futures.wait` so it can, between
    completions: record when each job actually starts running, expire
    jobs past their explicit timeout or derived wait bound, and requeue
    jobs the fleet watchdog has declared stalled.
    """
    kwargs: dict = {"max_workers": max_workers}
    context = executor_mp_context()
    if context is not None:
        kwargs["mp_context"] = context
    if fleet is not None:
        from repro.obs.fleet import fleet_worker_init

        kwargs["initializer"] = fleet_worker_init
        kwargs["initargs"] = fleet.initargs()
    try:
        executor = concurrent.futures.ProcessPoolExecutor(**kwargs)
    except _POOL_FAILURES + (RuntimeError,) as exc:
        logger.warning("process pool unavailable (%s); running %d jobs "
                       "serially", _describe(exc), len(pending))
        for key in pending:
            run_serially(key)
        return

    def submit(key: str):
        if fleet is not None:
            from repro.obs.fleet import fleet_timed_call

            return executor.submit(fleet_timed_call, worker,
                                   first_job[key], key, default_body)
        return executor.submit(timed, first_job[key])

    pool_broken = False
    abandoned = False  # a running worker's result was given up on
    waiting: dict[str, concurrent.futures.Future] = {}
    submitted_at: dict[str, float] = {}
    started_at: dict[str, float] = {}
    try:
        try:
            for key in pending:
                waiting[key] = submit(key)
                submitted_at[key] = time.monotonic()
        except _POOL_FAILURES as exc:
            logger.warning("pool submission failed (%s); running %d jobs "
                           "serially", _describe(exc), len(pending))
            pool_broken = True
            for future in waiting.values():
                future.cancel()
            waiting.clear()

        wait_floor = _wait_floor_s()
        max_wall = 0.0
        last_done = time.monotonic()

        while waiting and not pool_broken:
            done, _ = concurrent.futures.wait(
                list(waiting.values()), timeout=_POLL_S,
                return_when=concurrent.futures.FIRST_COMPLETED)
            now = time.monotonic()
            for key in [k for k, f in waiting.items() if f in done]:
                future = waiting.pop(key)
                last_done = now
                try:
                    results[key], walls[key] = future.result()
                    max_wall = max(max_wall, walls[key])
                except _POOL_FAILURES as exc:
                    logger.warning("pool broke (%s); downgrading "
                                   "remaining jobs to serial execution",
                                   _describe(exc))
                    pool_broken = True
                    run_serially(key)
                except concurrent.futures.CancelledError:
                    run_serially(key)
                except Exception as exc:
                    errors[key] = _describe(exc)
            if pool_broken:
                break

            for key, future in waiting.items():
                if key not in started_at and future.running():
                    started_at[key] = now

            if fleet is not None:
                for key in fleet.take_stalled():
                    future = waiting.pop(key, None)
                    if future is None:
                        continue  # completed while being flagged
                    if not future.cancel():
                        abandoned = True
                    fleet.note_requeued(key)
                    run_serially(key)

            # A queued job's wait clock starts when the pool last made
            # progress — it could not have started any earlier.
            def wait_ref(key: str) -> float:
                return started_at.get(
                    key, max(submitted_at[key], last_done))

            if timeout_s is not None:
                for key in list(waiting):
                    if now - wait_ref(key) <= timeout_s:
                        continue
                    future = waiting.pop(key)
                    logger.warning("job %s timed out after %gs", key[:12],
                                   timeout_s)
                    errors[key] = (f"timed out after {timeout_s:g}s "
                                   "(result abandoned)")
                    if not future.cancel():
                        abandoned = True
                    if fleet is not None:
                        fleet.note_failed(key, errors[key])
            else:
                bound = max(wait_floor, _WAIT_WALL_FACTOR * max_wall)
                for key in list(waiting):
                    if now - wait_ref(key) <= bound:
                        continue
                    future = waiting.pop(key)
                    logger.warning(
                        "job %s exceeded the %.0fs pool wait bound; "
                        "retrying it serially", key[:12], bound)
                    if not future.cancel():
                        abandoned = True
                    if fleet is not None:
                        fleet.note_requeued(key)
                    run_serially(key)

        if pool_broken:
            for future in waiting.values():
                future.cancel()
            waiting.clear()
            for key in pending:
                if key not in results and key not in errors:
                    run_serially(key)
    finally:
        # Abandoned workers may be wedged mid-job: don't block shutdown
        # on them (their processes are reaped at interpreter exit).
        executor.shutdown(wait=not abandoned,
                          cancel_futures=abandoned or pool_broken)
