"""Job specifications for the sweep executor.

A :class:`SimJob` is one fully-specified :func:`repro.simulate` call —
trace, configuration, technique, technique parameters, engine, and seed
— as inert data. Jobs exist so that sweeps can be validated eagerly,
deduplicated, dispatched to worker processes, and cached by content
rather than by object identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.config import SimulationConfig
from repro.sim.run import validate_simulation_args
from repro.traces.trace import Trace

#: Bump when the meaning of a cached result changes without the package
#: version changing (result schema tweaks, canonicalisation fixes, ...).
#: 2: SimulationResult gained the ``metrics`` report field.
#: 3: SimulationResult gained the ``profile`` hot-paths field.
CACHE_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class SimJob:
    """One simulation to run.

    Attributes:
        trace: the input trace.
        technique: technique name (see :data:`repro.sim.run.TECHNIQUES`).
        config: platform configuration; ``None`` means the paper default.
        engine: engine name (see :data:`repro.sim.run.ENGINES`).
        mu: raw DMA-TA degradation parameter (exclusive with cp_limit).
        cp_limit: client-perceived degradation limit (exclusive with mu).
        seed: page-layout seed.
        tag: free-form caller label carried through to the outcome;
            NOT part of the job identity or cache key.
    """

    trace: Trace
    technique: str = "baseline"
    config: SimulationConfig | None = None
    engine: str = "fluid"
    mu: float | None = None
    cp_limit: float | None = None
    seed: int = 0
    tag: str = field(default="", compare=False)

    @property
    def label(self) -> str:
        """A short human-readable handle for diagnostics and dashboards.

        The caller's ``tag`` when present, else the technique plus
        whichever degradation parameter is set — never empty, never part
        of the job identity.
        """
        if self.tag:
            return self.tag
        parts = [self.technique]
        if self.cp_limit is not None:
            parts.append(f"cp={self.cp_limit:g}")
        if self.mu is not None:
            parts.append(f"mu={self.mu:g}")
        if self.engine != "fluid":
            parts.append(self.engine)
        return ":".join(parts)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on a bad spec.

        Runs the same checks :func:`repro.simulate` would, plus config
        construction, so errors surface in the submitting process before
        any worker is involved.
        """
        validate_simulation_args(self.technique, self.engine,
                                 mu=self.mu, cp_limit=self.cp_limit)
        config = self.config or SimulationConfig()
        if self.mu is not None:
            config.with_mu(self.mu)  # triggers alignment-config validation

    def key(self) -> str:
        """The content-addressed identity of this job.

        Stable across processes and machine restarts: built from the
        trace content digest, the canonical configuration dict, the
        technique parameters, and the code/schema version. Anything that
        could change the simulation output is in here; ``tag`` is not.
        """
        from repro import __version__

        config = self.config or SimulationConfig()
        payload = json.dumps({
            "schema": CACHE_SCHEMA_VERSION,
            "version": __version__,
            "trace": self.trace.fingerprint(),
            "config": config.canonical_dict(),
            "technique": self.technique,
            "engine": self.engine,
            "mu": repr(self.mu),
            "cp_limit": repr(self.cp_limit),
            "seed": self.seed,
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def validate_jobs(jobs: list[SimJob] | tuple[SimJob, ...]) -> None:
    """Validate every job spec eagerly, before any dispatch."""
    for index, job in enumerate(jobs):
        try:
            job.validate()
        except Exception as exc:
            exc.args = (f"job {index} ({job.technique!r}"
                        f"{f', tag={job.tag!r}' if job.tag else ''}): "
                        f"{exc}",)
            raise
