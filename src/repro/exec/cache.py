"""Content-addressed on-disk cache of simulation results.

Entries are pickled :class:`~repro.sim.results.SimulationResult` objects
stored under ``<root>/<key[:2]>/<key>.pkl``, where ``key`` is the
:meth:`repro.exec.jobs.SimJob.key` digest — a hash of the trace content,
the canonical configuration, the technique parameters, and the code
version. That makes hits valid by construction: any input change, or a
package version bump, changes the key and the old entry simply stops
being found.

Invalidation rules:

* a corrupted or truncated entry is treated as a **miss** (and removed),
  never an error;
* ``max_entries`` evicts least-recently-used entries (by file mtime;
  hits re-touch their entry) after each store;
* :meth:`ResultCache.clear` wipes the cache directory.

The default location is ``.repro_cache/`` in the working directory,
overridable with the ``REPRO_CACHE_DIR`` environment variable or the
``root`` argument.
"""

from __future__ import annotations

import logging
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.sim.results import SimulationResult

logger = logging.getLogger(__name__)

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions,
                "corrupt": self.corrupt}


@dataclass
class ResultCache:
    """A directory of pickled simulation results, keyed by content.

    Attributes:
        root: cache directory; ``None`` resolves ``$REPRO_CACHE_DIR`` and
            falls back to ``.repro_cache/``.
        max_entries: soft capacity; least-recently-used entries beyond it
            are evicted after each store (``None`` = unbounded).
    """

    root: str | Path | None = None
    max_entries: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.root is None:
            self.root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(self.root)

    # --- paths -----------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return Path(self.root) / key[:2] / f"{key}.pkl"

    # --- operations ------------------------------------------------------

    def get(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or ``None`` on a miss.

        A present-but-unreadable entry (truncated write, foreign bytes,
        unpicklable payload) counts as corrupt: it is deleted and
        reported as a miss.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception as exc:
            logger.warning("cache entry %s is unreadable (%s: %s); "
                           "removing it", path, type(exc).__name__, exc)
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(result, SimulationResult):
            logger.warning("cache entry %s holds a %s, not a "
                           "SimulationResult; removing it", path,
                           type(result).__name__)
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        try:
            os.utime(path)  # refresh LRU position
        except OSError:
            pass
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` atomically (write + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self._evict()

    def _entries(self) -> list[Path]:
        root = Path(self.root)
        if not root.is_dir():
            return []
        return list(root.glob("??/*.pkl"))

    def __len__(self) -> int:
        return len(self._entries())

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        entries = self._entries()
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0
        for path in sorted(entries, key=mtime)[:excess]:
            try:
                path.unlink()
                self.stats.evictions += 1
            except OSError:
                pass

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
