"""The regression comparator: fresh bench records vs the trajectory.

Classification is per metric, per record, against the *matching* runs of
the committed trajectory (same record name, same ``bench_ms`` — a 5 ms
smoke run is never judged against a 25 ms baseline). Two metric families
are compared:

* **performance** — the record's total wall-clock (lower is better);
* **fidelity** — the absolute relative deviation of every paper-tied
  metric (lower is better: the reproduction moved toward or away from
  the published number).

The noise band around the baseline is robust: the centre is the
**median** over the baseline runs and the half-width is the largest of
``mad_k`` x **MAD** (median absolute deviation — outlier-immune), a
relative tolerance, and an absolute floor. With a single committed run
(MAD degenerates to 0) or a zero-variance history, the configured
tolerances alone carry the band, so one seeded baseline is enough to
start gating.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from repro.bench.record import BenchRecord

#: Classification outcomes, ordered from good to bad.
IMPROVED = "improved"
UNCHANGED = "unchanged"
REGRESSED = "regressed"
NO_BASELINE = "no-baseline"


@dataclass(frozen=True)
class Tolerance:
    """Per-figure noise-band configuration.

    Attributes:
        wall_rel: relative half-width for wall-time (0.6 = a run must be
            >60% slower than the baseline median to regress).
        wall_abs_s: absolute wall-time floor in seconds, so micro-phases
            whose jitter exceeds their duration never gate.
        fidelity_abs: absolute half-width on |relative deviation| from
            the paper value (0.02 = two percentage points of deviation).
        mad_k: how many MADs of baseline scatter widen the band.
        perf_metrics: names of record metrics gated as standalone
            lower-is-better performance values (e.g. an engine's
            wall-clock recorded as a metric rather than a phase), judged
            with ``perf_rel`` / ``perf_abs`` bands. A step improvement
            (like a 10x engine speedup) classifies as IMPROVED, never as
            a gate failure — only slower-than-band regresses.
        perf_rel: relative half-width for ``perf_metrics``.
        perf_abs: absolute floor for ``perf_metrics``, in the metric's
            own unit (seconds for wall metrics) — tighter than
            ``wall_abs_s`` since these metrics time a single engine run,
            not a whole bench.
    """

    wall_rel: float = 0.60
    wall_abs_s: float = 0.25
    fidelity_abs: float = 0.02
    mad_k: float = 3.0
    perf_metrics: tuple = ()
    perf_rel: float = 0.60
    perf_abs: float = 0.05


#: The default band, applied when a figure has no override.
DEFAULT_TOLERANCE = Tolerance()

#: Figure-specific overrides. The engine cross-validation bench measures
#: a wall-clock *ratio* as its headline fidelity metric, so its fidelity
#: band is wider; table1 regenerates exact published constants, so its
#: fidelity band is tight.
FIGURE_TOLERANCES: dict[str, Tolerance] = {
    # ``precise/wall_s`` is gated directly so a slowdown in the precise
    # engine's array-timeline kernel fails CI even when the bench's
    # total wall (dominated by other phases) stays inside its band.
    "engines": replace(DEFAULT_TOLERANCE, fidelity_abs=0.05,
                       perf_metrics=("precise/wall_s",)),
    "table1": replace(DEFAULT_TOLERANCE, fidelity_abs=0.001),
}


def median(values: Sequence[float]) -> float:
    """Plain median (no statistics dependency in hot import paths)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of no values")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation around the median (0 for <2 values)."""
    if len(values) < 2:
        return 0.0
    centre = median(values)
    return median([abs(v - centre) for v in values])


@dataclass(frozen=True)
class Verdict:
    """One metric's classification against its baseline distribution."""

    figure: str
    record: str
    metric: str          # "wall_s", "perf:<name>", or "fidelity:<name>"
    kind: str            # "performance" | "fidelity"
    value: float
    status: str          # IMPROVED / UNCHANGED / REGRESSED / NO_BASELINE
    baseline_median: float | None = None
    band: float = 0.0    # half-width actually applied
    baseline_runs: int = 0
    #: The candidate came from a ``--quick`` smoke run (short trace).
    #: Quick runs are known to deviate on some figures (see ROADMAP), so
    #: every renderer marks them to keep smoke noise from being read as
    #: a fidelity regression.
    quick: bool = False

    def describe(self) -> str:
        tag = " [quick run]" if self.quick else ""
        if self.status == NO_BASELINE:
            return (f"{self.record}/{self.metric}: {self.value:.4g} "
                    f"(no comparable baseline){tag}")
        return (f"{self.record}/{self.metric}: {self.value:.4g} vs "
                f"median {self.baseline_median:.4g} "
                f"+/- {self.band:.4g} over {self.baseline_runs} run(s) "
                f"-> {self.status}{tag}")


@dataclass
class Comparison:
    """The full result of one compare pass."""

    verdicts: list[Verdict] = field(default_factory=list)

    def of_status(self, status: str) -> list[Verdict]:
        return [v for v in self.verdicts if v.status == status]

    @property
    def regressions(self) -> list[Verdict]:
        return self.of_status(REGRESSED)

    @property
    def improvements(self) -> list[Verdict]:
        return self.of_status(IMPROVED)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        counts = {status: len(self.of_status(status))
                  for status in (IMPROVED, UNCHANGED, REGRESSED,
                                 NO_BASELINE)}
        return (f"{counts[IMPROVED]} improved, "
                f"{counts[UNCHANGED]} unchanged, "
                f"{counts[REGRESSED]} regressed, "
                f"{counts[NO_BASELINE]} without baseline")


def classify(value: float, baseline: Sequence[float], *,
             rel_tol: float, abs_tol: float, mad_k: float) -> tuple[str, float, float]:
    """Classify one lower-is-better value against its baseline history.

    Returns ``(status, baseline_median, band_half_width)``. The band is
    ``max(mad_k * MAD, rel_tol * |median|, abs_tol)`` — robust scatter
    when history exists, configured tolerance when it does not (single
    committed run, or a zero-variance history).
    """
    centre = median(baseline)
    band = max(mad_k * mad(baseline), rel_tol * abs(centre), abs_tol)
    if value > centre + band:
        return REGRESSED, centre, band
    if value < centre - band:
        return IMPROVED, centre, band
    return UNCHANGED, centre, band


def _matching_baselines(candidate: BenchRecord,
                        history: Iterable[BenchRecord]) -> list[BenchRecord]:
    """Baseline runs comparable to ``candidate`` (name and bench_ms)."""
    want_ms = candidate.bench_ms
    out = []
    for run in history:
        if run.name != candidate.name:
            continue
        have_ms = run.bench_ms
        if want_ms is not None and have_ms is not None \
                and abs(want_ms - have_ms) > 1e-9:
            continue
        out.append(run)
    return out


def compare_records(
    candidates: Iterable[BenchRecord],
    trajectories: Mapping[str, list[BenchRecord]],
    tolerances: Mapping[str, Tolerance] | None = None,
    wall_rel: float | None = None,
) -> Comparison:
    """Classify every candidate record against the committed trajectory.

    Args:
        candidates: fresh records (one bench run).
        trajectories: ``figure -> committed runs`` (see
            :func:`repro.bench.trajectory.load_all_trajectories`).
        tolerances: per-figure overrides; defaults to
            :data:`FIGURE_TOLERANCES` over :data:`DEFAULT_TOLERANCE`.
        wall_rel: global override of the wall-time relative tolerance
            (the ``--wall-tolerance`` CLI flag).
    """
    tolerances = tolerances if tolerances is not None else FIGURE_TOLERANCES
    comparison = Comparison()
    for candidate in candidates:
        tol = tolerances.get(candidate.figure, DEFAULT_TOLERANCE)
        if wall_rel is not None:
            tol = replace(tol, wall_rel=wall_rel)
        history = _matching_baselines(
            candidate, trajectories.get(candidate.figure, []))
        comparison.verdicts.append(
            _judge_wall(candidate, history, tol))
        comparison.verdicts.extend(
            _judge_perf_metrics(candidate, history, tol))
        comparison.verdicts.extend(
            _judge_fidelity(candidate, history, tol))
    return comparison


def _judge_wall(candidate: BenchRecord, history: list[BenchRecord],
                tol: Tolerance) -> Verdict:
    base = dict(figure=candidate.figure, record=candidate.name,
                metric="wall_s", kind="performance",
                value=candidate.wall_s, quick=candidate.is_quick)
    walls = [run.wall_s for run in history if run.phases]
    if not walls or not candidate.phases:
        return Verdict(status=NO_BASELINE, **base)
    status, centre, band = classify(
        candidate.wall_s, walls, rel_tol=tol.wall_rel,
        abs_tol=tol.wall_abs_s, mad_k=tol.mad_k)
    return Verdict(status=status, baseline_median=centre, band=band,
                   baseline_runs=len(walls), **base)


def _judge_perf_metrics(candidate: BenchRecord,
                        history: list[BenchRecord],
                        tol: Tolerance) -> list[Verdict]:
    """Gate the figure's named lower-is-better performance metrics."""
    verdicts = []
    values = {m.name: m.value for m in candidate.metrics}
    for name in tol.perf_metrics:
        if name not in values:
            continue
        base = dict(figure=candidate.figure, record=candidate.name,
                    metric=f"perf:{name}", kind="performance",
                    value=values[name], quick=candidate.is_quick)
        baseline = [m.value for run in history for m in run.metrics
                    if m.name == name]
        if not baseline:
            verdicts.append(Verdict(status=NO_BASELINE, **base))
            continue
        status, centre, band = classify(
            values[name], baseline, rel_tol=tol.perf_rel,
            abs_tol=tol.perf_abs, mad_k=tol.mad_k)
        verdicts.append(Verdict(
            status=status, baseline_median=centre, band=band,
            baseline_runs=len(baseline), **base))
    return verdicts


def _judge_fidelity(candidate: BenchRecord, history: list[BenchRecord],
                    tol: Tolerance) -> list[Verdict]:
    verdicts = []
    for name, deviation in candidate.deviations().items():
        base = dict(figure=candidate.figure, record=candidate.name,
                    metric=f"fidelity:{name}", kind="fidelity",
                    value=abs(deviation), quick=candidate.is_quick)
        baseline = [abs(run.deviations()[name]) for run in history
                    if name in run.deviations()]
        if not baseline:
            verdicts.append(Verdict(status=NO_BASELINE, **base))
            continue
        status, centre, band = classify(
            abs(deviation), baseline, rel_tol=0.0,
            abs_tol=tol.fidelity_abs, mad_k=tol.mad_k)
        verdicts.append(Verdict(
            status=status, baseline_median=centre, band=band,
            baseline_runs=len(baseline), **base))
    return verdicts


def render_comparison(comparison: Comparison, verbose: bool = False) -> str:
    """Human-readable compare output (regressions always itemised)."""
    lines = [f"bench compare: {comparison.summary()}"]
    if any(v.quick for v in comparison.verdicts):
        lines.append("  note: [quick run] marks short-trace smoke "
                     "records — known to deviate on some figures "
                     "(fig 5 quick-mode, see ROADMAP); don't read them "
                     "as fidelity regressions")
    shown = comparison.verdicts if verbose else comparison.regressions
    for verdict in shown:
        marker = {REGRESSED: "!", IMPROVED: "+",
                  UNCHANGED: "=", NO_BASELINE: "?"}[verdict.status]
        lines.append(f"  {marker} [{verdict.figure}] {verdict.describe()}")
    if not verbose and comparison.improvements:
        lines.append("  improvements:")
        for verdict in comparison.improvements:
            lines.append(f"  + [{verdict.figure}] {verdict.describe()}")
    if comparison.regressions:
        figures = sorted({v.figure for v in comparison.regressions})
        lines.append("  root-cause a regression with "
                     f"`repro bench explain {figures[0]} "
                     "--metric <name>` (re-runs the point against the "
                     "baseline and digest-diffs the runs)")
    return "\n".join(lines)


__all__ = [
    "IMPROVED", "UNCHANGED", "REGRESSED", "NO_BASELINE",
    "Tolerance", "DEFAULT_TOLERANCE", "FIGURE_TOLERANCES",
    "median", "mad", "classify", "Verdict", "Comparison",
    "compare_records", "render_comparison",
]
