"""The versioned bench-record schema.

One bench run of one figure produces one :class:`BenchRecord`: the
regenerated series values next to the paper's expected numbers (and the
relative deviation between them), the wall-clock spent per phase, the
result-cache traffic, run metadata, and — when profiling was on — the
folded hot paths. Records serialise to JSON (``benchmarks/results/
<name>.json``) and accumulate into the root-level ``BENCH_<figure>.json``
trajectory files that :mod:`repro.bench.compare` diffs against.

The schema is versioned (:data:`SCHEMA_VERSION`): loaders reject records
from a different schema generation with a clear
:class:`~repro.errors.BenchFormatError` instead of silently comparing
incompatible quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import BenchFormatError

#: Bump whenever the record layout changes incompatibly.
#: v2: records carry an ``audit`` block (result-invariant findings from
#: :func:`repro.obs.audit.audit_result` over the session's runs).
SCHEMA_VERSION = 2

#: Guard against division blow-ups for paper-expected values near zero.
_EXPECTED_EPS = 1e-12

#: Trace duration of a ``repro bench run --quick`` smoke run, in ms.
#: Records at or below this duration are marked as quick in the compare
#: output and the HTML report: short traces are known to deviate on some
#: figures (fig 5 quick-mode, see ROADMAP) and must not be read as
#: fidelity regressions.
QUICK_BENCH_MS = 5.0


@dataclass(frozen=True)
class Metric:
    """One regenerated series value, optionally tied to a paper number.

    Attributes:
        name: series point name, e.g. ``"OLTP-St/dma-ta/cp=10%"``.
        value: the regenerated value.
        unit: free-form unit label (``"fraction"``, ``"mJ"``, ``"uf"``,
            ``"cycles"``, ...).
        expected: the paper's published value for this point, or ``None``
            when the paper gives no number (shape-only points).
    """

    name: str
    value: float
    unit: str = ""
    expected: float | None = None

    @property
    def deviation(self) -> float | None:
        """Relative deviation from the paper value (``None`` if untied).

        ``(value - expected) / |expected|`` — or the absolute difference
        when the expected value is (numerically) zero.
        """
        if self.expected is None:
            return None
        if abs(self.expected) < _EXPECTED_EPS:
            return self.value - self.expected
        return (self.value - self.expected) / abs(self.expected)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "value": self.value}
        if self.unit:
            out["unit"] = self.unit
        if self.expected is not None:
            out["expected"] = self.expected
            out["deviation"] = self.deviation
        return out


@dataclass(frozen=True)
class Phase:
    """Wall-clock seconds one named phase of the bench consumed."""

    name: str
    wall_s: float

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "wall_s": self.wall_s}


@dataclass
class BenchRecord:
    """Everything one bench run measured, as plain data.

    Attributes:
        name: record name — the ``benchmarks/results/`` file stem
            (``"fig5_savings_vs_cplimit"``).
        figure: figure id grouping records into one trajectory file
            (``"fig5"`` -> ``BENCH_fig5.json``); several records may
            share a figure.
        created: ISO-8601 UTC timestamp of the run.
        meta: run metadata — at least ``bench_ms`` (trace duration) and
            ``jobs``; typically also the python and package versions.
        metrics: the regenerated series values.
        phases: per-phase wall-clock (the simulate phase is derived from
            :attr:`repro.exec.runner.JobOutcome.wall_s`).
        cache: result-cache counters for the run (hits/misses/...).
        profile: folded cProfile hot paths (see :mod:`repro.obs.perf`),
            or ``None`` when profiling was off.
        audit: result-invariant audit summary —
            ``{"checked": <runs audited>, "findings": [<one-liners>]}``
            from :func:`repro.obs.audit.audit_result` over the session's
            simulation results (empty findings = all invariants held).
        fleet: sweep-level fleet rollup
            (:meth:`repro.obs.fleet.FleetReport.as_dict`) when the bench
            ran a fleet-observed parallel sweep; empty otherwise. An
            additive block: absent in older records, tolerated by the
            parser without a schema bump.
        explain: root-cause attribution attached by ``repro bench
            explain`` — the regressed metric, the baseline it was
            compared against, the digest-divergence verdict
            (:meth:`repro.obs.diff.DivergenceReport.as_dict`), and the
            per-bucket energy attribution. Additive like ``fleet``:
            empty unless an explain pass ran.
    """

    name: str
    figure: str
    created: str = ""
    meta: dict[str, Any] = field(default_factory=dict)
    metrics: list[Metric] = field(default_factory=list)
    phases: list[Phase] = field(default_factory=list)
    cache: dict[str, int] = field(default_factory=dict)
    profile: list[dict[str, Any]] | None = None
    audit: dict[str, Any] = field(default_factory=dict)
    fleet: dict[str, Any] = field(default_factory=dict)
    explain: dict[str, Any] = field(default_factory=dict)

    # --- derived ---------------------------------------------------------

    @property
    def wall_s(self) -> float:
        """Total wall-clock over all recorded phases."""
        return math.fsum(p.wall_s for p in self.phases)

    @property
    def bench_ms(self) -> float | None:
        """The trace duration the run used (the comparability key)."""
        value = self.meta.get("bench_ms")
        return float(value) if isinstance(value, (int, float)) else None

    @property
    def is_quick(self) -> bool:
        """True when the record came from a ``--quick`` smoke run."""
        ms = self.bench_ms
        return ms is not None and ms <= QUICK_BENCH_MS

    def deviations(self) -> dict[str, float]:
        """``metric name -> relative deviation`` for paper-tied metrics."""
        return {m.name: m.deviation for m in self.metrics
                if m.deviation is not None}

    def fidelity(self) -> dict[str, float]:
        """Aggregate fidelity digest over the paper-tied metrics."""
        devs = [abs(d) for d in self.deviations().values()]
        if not devs:
            return {"tied_metrics": 0}
        return {
            "tied_metrics": len(devs),
            "max_abs_deviation": max(devs),
            "mean_abs_deviation": math.fsum(devs) / len(devs),
        }

    # --- (de)serialisation ----------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "figure": self.figure,
            "created": self.created,
            "meta": dict(self.meta),
            "metrics": [m.as_dict() for m in self.metrics],
            "phases": [p.as_dict() for p in self.phases],
            "wall_s": self.wall_s,
            "fidelity": self.fidelity(),
            "cache": dict(self.cache),
            "audit": dict(self.audit),
        }
        if self.fleet:
            out["fleet"] = dict(self.fleet)
        if self.explain:
            out["explain"] = dict(self.explain)
        if self.profile is not None:
            out["profile"] = list(self.profile)
        return out

    @classmethod
    def from_dict(cls, obj: Any, where: str = "record") -> "BenchRecord":
        """Parse and validate one serialised record.

        Raises:
            BenchFormatError: on anything that is not a schema-current,
                structurally sound record — including records written by
                an older or newer schema generation.
        """
        if not isinstance(obj, Mapping):
            raise BenchFormatError(f"{where}: not a JSON object")
        schema = obj.get("schema")
        if schema != SCHEMA_VERSION:
            raise BenchFormatError(
                f"{where}: schema {schema!r} is not the supported "
                f"version {SCHEMA_VERSION}; regenerate the record with "
                "`repro bench run` (old records cannot be compared)")
        name = obj.get("name")
        figure = obj.get("figure")
        if not isinstance(name, str) or not name:
            raise BenchFormatError(f"{where}: missing record name")
        if not isinstance(figure, str) or not figure:
            raise BenchFormatError(f"{where}: missing figure id")
        meta = obj.get("meta", {})
        if not isinstance(meta, Mapping):
            raise BenchFormatError(f"{where}: meta is not an object")
        metrics = _parse_metrics(obj.get("metrics", []), where)
        phases = _parse_phases(obj.get("phases", []), where)
        cache = obj.get("cache", {})
        if not isinstance(cache, Mapping):
            raise BenchFormatError(f"{where}: cache is not an object")
        profile = obj.get("profile")
        if profile is not None and not isinstance(profile, list):
            raise BenchFormatError(f"{where}: profile is not an array")
        audit = obj.get("audit", {})
        if not isinstance(audit, Mapping):
            raise BenchFormatError(f"{where}: audit is not an object")
        fleet = obj.get("fleet", {})
        if not isinstance(fleet, Mapping):
            raise BenchFormatError(f"{where}: fleet is not an object")
        explain = obj.get("explain", {})
        if not isinstance(explain, Mapping):
            raise BenchFormatError(f"{where}: explain is not an object")
        return cls(
            name=name, figure=figure,
            created=str(obj.get("created", "")),
            meta=dict(meta), metrics=metrics, phases=phases,
            cache={str(k): int(v) for k, v in cache.items()
                   if isinstance(v, (int, float))},
            profile=list(profile) if profile is not None else None,
            audit=dict(audit),
            fleet=dict(fleet),
            explain=dict(explain),
        )


def _parse_metrics(raw: Any, where: str) -> list[Metric]:
    if not isinstance(raw, list):
        raise BenchFormatError(f"{where}: metrics is not an array")
    metrics: list[Metric] = []
    for index, entry in enumerate(raw):
        spot = f"{where}: metrics[{index}]"
        if not isinstance(entry, Mapping):
            raise BenchFormatError(f"{spot} is not an object")
        name = entry.get("name")
        value = entry.get("value")
        if not isinstance(name, str) or not name:
            raise BenchFormatError(f"{spot} has no name")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise BenchFormatError(f"{spot} ({name}) has a non-numeric "
                                   f"value {value!r}")
        expected = entry.get("expected")
        if expected is not None and not isinstance(expected, (int, float)):
            raise BenchFormatError(f"{spot} ({name}) has a non-numeric "
                                   f"expected {expected!r}")
        metrics.append(Metric(
            name=name, value=float(value),
            unit=str(entry.get("unit", "")),
            expected=float(expected) if expected is not None else None))
    return metrics


def _parse_phases(raw: Any, where: str) -> list[Phase]:
    if not isinstance(raw, list):
        raise BenchFormatError(f"{where}: phases is not an array")
    phases: list[Phase] = []
    for index, entry in enumerate(raw):
        spot = f"{where}: phases[{index}]"
        if not isinstance(entry, Mapping):
            raise BenchFormatError(f"{spot} is not an object")
        name = entry.get("name")
        wall = entry.get("wall_s")
        if not isinstance(name, str) or not name:
            raise BenchFormatError(f"{spot} has no name")
        if not isinstance(wall, (int, float)) or wall < 0:
            raise BenchFormatError(f"{spot} ({name}) has a bad wall_s "
                                   f"{wall!r}")
        phases.append(Phase(name=name, wall_s=float(wall)))
    return phases


def metrics_from_pairs(
        pairs: Iterable[tuple[str, float]], unit: str = "") -> list[Metric]:
    """Convenience: untied metrics from ``(name, value)`` pairs."""
    return [Metric(name=name, value=value, unit=unit)
            for name, value in pairs]


__all__ = [
    "SCHEMA_VERSION", "QUICK_BENCH_MS", "Metric", "Phase", "BenchRecord",
    "metrics_from_pairs",
]
