"""repro.bench — machine-readable bench records and regression gates.

The performance-and-fidelity observatory on top of :mod:`repro.obs`:

* **record** (:mod:`repro.bench.record`) — the versioned JSON schema one
  bench run emits: regenerated series values next to the paper's
  published numbers (with relative deviation), per-phase wall-clock,
  cache traffic, run metadata, and optional folded profiles.
* **trajectory** (:mod:`repro.bench.trajectory`) — the committed
  ``BENCH_<figure>.json`` run histories at the repository root, written
  atomically.
* **compare** (:mod:`repro.bench.compare`) — robust classification
  (median / MAD noise bands, per-figure tolerances) of a fresh run
  against the trajectory, for both wall-time and paper fidelity.
* **report** (:mod:`repro.bench.report`) — a self-contained HTML report
  with per-figure trajectory sparklines.
* **cli** (:mod:`repro.bench.cli`) — the ``repro bench
  run | compare | update-baseline | report`` verbs.

See ``docs/BENCHMARKS.md`` for the schema, the tolerance policy, and
the baseline-update workflow.
"""

from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    FIGURE_TOLERANCES,
    IMPROVED,
    NO_BASELINE,
    REGRESSED,
    UNCHANGED,
    Comparison,
    Tolerance,
    Verdict,
    classify,
    compare_records,
    mad,
    median,
    render_comparison,
)
from repro.bench.record import (
    SCHEMA_VERSION,
    BenchRecord,
    Metric,
    Phase,
    metrics_from_pairs,
)
from repro.bench.report import merge_current, render_report, write_report
from repro.bench.trajectory import (
    append_records,
    load_all_trajectories,
    load_result_records,
    load_trajectory,
    trajectory_path,
    write_json_atomic,
)

__all__ = [
    # record
    "SCHEMA_VERSION", "BenchRecord", "Metric", "Phase",
    "metrics_from_pairs",
    # trajectory
    "trajectory_path", "write_json_atomic", "load_trajectory",
    "append_records", "load_all_trajectories", "load_result_records",
    # compare
    "IMPROVED", "UNCHANGED", "REGRESSED", "NO_BASELINE",
    "Tolerance", "DEFAULT_TOLERANCE", "FIGURE_TOLERANCES",
    "median", "mad", "classify", "Verdict", "Comparison",
    "compare_records", "render_comparison",
    # report
    "render_report", "write_report", "merge_current",
]
