"""Self-contained HTML bench report with per-figure trajectory sparklines.

``repro bench report`` renders the committed trajectories — optionally
with the current ``benchmarks/results/*.json`` run appended as the last
point — into one dependency-free HTML file: a section per figure with
the latest record's metrics (value, paper-expected, deviation), the
wall-clock and fidelity trajectories as inline-SVG sparklines, and the
top profiled hot paths when the run was profiled.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.bench.record import BenchRecord

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial,
       sans-serif; margin: 2em auto; max-width: 62em; color: #1a1a2e;
       background: #fafafa; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em;
     border-bottom: 1px solid #d8d8e0; padding-bottom: .25em; }
table { border-collapse: collapse; font-size: .85em; margin: .75em 0; }
th, td { border: 1px solid #d8d8e0; padding: .3em .6em;
         text-align: right; }
th { background: #eef0f6; } td:first-child, th:first-child
{ text-align: left; }
.spark { vertical-align: middle; margin-right: 1.5em; }
.spark-label { font-size: .8em; color: #555; margin-right: .35em; }
.dev-bad { color: #b3261e; } .dev-ok { color: #1b6e3c; }
.meta { color: #666; font-size: .8em; }
.quick { background: #fde293; color: #5f4b00; border-radius: .6em;
         padding: .1em .55em; font-size: .65em; vertical-align: middle;
         margin-left: .5em; }
footer { margin-top: 3em; color: #888; font-size: .75em; }
"""


def sparkline(values: Sequence[float], width: int = 140,
              height: int = 32, stroke: str = "#3f51b5") -> str:
    """One series as an inline SVG polyline (empty string if < 1 point)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    pad = 3
    if len(values) == 1:
        xs = [width / 2.0]
    else:
        step = (width - 2 * pad) / (len(values) - 1)
        xs = [pad + i * step for i in range(len(values))]
    if hi == lo:
        # Zero-variance series (single run, or every run identical):
        # a flat midline marker, not points pinned to the bottom edge.
        ys = [height / 2.0] * len(values)
    else:
        span = hi - lo
        ys = [height - pad - (v - lo) / span * (height - 2 * pad)
              for v in values]
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    last = (f'<circle cx="{xs[-1]:.1f}" cy="{ys[-1]:.1f}" r="2.5" '
            f'fill="{stroke}"/>')
    return (f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" role="img">'
            f'<polyline fill="none" stroke="{stroke}" stroke-width="1.5" '
            f'points="{points}"/>{last}</svg>')


def _metric_rows(record: BenchRecord) -> str:
    rows = []
    for metric in record.metrics:
        deviation = metric.deviation
        if deviation is None:
            expected = deviation_cell = "&mdash;"
        else:
            expected = f"{metric.expected:.4g}"
            css = "dev-bad" if abs(deviation) > 0.10 else "dev-ok"
            deviation_cell = f'<span class="{css}">{deviation:+.1%}</span>'
        rows.append(
            f"<tr><td>{html.escape(metric.name)}</td>"
            f"<td>{metric.value:.4g}</td>"
            f"<td>{html.escape(metric.unit) or '&mdash;'}</td>"
            f"<td>{expected}</td><td>{deviation_cell}</td></tr>")
    return "\n".join(rows)


def _profile_rows(record: BenchRecord, top: int = 8) -> str:
    if not record.profile:
        return ""
    rows = []
    for entry in record.profile[:top]:
        rows.append(
            f"<tr><td>{html.escape(str(entry.get('func', '?')))}</td>"
            f"<td>{entry.get('ncalls', 0)}</td>"
            f"<td>{float(entry.get('tot_s', 0.0)):.3f}</td>"
            f"<td>{float(entry.get('cum_s', 0.0)):.3f}</td></tr>")
    return ("<h3>hot paths (cProfile, cumulative)</h3>"
            "<table><tr><th>function</th><th>calls</th><th>tot s</th>"
            "<th>cum s</th></tr>" + "\n".join(rows) + "</table>")


def _figure_section(figure: str, runs: Sequence[BenchRecord]) -> str:
    by_name: dict[str, list[BenchRecord]] = {}
    for run in runs:
        by_name.setdefault(run.name, []).append(run)
    parts = [f"<h2>{html.escape(figure)}</h2>"]
    for name, history in sorted(by_name.items()):
        latest = history[-1]
        walls = [r.wall_s for r in history if r.phases]
        devs = [r.fidelity().get("max_abs_deviation") for r in history]
        devs = [d for d in devs if d is not None]
        meta = ", ".join(f"{k}={v}" for k, v in sorted(latest.meta.items())
                         if k in ("bench_ms", "jobs", "repro", "python"))
        # --quick smoke records are visibly badged: short traces deviate
        # on some figures and must not be read as fidelity regressions.
        badge = ('<span class="quick" title="short-trace smoke run '
                 '(repro bench run --quick); not fidelity-comparable to '
                 'full-length records">quick run</span>'
                 if latest.is_quick else "")
        quick_count = sum(1 for r in history if r.is_quick)
        quick_note = (f"; {quick_count} quick run(s) in trajectory"
                      if quick_count else "")
        parts.append(
            f"<h3>{html.escape(name)}{badge}</h3>"
            f'<p class="meta">{len(history)} run(s); latest '
            f"{html.escape(latest.created) or 'undated'}"
            f"{'; ' + html.escape(meta) if meta else ''}"
            f"{quick_note}</p>")
        spark_bits = []
        if walls:
            spark_bits.append(
                f'<span class="spark-label">wall '
                f"{walls[-1]:.2f}s</span>{sparkline(walls)}")
        if devs:
            spark_bits.append(
                f'<span class="spark-label">max |deviation| '
                f"{devs[-1]:.1%}</span>"
                f"{sparkline(devs, stroke='#b3261e')}")
        if spark_bits:
            parts.append(f"<p>{''.join(spark_bits)}</p>")
        parts.append(
            "<table><tr><th>metric</th><th>value</th><th>unit</th>"
            "<th>paper</th><th>deviation</th></tr>"
            f"{_metric_rows(latest)}</table>")
        if latest.cache:
            cache = ", ".join(f"{k}: {v}"
                              for k, v in sorted(latest.cache.items()))
            parts.append(f'<p class="meta">cache &mdash; '
                         f"{html.escape(cache)}</p>")
        parts.append(_profile_rows(latest))
    return "\n".join(parts)


def render_report(trajectories: Mapping[str, Sequence[BenchRecord]],
                  title: str = "repro bench report") -> str:
    """The full report as one self-contained HTML document."""
    sections = [
        _figure_section(figure, runs)
        for figure, runs in sorted(trajectories.items()) if runs
    ]
    total_runs = sum(len(runs) for runs in trajectories.values())
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        "<meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f'<p class="meta">{len(sections)} figure(s), '
        f"{total_runs} recorded run(s). Sparklines are oldest &rarr; "
        "newest; the red series is the worst deviation from the paper's "
        "published numbers.</p>"
        + "\n".join(sections)
        + "<footer>generated by <code>repro bench report</code></footer>"
        "</body></html>\n")


def write_report(trajectories: Mapping[str, Sequence[BenchRecord]],
                 path: str | Path,
                 title: str = "repro bench report") -> Path:
    """Render and write the report; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(trajectories, title=title),
                    encoding="utf-8")
    return path


def merge_current(trajectories: Mapping[str, list[BenchRecord]],
                  current: Iterable[BenchRecord]) -> dict[str, list[BenchRecord]]:
    """Trajectories with the current run appended as the newest point."""
    merged: dict[str, list[BenchRecord]] = {
        figure: list(runs) for figure, runs in trajectories.items()}
    for record in current:
        merged.setdefault(record.figure, []).append(record)
    return merged


__all__ = ["sparkline", "render_report", "write_report", "merge_current"]
