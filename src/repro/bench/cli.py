"""The ``repro bench`` verb family.

* ``repro bench run`` — execute the bench suite (pytest-benchmark under
  the hood); every bench emits a schema-versioned JSON record into
  ``benchmarks/results/``.
* ``repro bench compare`` — classify the fresh records against the
  committed ``BENCH_<figure>.json`` trajectories; ``--fail-on-regression``
  turns a regression into a non-zero exit (the CI gate).
* ``repro bench update-baseline`` — append the fresh records to the
  trajectories, making them the new committed baseline.
* ``repro bench report`` — render the trajectories (plus the current
  run) into one self-contained HTML file with per-figure sparklines.
* ``repro bench explain`` — root-cause one figure metric's movement:
  re-run the point under the candidate and baseline configurations,
  digest-diff the runs (:mod:`repro.obs.diff`), and attach the
  attribution to the record. Exit codes mirror ``repro diff``:
  2 = attributed, 0 = identical, 1 = error.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.bench.compare import compare_records, render_comparison
from repro.bench.trajectory import (
    append_records,
    load_all_trajectories,
    load_result_records,
)
from repro.bench.record import QUICK_BENCH_MS
from repro.errors import ReproError


def add_bench_parser(commands) -> None:
    """Register the ``bench`` subcommand tree on the CLI parser."""
    bench = commands.add_parser(
        "bench", help="machine-readable bench records, regression "
                      "gates, and reports")
    verbs = bench.add_subparsers(dest="bench_command", required=True)

    run = verbs.add_parser(
        "run", help="run the bench suite; each bench writes a JSON "
                    "record next to its .txt report")
    run.add_argument("--quick", action="store_true",
                     help=f"short traces ({QUICK_BENCH_MS:g} ms) for a "
                          "smoke-speed pass")
    run.add_argument("--bench-ms", type=float, default=None,
                     help="explicit trace duration in ms (overrides "
                          "--quick and $REPRO_BENCH_MS)")
    run.add_argument("--figure", action="append", default=None,
                     help="only benches whose file name matches this "
                          "figure id (repeatable), e.g. --figure fig5")
    run.add_argument("--jobs", type=int, default=None,
                     help="worker processes for prefetched grids")
    run.add_argument("--profile", action="store_true",
                     help="profile every engine run (REPRO_PROFILE=1); "
                          "folded hot paths land in the JSON records")
    run.add_argument("--cache", action="store_true",
                     help="persist results in the on-disk cache "
                          "(REPRO_BENCH_CACHE=1)")
    run.add_argument("--benchmarks-dir", default="benchmarks",
                     help="bench suite location (default: benchmarks/)")

    compare = verbs.add_parser(
        "compare", help="classify the current records against the "
                        "committed BENCH_<figure>.json baselines")
    _add_location_args(compare)
    compare.add_argument("--fail-on-regression", action="store_true",
                         help="exit non-zero when any metric regressed")
    compare.add_argument("--wall-tolerance", type=float, default=None,
                         help="override the relative wall-time band "
                              "(e.g. 0.6 = regress only beyond +60%%)")
    compare.add_argument("-v", "--verbose", action="store_true",
                         help="itemise every verdict, not just "
                              "regressions")

    update = verbs.add_parser(
        "update-baseline", help="append the current records to the "
                                "trajectory files")
    _add_location_args(update)
    update.add_argument("--figure", action="append", default=None,
                        help="only records of this figure (repeatable)")

    report = verbs.add_parser(
        "report", help="render trajectories + current run to one "
                       "self-contained HTML file")
    _add_location_args(report)
    report.add_argument("-o", "--out", default="bench_report.html",
                        help="output HTML path")
    report.add_argument("--title", default="repro bench report")
    report.add_argument("--no-current", action="store_true",
                        help="report the committed trajectories only")

    explain = verbs.add_parser(
        "explain", help="root-cause one metric's movement by re-running "
                        "the point and digest-diffing it against the "
                        "committed baseline (exit 2 = attributed)")
    explain.add_argument("figure", help="figure id, e.g. fig5")
    explain.add_argument("--metric", default=None,
                         help="metric name (e.g. "
                              "'OLTP-St/dma-ta-pl/cp=0.02'); default: "
                              "the worst-deviating paper-tied metric")
    _add_location_args(explain)
    explain.add_argument("--no-write", action="store_true",
                         help="print the attribution without touching "
                              "the record JSON")


def _add_location_args(parser) -> None:
    parser.add_argument("--results-dir", default="benchmarks/results",
                        help="where the current run's JSON records live")
    parser.add_argument("--root", default=".",
                        help="directory holding the BENCH_<figure>.json "
                             "trajectory files")


def cmd_bench(args) -> int:
    handler = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "update-baseline": _cmd_update_baseline,
        "report": _cmd_report,
        "explain": _cmd_explain,
    }[args.bench_command]
    return handler(args)


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------

def _select_bench_files(bench_dir: Path,
                        figures: list[str] | None) -> list[Path]:
    files = sorted(bench_dir.glob("bench_*.py"))
    if not files:
        raise ReproError(f"no bench_*.py files under {bench_dir}")
    if not figures:
        return files
    selected: list[Path] = []
    for figure in figures:
        matches = [f for f in files if figure in f.stem]
        if not matches:
            raise ReproError(
                f"no bench file matches figure {figure!r} under "
                f"{bench_dir} (have: "
                f"{', '.join(f.stem for f in files)})")
        selected.extend(m for m in matches if m not in selected)
    return selected


def _cmd_run(args) -> int:
    bench_dir = Path(args.benchmarks_dir)
    if not bench_dir.is_dir():
        raise ReproError(
            f"benchmarks directory {bench_dir} not found; run from the "
            "repository root or pass --benchmarks-dir")
    files = _select_bench_files(bench_dir, args.figure)

    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p)
    if args.bench_ms is not None:
        env["REPRO_BENCH_MS"] = f"{args.bench_ms:g}"
    elif args.quick:
        env["REPRO_BENCH_MS"] = f"{QUICK_BENCH_MS:g}"
    if args.jobs is not None:
        env["REPRO_BENCH_JOBS"] = str(args.jobs)
    if args.profile:
        env["REPRO_PROFILE"] = "1"
    if args.cache:
        env["REPRO_BENCH_CACHE"] = "1"

    command = [sys.executable, "-m", "pytest", "--benchmark-only", "-q",
               *map(str, files)]
    print(f"running {len(files)} bench file(s) "
          f"(REPRO_BENCH_MS={env.get('REPRO_BENCH_MS', 'default')}"
          f"{', profiled' if args.profile else ''}) ...")
    completed = subprocess.run(command, env=env)
    results_dir = bench_dir / "results"
    if completed.returncode == 0:
        records = load_result_records(results_dir)
        print(f"\nwrote {len(records)} JSON record(s) under "
              f"{results_dir}/ — next: `repro bench compare`")
    return completed.returncode


# ---------------------------------------------------------------------------
# compare / update-baseline / report
# ---------------------------------------------------------------------------

def _current_records(args):
    results_dir = Path(args.results_dir)
    if not results_dir.is_dir():
        raise ReproError(
            f"results directory {results_dir} not found; run "
            "`repro bench run` first")
    records = load_result_records(results_dir)
    if not records:
        raise ReproError(
            f"no JSON records under {results_dir}; run "
            "`repro bench run` first")
    return records


def _cmd_compare(args) -> int:
    records = _current_records(args)
    trajectories = load_all_trajectories(args.root)
    if not trajectories:
        print(f"warning: no BENCH_*.json trajectories under {args.root}; "
              "every metric is unbaselined (seed them with "
              "`repro bench update-baseline`)", file=sys.stderr)
    comparison = compare_records(records, trajectories,
                                 wall_rel=args.wall_tolerance)
    print(render_comparison(comparison, verbose=args.verbose))
    if comparison.regressions and args.fail_on_regression:
        print(f"\n{len(comparison.regressions)} regression(s) — failing "
              "(--fail-on-regression)", file=sys.stderr)
        return 1
    return 0


def _cmd_update_baseline(args) -> int:
    records = _current_records(args)
    if args.figure:
        records = [r for r in records if r.figure in set(args.figure)]
        if not records:
            raise ReproError(
                f"no current records match figures {args.figure}")
    written = append_records(records, root=args.root)
    for path in written:
        print(f"updated {path}")
    print(f"{len(records)} record(s) appended across "
          f"{len(written)} trajectory file(s)")
    return 0


def _cmd_explain(args) -> int:
    from repro.bench.explain import cmd_explain

    return cmd_explain(args)


def _cmd_report(args) -> int:
    from repro.bench.report import merge_current, write_report

    trajectories = load_all_trajectories(args.root)
    if not args.no_current:
        try:
            current = _current_records(args)
        except ReproError:
            current = []
        trajectories = merge_current(trajectories, current)
    if not trajectories:
        raise ReproError("nothing to report: no trajectories and no "
                         "current records")
    path = write_report(trajectories, args.out, title=args.title)
    figures = len(trajectories)
    runs = sum(len(r) for r in trajectories.values())
    print(f"wrote {path}: {figures} figure(s), {runs} run(s)")
    return 0


__all__ = ["add_bench_parser", "cmd_bench", "QUICK_BENCH_MS"]
