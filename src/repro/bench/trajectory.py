"""Trajectory files: the committed bench history, one file per figure.

``BENCH_<figure>.json`` at the repository root holds the append-only run
history of every record belonging to that figure. The files are the
*baseline* side of ``repro bench compare``: a fresh run's records (under
``benchmarks/results/*.json``) are classified against the trajectory's
committed entries, and ``repro bench update-baseline`` appends the fresh
records so they become the baseline for the next change.

All writes are atomic (temp file + rename): an interrupted update can
never leave a truncated trajectory that later parses as a bogus
baseline.
"""

from __future__ import annotations

import json
import logging
import os
import re
import tempfile
from pathlib import Path
from typing import Iterable

from repro.bench.record import SCHEMA_VERSION, BenchRecord
from repro.errors import BenchFormatError

logger = logging.getLogger(__name__)

#: Trajectory file name pattern at the repository root.
TRAJECTORY_PATTERN = "BENCH_*.json"

#: Keep at most this many runs per record name in one trajectory file.
MAX_RUNS_PER_RECORD = 50


def trajectory_path(figure: str, root: str | Path = ".") -> Path:
    """Where the trajectory of ``figure`` lives under ``root``."""
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", figure)
    return Path(root) / f"BENCH_{safe}.json"


def write_json_atomic(path: str | Path, payload: object) -> Path:
    """Serialise ``payload`` to ``path`` via a temp file + rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=False)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_trajectory(path: str | Path) -> list[BenchRecord]:
    """Every run recorded in one trajectory file, oldest first.

    Raises:
        BenchFormatError: when the file is not valid JSON, not a
            trajectory object, or holds records of a different schema
            generation. A missing file is simply an empty trajectory.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchFormatError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(obj, dict) or not isinstance(obj.get("runs"), list):
        raise BenchFormatError(f"{path}: not a trajectory object "
                               "(expected {'schema', 'figure', 'runs'})")
    if obj.get("schema") != SCHEMA_VERSION:
        raise BenchFormatError(
            f"{path}: trajectory schema {obj.get('schema')!r} is not the "
            f"supported version {SCHEMA_VERSION}")
    return [BenchRecord.from_dict(entry, where=f"{path}: runs[{index}]")
            for index, entry in enumerate(obj["runs"])]


def append_records(records: Iterable[BenchRecord],
                   root: str | Path = ".") -> list[Path]:
    """Append ``records`` to their figures' trajectory files.

    Records are grouped by figure; each figure file is rewritten once,
    atomically, with the new runs appended in order. Per record name the
    history is capped at :data:`MAX_RUNS_PER_RECORD` (oldest dropped), so
    trajectory files stay reviewable in a diff.

    Returns the list of paths written.
    """
    by_figure: dict[str, list[BenchRecord]] = {}
    for record in records:
        by_figure.setdefault(record.figure, []).append(record)
    written: list[Path] = []
    for figure, fresh in by_figure.items():
        path = trajectory_path(figure, root)
        runs = load_trajectory(path) + fresh
        runs = _cap_history(runs)
        write_json_atomic(path, {
            "schema": SCHEMA_VERSION,
            "figure": figure,
            "runs": [r.to_dict() for r in runs],
        })
        logger.info("trajectory %s: now %d runs", path, len(runs))
        written.append(path)
    return written


def _cap_history(runs: list[BenchRecord]) -> list[BenchRecord]:
    """Drop the oldest runs beyond the per-record-name cap."""
    counts: dict[str, int] = {}
    for run in runs:
        counts[run.name] = counts.get(run.name, 0) + 1
    kept: list[BenchRecord] = []
    for run in runs:
        if counts[run.name] > MAX_RUNS_PER_RECORD:
            counts[run.name] -= 1
            continue
        kept.append(run)
    return kept


def load_all_trajectories(root: str | Path = ".") -> dict[str, list[BenchRecord]]:
    """``figure -> runs`` over every ``BENCH_*.json`` under ``root``."""
    out: dict[str, list[BenchRecord]] = {}
    for path in sorted(Path(root).glob(TRAJECTORY_PATTERN)):
        runs = load_trajectory(path)
        if runs:
            out[runs[0].figure] = runs
    return out


def load_result_records(results_dir: str | Path) -> list[BenchRecord]:
    """Every ``*.json`` record under a bench results directory."""
    records: list[BenchRecord] = []
    for path in sorted(Path(results_dir).glob("*.json")):
        try:
            obj = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BenchFormatError(f"{path}: not valid JSON ({exc})") from exc
        records.append(BenchRecord.from_dict(obj, where=str(path)))
    return records


__all__ = [
    "MAX_RUNS_PER_RECORD", "TRAJECTORY_PATTERN", "trajectory_path",
    "write_json_atomic", "load_trajectory", "append_records",
    "load_all_trajectories", "load_result_records",
]
