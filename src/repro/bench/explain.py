"""``repro bench explain``: root-cause one bench metric's movement.

``repro bench compare`` classifies a metric as regressed/deviating but
stops there. This module turns the verdict into an attribution: it
re-runs the flagged figure point under the *candidate* record's
configuration and under the *baseline* record's configuration, diffs
the two runs' per-epoch digest chains
(:func:`repro.obs.diff.diff_runs`), and attributes the metric delta to

* the first divergent epoch and state field (when the two
  configurations share a duration — a true behavioural regression), or
* the truncation horizon (when the candidate is a ``--quick`` record
  compared against a full-length baseline: the short run's chain is a
  prefix of the long run's, so the divergence sits at the run-length
  boundary and the delta is a short-horizon artefact), plus
* the per-bucket energy-fraction shifts between the two runs, ranked by
  magnitude — which residency bucket the energy moved into.

The attribution is attached to the candidate record's JSON (additive
``explain`` block, like ``fleet``) and summarised in one greppable
``bench.explain:`` line. Exit codes mirror ``repro diff``: 2 =
attributed, 0 = nothing to explain (identical), 1 = error.

Only figure points that map back to a (trace, technique, cp_limit)
simulation can be re-run; currently that is the fig 5 savings grid
(``<trace>/<technique>/cp=<cp>`` metric names). Other figures raise a
clear :class:`~repro.errors.DiffError`.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Any

from repro.bench.record import BenchRecord, Metric
from repro.bench.trajectory import (
    load_result_records,
    load_trajectory,
    trajectory_path,
    write_json_atomic,
)
from repro.errors import DiffError, ReproError
from repro.obs.diff import SimRunSpec, diff_runs
from repro.sim.run import simulate
from repro.traces.oltp import oltp_database_trace, oltp_storage_trace
from repro.traces.synthetic import (
    synthetic_database_trace,
    synthetic_storage_trace,
)

#: fig 5 metric-name grammar: ``<trace>/<technique>/cp=<cp>``.
_FIG5_METRIC = re.compile(
    r"^(?P<trace>[^/]+)/(?P<technique>nopm|baseline|dma-ta|pl|dma-ta-pl)"
    r"/cp=(?P<cp>[0-9.eE+-]+)$")

#: The paper's four evaluation traces, as the bench suite builds them
#: (generator defaults; only the duration varies per record).
_TRACE_MAKERS = {
    "OLTP-St": oltp_storage_trace,
    "OLTP-Db": oltp_database_trace,
    "Synthetic-St": synthetic_storage_trace,
    "Synthetic-Db": synthetic_database_trace,
}

#: Residency buckets ranked in the energy attribution.
_ENERGY_BUCKETS = ("serving_dma", "serving_proc", "idle_dma",
                   "idle_threshold", "transition", "low_power",
                   "migration")


def _pick_record(records: list[BenchRecord], figure: str) -> BenchRecord:
    matches = [r for r in records if r.figure == figure]
    if not matches:
        have = sorted({r.figure for r in records})
        raise DiffError(f"no current record for figure {figure!r} "
                        f"(have: {', '.join(have) or 'none'}); run "
                        "`repro bench run` first")
    return matches[-1]


def _pick_metric(record: BenchRecord, metric_name: str | None) -> Metric:
    if metric_name is not None:
        for metric in record.metrics:
            if metric.name == metric_name:
                return metric
        raise DiffError(f"record {record.name} has no metric "
                        f"{metric_name!r}")
    tied = [m for m in record.metrics if m.deviation is not None]
    if not tied:
        raise DiffError(f"record {record.name} has no paper-tied metric; "
                        "name one with --metric")
    return max(tied, key=lambda m: abs(m.deviation))


def _pick_baseline(record: BenchRecord, metric: Metric,
                   root: str | Path) -> BenchRecord | None:
    """The committed run the candidate metric is explained against.

    Prefers the most recent trajectory run of the same record name that
    carries the metric — same ``bench_ms`` first (a true regression),
    else any duration (the quick-vs-full fidelity comparison).
    """
    history = [r for r in load_trajectory(trajectory_path(record.figure,
                                                          root))
               if r.name == record.name
               and any(m.name == metric.name for m in r.metrics)]
    if not history:
        return None
    same_ms = [r for r in history
               if r.bench_ms is not None and record.bench_ms is not None
               and abs(r.bench_ms - record.bench_ms) < 1e-9
               and r.created != record.created]
    return (same_ms or history)[-1]


def _metric_value(record: BenchRecord, name: str) -> float | None:
    for metric in record.metrics:
        if metric.name == name:
            return metric.value
    return None


def _savings_runs(trace_name: str, technique: str, cp: float,
                  bench_ms: float):
    """Re-run one fig 5 grid point: (baseline run, technique run)."""
    maker = _TRACE_MAKERS.get(trace_name)
    if maker is None:
        raise DiffError(f"trace {trace_name!r} is not one of the paper's "
                        f"evaluation traces {tuple(_TRACE_MAKERS)}")
    trace = maker(duration_ms=bench_ms)
    base = simulate(trace, technique="baseline")
    run = simulate(trace, technique=technique, cp_limit=cp)
    return trace, base, run


def explain_figure(figure: str,
                   metric_name: str | None = None,
                   results_dir: str | Path = "benchmarks/results",
                   root: str | Path = ".",
                   write: bool = True) -> tuple[int, dict[str, Any]]:
    """Attribute one figure metric's movement; returns (exit code,
    explain block). The block is attached to the candidate record's
    JSON under ``benchmarks/results/`` unless ``write`` is false.
    """
    records = load_result_records(results_dir)
    record = _pick_record(records, figure)
    metric = _pick_metric(record, metric_name)
    parsed = _FIG5_METRIC.match(metric.name)
    if parsed is None:
        raise DiffError(
            f"metric {metric.name!r} does not map back to a re-runnable "
            "simulation point (supported: fig 5 "
            "'<trace>/<technique>/cp=<cp>' metrics)")
    trace_name = parsed.group("trace")
    technique = parsed.group("technique")
    cp = float(parsed.group("cp"))
    cand_ms = record.bench_ms
    if cand_ms is None:
        raise DiffError(f"record {record.name} has no bench_ms metadata; "
                        "cannot reproduce its configuration")

    baseline = _pick_baseline(record, metric, root)
    base_ms = baseline.bench_ms if baseline is not None else None
    reference = (_metric_value(baseline, metric.name)
                 if baseline is not None else metric.expected)

    # Re-run the candidate point, and the baseline configuration when it
    # differs (otherwise the candidate runs double as the baseline runs).
    trace_c, base_c, run_c = _savings_runs(trace_name, technique, cp,
                                           cand_ms)
    value_c = run_c.energy_savings_vs(base_c)
    cross_duration = base_ms is not None and abs(base_ms - cand_ms) > 1e-9
    if cross_duration:
        _trace_b, base_b, run_b = _savings_runs(trace_name, technique, cp,
                                                base_ms)
        value_b = run_b.energy_savings_vs(base_b)
    else:
        run_b, value_b = run_c, value_c

    # Digest-diff the two technique runs to localise where their
    # behaviour first departs.
    maker = _TRACE_MAKERS[trace_name]
    spec_c = SimRunSpec(trace=trace_c, technique=technique, cp_limit=cp)
    spec_b = SimRunSpec(trace=maker(duration_ms=base_ms)
                        if cross_duration else trace_c,
                        technique=technique, cp_limit=cp)
    report = diff_runs(spec_c.runner(), spec_b.runner(),
                       label_a=f"{trace_name}@{cand_ms:g}ms",
                       label_b=f"{trace_name}@{base_ms:g}ms"
                       if cross_duration else f"{trace_name} (baseline)",
                       collect_causes=False)

    # Energy attribution: which residency buckets the energy moved
    # between, as fractions of each run's total.
    fractions_c = run_c.energy.fractions()
    fractions_b = run_b.energy.fractions()
    attribution = sorted(
        ({"bucket": bucket,
          "candidate_frac": fractions_c.get(bucket, 0.0),
          "baseline_frac": fractions_b.get(bucket, 0.0),
          "delta": (fractions_c.get(bucket, 0.0)
                    - fractions_b.get(bucket, 0.0))}
         for bucket in _ENERGY_BUCKETS),
        key=lambda row: -abs(row["delta"]))

    if report.identical and not cross_duration:
        status = "identical"
        summary = (f"{metric.name}: the candidate run reproduces the "
                   "baseline configuration exactly (identical digest "
                   "chains) — nothing to attribute")
    elif cross_duration:
        status = "attributed"
        top = attribution[0]
        prefix = ("the runs share an identical prefix"
                  if report.divergence is not None
                  and "missing" in report.divergence.name
                  else f"behaviour first diverges at epoch {report.epoch}")
        summary = (
            f"{metric.name}: {value_c:+.3f} at {cand_ms:g} ms vs "
            f"{value_b:+.3f} at {base_ms:g} ms — {prefix}; the shorter "
            f"horizon shifts energy "
            f"{'into' if top['delta'] > 0 else 'out of'} "
            f"'{top['bucket']}' ({top['delta']:+.3f} of total), a "
            "trace-truncation artefact, not a policy change")
    else:
        status = "attributed"
        top = attribution[0]
        summary = (f"{metric.name}: {value_c:+.3f} vs baseline "
                   f"{value_b:+.3f}; first divergent epoch "
                   f"{report.epoch}, field "
                   f"{report.divergence.name if report.divergence else '?'}"
                   f"; largest energy shift: '{top['bucket']}' "
                   f"({top['delta']:+.3f})")

    explain: dict[str, Any] = {
        "metric": metric.name,
        "status": status,
        "value": value_c,
        "expected": metric.expected,
        "baseline_value": value_b if baseline is not None else None,
        "reference_value": reference,
        "bench_ms": cand_ms,
        "baseline_bench_ms": base_ms,
        "baseline_created": baseline.created if baseline else None,
        "divergence": report.as_dict(),
        "energy_attribution": attribution[:4],
        "summary": summary,
    }

    if write:
        record.explain = explain
        write_json_atomic(Path(results_dir) / f"{record.name}.json",
                          record.to_dict())
    return (0 if status == "identical" else 2), explain


def render_explain(figure: str, explain: dict[str, Any]) -> str:
    """Human-readable report plus the greppable ``bench.explain:`` line."""
    lines = [f"bench explain: {figure} / {explain['metric']}"]
    lines.append(f"  candidate: {explain['value']:+.4f} "
                 f"@ {explain['bench_ms']:g} ms"
                 + (f" (paper expects {explain['expected']:+.4f})"
                    if explain.get("expected") is not None else ""))
    if explain.get("baseline_value") is not None:
        lines.append(f"  baseline:  {explain['baseline_value']:+.4f} "
                     f"@ {explain['baseline_bench_ms']:g} ms "
                     f"({explain.get('baseline_created') or 'committed'})")
    divergence = explain.get("divergence", {})
    if divergence.get("identical"):
        lines.append("  digest chains identical")
    elif divergence.get("epoch") is not None:
        lines.append(f"  first divergent epoch: {divergence['epoch']}")
    for row in explain.get("energy_attribution", [])[:4]:
        lines.append(f"    {row['bucket']:<15} candidate "
                     f"{row['candidate_frac']:.3f}  baseline "
                     f"{row['baseline_frac']:.3f}  ({row['delta']:+.3f})")
    lines.append(f"  {explain['summary']}")
    lines.append(f"bench.explain: figure={figure} "
                 f"metric={explain['metric']} status={explain['status']} "
                 f"epoch={divergence.get('epoch')} "
                 f"value={explain['value']:.4f}")
    return "\n".join(lines)


def cmd_explain(args) -> int:
    """CLI glue (``repro bench explain``); handles its own errors so
    exit 2 stays reserved for 'attributed'."""
    try:
        code, explain = explain_figure(
            args.figure, metric_name=args.metric,
            results_dir=args.results_dir, root=args.root,
            write=not args.no_write)
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_explain(args.figure, explain))
    if not args.no_write:
        print(f"(explain block attached to the {args.figure} record "
              f"under {args.results_dir})")
    return code


__all__ = ["explain_figure", "render_explain", "cmd_explain"]
