"""repro — a reproduction of "DMA-Aware Memory Energy Management" (HPCA 2006).

A trace-driven memory energy simulator for data servers, together with the
paper's two DMA-aware techniques:

* **DMA-TA** (temporal alignment) — the memory controller gathers DMA
  transfers from different I/O buses onto the same memory chip and
  sequences them in lockstep, eliminating the active-idle cycles caused by
  the memory/I-O bandwidth mismatch, under a soft ``(1 + mu) * T``
  average-service-time guarantee.
* **PL** (popularity-based layout) — pages are clustered onto a few hot
  chips by DMA popularity, increasing alignment opportunity and letting
  cold chips sleep.

Quickstart::

    from repro import oltp_storage_trace, simulate

    trace = oltp_storage_trace(duration_ms=20)
    baseline = simulate(trace, technique="baseline")
    aligned = simulate(trace, technique="dma-ta-pl", cp_limit=0.10)
    print(aligned.energy_savings_vs(baseline))
"""

from repro.config import (
    BusConfig,
    MemoryConfig,
    PopularityLayoutConfig,
    ProcessorConfig,
    SimulationConfig,
    TemporalAlignmentConfig,
)
from repro.core import (
    BaselineController,
    CPLimitCalibration,
    MemoryController,
    PopularityGrouper,
    PopularityTracker,
    SlackAccount,
    TemporalAlignmentController,
    calibrate_mu,
)
from repro.energy import (
    AlwaysOnPolicy,
    DynamicThresholdPolicy,
    EnergyBreakdown,
    PowerModel,
    PowerState,
    SelfTuningPolicy,
    StaticPolicy,
    TimeBreakdown,
    break_even_cycles,
    ddr_sdram_model,
    default_dynamic_policy,
    rdram_1600_model,
)
from repro.errors import (
    ConfigurationError,
    GuaranteeViolationError,
    LayoutError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.obs import (
    JsonlTracer,
    MetricsRegistry,
    MetricsReport,
    NullTracer,
    RingTracer,
    Tracer,
    chrome_trace,
    render_metrics,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim import FluidEngine, PreciseEngine, SimulationResult, simulate
from repro.traces import (
    ClientRequest,
    DMATransfer,
    ProcessorBurst,
    Trace,
    TraceStats,
    characterize,
    filter_source,
    merge_traces,
    oltp_database_trace,
    oltp_storage_trace,
    popularity_cdf,
    read_trace,
    resize_transfers,
    scale_intensity,
    strip_clients,
    synthetic_database_trace,
    synthetic_storage_trace,
    write_trace,
)

__version__ = "1.0.0"

__all__ = [
    # configuration
    "SimulationConfig", "MemoryConfig", "BusConfig", "ProcessorConfig",
    "TemporalAlignmentConfig", "PopularityLayoutConfig",
    # energy
    "PowerState", "PowerModel", "EnergyBreakdown", "TimeBreakdown",
    "rdram_1600_model", "ddr_sdram_model", "default_dynamic_policy",
    "DynamicThresholdPolicy", "StaticPolicy", "AlwaysOnPolicy",
    "SelfTuningPolicy", "break_even_cycles",
    # core techniques
    "MemoryController", "BaselineController", "TemporalAlignmentController",
    "SlackAccount", "PopularityTracker", "PopularityGrouper",
    "calibrate_mu", "CPLimitCalibration",
    # simulation
    "simulate", "SimulationResult", "FluidEngine", "PreciseEngine",
    # observability
    "Tracer", "NullTracer", "RingTracer", "JsonlTracer",
    "MetricsRegistry", "MetricsReport", "render_metrics",
    "chrome_trace", "write_chrome_trace", "validate_chrome_trace",
    # traces
    "Trace", "DMATransfer", "ProcessorBurst", "ClientRequest",
    "read_trace", "write_trace", "characterize", "TraceStats",
    "popularity_cdf", "synthetic_storage_trace", "synthetic_database_trace",
    "oltp_storage_trace", "oltp_database_trace",
    "scale_intensity", "filter_source", "strip_clients", "merge_traces",
    "resize_transfers",
    # errors
    "ReproError", "ConfigurationError", "TraceError", "SimulationError",
    "GuaranteeViolationError", "LayoutError",
]
