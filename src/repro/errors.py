"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. The subclasses distinguish
configuration mistakes (caught before a simulation starts) from runtime
model violations (bugs or impossible trace input discovered mid-run).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class TraceError(ReproError):
    """A trace file or trace record is malformed."""


class SimulationError(ReproError):
    """An internal invariant of the simulation was violated."""


class GuaranteeViolationError(SimulationError):
    """The DMA-TA performance guarantee was violated.

    Raised only when a simulation is run with ``strict_guarantee=True``;
    otherwise violations are recorded on the result object. The paper's
    scheme never violates the guarantee, so strict mode is how the test
    suite asserts that property.
    """


class AuditError(SimulationError):
    """An audited invariant failed while the auditor ran in strict mode.

    Carries the triggering :class:`~repro.obs.audit.AuditViolation` as
    ``violation``; raised at the instrumentation site that emitted the
    offending event, aborting the run mid-simulation (fail fast).
    """

    def __init__(self, violation) -> None:
        super().__init__(f"{violation.kind}: {violation.message}")
        self.violation = violation


class TelemetryError(ReproError):
    """The live-telemetry sampler was misused (double bind, sample
    before bind, ...). Never raised on a correctly wired run."""


class DiffError(ReproError):
    """A differential-observability operation failed (digest recorder
    misuse, malformed trail file, un-diffable run pair, ...)."""


class LayoutError(ReproError):
    """A page layout operation is invalid (unknown page, full chip, ...)."""


class BenchFormatError(ReproError):
    """A bench record or trajectory file is malformed or schema-stale."""
