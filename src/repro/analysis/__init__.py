"""Analysis helpers: metrics, sweeps, and table rendering for the benches."""

from repro.analysis.metrics import (
    energy_savings,
    breakdown_fractions,
    utilization_series,
)
from repro.analysis.sweep import SweepPoint, sweep_cp_limit, sweep_errors, run_pair
from repro.analysis.tables import format_table, format_series, format_breakdown
from repro.analysis.charts import bar_chart, line_chart, savings_chart
from repro.analysis.timeline import activity_share, render_heatmap

__all__ = [
    "bar_chart",
    "line_chart",
    "savings_chart",
    "render_heatmap",
    "activity_share",
    "energy_savings",
    "breakdown_fractions",
    "utilization_series",
    "SweepPoint",
    "sweep_cp_limit",
    "sweep_errors",
    "run_pair",
    "format_table",
    "format_series",
    "format_breakdown",
]
