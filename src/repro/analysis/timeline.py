"""Chip-activity timelines: recording and text-heatmap rendering.

When a simulation runs with ``record_timeline=True`` (fluid engine), each
chip logs its busy intervals with their serving fractions. The heatmap
renders one character row per chip over the simulated horizon — a direct
visual of what the techniques do: the baseline's traffic speckles every
row; after PL, one or two hot rows darken while the rest go blank, and
under DMA-TA the speckles fuse into short dense bursts.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError

#: Shade ramp from idle to fully utilised.
SHADES = " .:-=+*#"

Interval = tuple[float, float, float]


def bucketize(intervals: Sequence[Interval], start: float, end: float,
              buckets: int) -> list[float]:
    """Mean busy fraction of each of ``buckets`` equal time windows."""
    if buckets <= 0:
        raise ConfigurationError("buckets must be positive")
    if end <= start:
        raise ConfigurationError("end must exceed start")
    width = (end - start) / buckets
    load = [0.0] * buckets
    for t0, t1, fraction in intervals:
        lo = max(t0, start)
        hi = min(t1, end)
        if hi <= lo:
            continue
        first = int((lo - start) / width)
        last = min(buckets - 1, int((hi - start) / width))
        for index in range(first, last + 1):
            b0 = start + index * width
            b1 = b0 + width
            overlap = min(hi, b1) - max(lo, b0)
            if overlap > 0:
                load[index] += overlap * fraction / width
    return [min(1.0, value) for value in load]


def render_row(intervals: Sequence[Interval], start: float, end: float,
               width: int) -> str:
    """One chip's timeline as a string of shade characters.

    Any non-negligible activity gets at least the lightest visible shade
    — a 7.7-us transfer inside a 140-us bucket is real traffic even if
    its mean load rounds to zero.
    """
    loads = bucketize(intervals, start, end, width)
    top = len(SHADES) - 1
    chars = []
    for value in loads:
        level = round(value * top)
        if value > 1e-3 and level == 0:
            level = 1
        chars.append(SHADES[level])
    return "".join(chars)


def render_heatmap(timelines: dict[int, Sequence[Interval]],
                   duration_cycles: float, width: int = 72,
                   title: str | None = None) -> str:
    """All chips' activity as a labelled text heatmap.

    Args:
        timelines: ``chip_id -> busy intervals`` (a result's
            :attr:`~repro.sim.results.SimulationResult.timeline`).
        duration_cycles: the simulated horizon.
        width: characters per row.
    """
    if not timelines:
        return "(no timeline recorded; run with record_timeline=True)"
    lines = [title] if title else []
    label_width = len(f"chip {max(timelines)}")
    for chip_id in sorted(timelines):
        row = render_row(timelines[chip_id], 0.0, duration_cycles, width)
        lines.append(f"{f'chip {chip_id}':<{label_width}} |{row}|")
    ms = duration_cycles / 1.6e9 * 1e3
    lines.append(f"{'':<{label_width}}  0 {'-' * max(0, width - 12)} "
                 f"{ms:.1f} ms")
    lines.append(f"shade: '{SHADES}' = idle .. fully serving")
    return "\n".join(lines)


def activity_share(timelines: dict[int, Sequence[Interval]],
                   duration_cycles: float) -> dict[int, float]:
    """Fraction of the horizon each chip spent busy (any load)."""
    shares = {}
    for chip_id, intervals in timelines.items():
        busy = sum(min(t1, duration_cycles) - t0
                   for t0, t1, _ in intervals if t0 < duration_cycles)
        shares[chip_id] = busy / duration_cycles if duration_cycles else 0.0
    return shares
