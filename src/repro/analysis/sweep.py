"""Parameter-sweep harness used by the figure benches.

Sweeps are executed through :mod:`repro.exec`: every point is one
:class:`~repro.exec.jobs.SimJob`, the baseline is a single shared job
however many points reference it, and callers opt into process-pool
fan-out (``max_workers``) and the on-disk result cache (``cache``)
without changing the shape of the results. A failing point is contained:
it comes back as a :class:`SweepPoint` with ``error`` set while every
other point completes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimulationConfig
from repro.exec.cache import ResultCache
from repro.exec.jobs import SimJob
from repro.exec.runner import run_many
from repro.obs.audit import audit_result, audit_summary
from repro.sim.results import SimulationResult
from repro.sim.run import simulate, validate_simulation_args
from repro.traces.trace import Trace


@dataclass(frozen=True)
class SweepPoint:
    """One point of a technique-vs-baseline sweep.

    Attributes:
        x: the sweep variable (CP-Limit, transfer rate, ratio, ...).
        technique: the technique name.
        savings: fractional energy savings over the shared baseline
            (``nan`` if this point or the baseline failed).
        result: the full technique run (``None`` if it failed).
        baseline: the shared baseline run (``None`` if it failed).
        error: ``None``, or a one-line description of why this point has
            no result.
        wall_s: wall-clock seconds the worker spent computing this
            point's run (0.0 for cache hits and deduplicated points).
        audit: one-line audit findings from
            :func:`repro.obs.audit.audit_result` on this point's result
            (empty when the result passed or the point failed).
    """

    x: float
    technique: str
    savings: float
    result: SimulationResult | None
    baseline: SimulationResult | None
    error: str | None = None
    wall_s: float = 0.0
    audit: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


def sweep_errors(points: list[SweepPoint]) -> str:
    """A human-readable summary of the failed points ('' if none)."""
    failed = [p for p in points if not p.ok]
    if not failed:
        return ""
    lines = [f"{len(failed)}/{len(points)} sweep points failed:"]
    lines += [f"  x={p.x:g} {p.technique}: {p.error}" for p in failed]
    return "\n".join(lines)


def run_pair(trace: Trace, config: SimulationConfig | None,
             technique: str, cp_limit: float | None = None,
             mu: float | None = None,
             baseline: SimulationResult | None = None,
             engine: str = "fluid") -> tuple[SimulationResult, SimulationResult]:
    """Run ``technique`` and (if not supplied) the baseline on a trace.

    The spec is validated *before* anything runs, so a contradictory
    ``cp_limit``/``mu`` combination raises
    :class:`~repro.errors.ConfigurationError` immediately instead of
    after a wasted baseline run (or, worse, inside a pool worker).
    """
    validate_simulation_args(technique, engine, mu=mu, cp_limit=cp_limit)
    if baseline is None:
        baseline = simulate(trace, config=config, technique="baseline",
                            engine=engine)
    result = simulate(trace, config=config, technique=technique,
                      cp_limit=cp_limit, mu=mu, engine=engine)
    return result, baseline


def sweep_cp_limit(trace: Trace, cp_limits: list[float],
                   techniques: list[str],
                   config: SimulationConfig | None = None,
                   engine: str = "fluid",
                   max_workers: int = 1,
                   cache: ResultCache | None = None,
                   timeout_s: float | None = None,
                   fleet=None) -> list[SweepPoint]:
    """The Figure 5/7 sweep: savings and uf as CP-Limit varies.

    The baseline run is shared across all points (it has no performance
    guarantee, exactly as in the paper: "our techniques' results are
    always compared to the same baseline result").

    Args:
        max_workers: fan the points out over this many worker processes
            (1 = serial; results are identical either way).
        cache: optional on-disk result cache (warm sweeps are free).
        timeout_s: per-point timeout under pool execution.
        fleet: optional :class:`~repro.obs.fleet.FleetCollector` for
            cross-process sweep observability (live dashboard, merged
            fleet trace, stalled-worker watchdog).

    Returns:
        Points in ``for cp in cp_limits: for technique in techniques``
        order. A point whose run failed carries ``error`` (and ``nan``
        savings) while the rest of the sweep completes.
    """
    baseline_job = SimJob(trace, "baseline", config=config, engine=engine,
                          tag="baseline")
    point_jobs = [
        SimJob(trace, technique, config=config, engine=engine, cp_limit=cp,
               tag=f"cp={cp:g}:{technique}")
        for cp in cp_limits for technique in techniques
    ]
    outcomes = run_many([baseline_job] + point_jobs,
                        max_workers=max_workers, cache=cache,
                        timeout_s=timeout_s, fleet=fleet)
    base, point_outcomes = outcomes[0], outcomes[1:]
    baseline = base.result

    points: list[SweepPoint] = []
    index = 0
    for cp in cp_limits:
        for technique in techniques:
            outcome = point_outcomes[index]
            index += 1
            error = outcome.error
            if error is None and base.error is not None:
                error = f"baseline failed: {base.error}"
            savings = float("nan")
            if error is None and outcome.result is not None \
                    and baseline is not None and baseline.energy_joules > 0:
                savings = 1.0 - (outcome.result.energy_joules
                                 / baseline.energy_joules)
            audit: tuple[str, ...] = ()
            if error is None and outcome.result is not None:
                audit = audit_summary(audit_result(outcome.result))
            points.append(SweepPoint(
                x=cp, technique=technique, savings=savings,
                result=outcome.result, baseline=baseline, error=error,
                wall_s=outcome.wall_s, audit=audit))
    return points
