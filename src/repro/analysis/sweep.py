"""Parameter-sweep harness used by the figure benches."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.run import simulate
from repro.traces.trace import Trace


@dataclass(frozen=True)
class SweepPoint:
    """One point of a technique-vs-baseline sweep.

    Attributes:
        x: the sweep variable (CP-Limit, transfer rate, ratio, ...).
        technique: the technique name.
        savings: fractional energy savings over the shared baseline.
        result: the full technique run.
        baseline: the shared baseline run.
    """

    x: float
    technique: str
    savings: float
    result: SimulationResult
    baseline: SimulationResult


def run_pair(trace: Trace, config: SimulationConfig | None,
             technique: str, cp_limit: float | None = None,
             mu: float | None = None,
             baseline: SimulationResult | None = None,
             engine: str = "fluid") -> tuple[SimulationResult, SimulationResult]:
    """Run ``technique`` and (if not supplied) the baseline on a trace."""
    if baseline is None:
        baseline = simulate(trace, config=config, technique="baseline",
                            engine=engine)
    result = simulate(trace, config=config, technique=technique,
                      cp_limit=cp_limit, mu=mu, engine=engine)
    return result, baseline


def sweep_cp_limit(trace: Trace, cp_limits: list[float],
                   techniques: list[str],
                   config: SimulationConfig | None = None,
                   engine: str = "fluid") -> list[SweepPoint]:
    """The Figure 5/7 sweep: savings and uf as CP-Limit varies.

    The baseline run is shared across all points (it has no performance
    guarantee, exactly as in the paper: "our techniques' results are
    always compared to the same baseline result").
    """
    baseline = simulate(trace, config=config, technique="baseline",
                        engine=engine)
    points: list[SweepPoint] = []
    for cp in cp_limits:
        for technique in techniques:
            result = simulate(trace, config=config, technique=technique,
                              cp_limit=cp, engine=engine)
            points.append(SweepPoint(
                x=cp, technique=technique,
                savings=1.0 - result.energy_joules / baseline.energy_joules,
                result=result, baseline=baseline))
    return points
