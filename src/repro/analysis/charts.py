"""Plain-text charts for terminals and bench reports.

The benches archive their figures as text; these helpers render (x, y)
series and category bars the way the paper's figures read, with no
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError

_BAR = "#"


def bar_chart(values: Mapping[str, float], width: int = 50,
              title: str | None = None, unit: str = "") -> str:
    """Horizontal bars, one per labelled value (zero-anchored)."""
    if width <= 0:
        raise ConfigurationError("width must be positive")
    lines = [title] if title else []
    if not values:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(str(k)) for k in values)
    peak = max((abs(v) for v in values.values()), default=0.0)
    for label, value in values.items():
        length = 0 if peak == 0 else round(abs(value) / peak * width)
        bar = _BAR * length
        sign = "-" if value < 0 else ""
        lines.append(f"{str(label):<{label_width}} | {sign}{bar} "
                     f"{value:.3g}{unit}")
    return "\n".join(lines)


def line_chart(xs: Sequence[float], ys: Sequence[float], height: int = 12,
               width: int = 60, title: str | None = None,
               x_label: str = "x", y_label: str = "y") -> str:
    """A scatter/line rendering of one series on a character grid."""
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must have the same length")
    if height <= 1 or width <= 1:
        raise ConfigurationError("grid must be at least 2x2")
    lines = [title] if title else []
    if not xs:
        return "\n".join(lines + ["(no data)"])

    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = round((x - x_lo) / x_span * (width - 1))
        row = round((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines.append(f"{y_label} [{y_lo:g} .. {y_hi:g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_lo:g} .. {x_hi:g}]")
    return "\n".join(lines)


def savings_chart(points: Mapping[float, float], title: str,
                  x_label: str = "CP-Limit") -> str:
    """A Figure 5-style savings curve: bars per x value, in percent."""
    values = {f"{x:g}": y * 100 for x, y in sorted(points.items())}
    return bar_chart(values, title=title, unit="%")
