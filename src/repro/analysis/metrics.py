"""Derived metrics over simulation results."""

from __future__ import annotations

from repro.sim.results import SimulationResult


def energy_savings(baseline: SimulationResult,
                   technique: SimulationResult) -> float:
    """Fractional energy saved by ``technique`` over ``baseline``.

    This is the Y axis of Figures 5, 8, 9, and 10. Positive means the
    technique consumed less energy; negative means it cost energy (as the
    paper reports for PL with 6 groups, where migration overheads win).
    """
    if baseline.energy_joules <= 0:
        return 0.0
    return 1.0 - technique.energy_joules / baseline.energy_joules


def breakdown_fractions(result: SimulationResult) -> dict[str, float]:
    """The Figure 2(b)/Figure 6 energy-breakdown fractions."""
    return result.energy.fractions()


def utilization_series(results: list[SimulationResult]) -> list[float]:
    """Utilization factors of a series of runs (Figure 7's Y axis)."""
    return [r.utilization_factor for r in results]
