"""Plain-text renderers for the bench output (tables and series)."""

from __future__ import annotations

from typing import Sequence

from repro.sim.results import SimulationResult

_BUCKETS = ("serving_dma", "serving_proc", "idle_dma", "idle_threshold",
            "transition", "low_power", "migration")


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(name: str, xs: Sequence[float],
                  ys: Sequence[float], x_label: str = "x",
                  y_label: str = "y") -> str:
    """Render an (x, y) series the way a figure's data table would look."""
    rows = [(x, y) for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name)


def format_breakdown(results: Sequence[SimulationResult],
                     labels: Sequence[str] | None = None,
                     title: str = "Energy breakdown") -> str:
    """Render energy-breakdown fractions side by side (Figure 2b / 6)."""
    labels = list(labels) if labels else [r.technique for r in results]
    headers = ["bucket"] + labels
    rows = []
    for bucket in _BUCKETS:
        row: list[object] = [bucket]
        for result in results:
            share = result.energy.fractions().get(bucket, 0.0)
            row.append(f"{share * 100:5.1f}%")
        rows.append(row)
    totals: list[object] = ["total mJ"]
    for result in results:
        totals.append(f"{result.energy_joules * 1e3:.3f}")
    rows.append(totals)
    return format_table(headers, rows, title=title)
