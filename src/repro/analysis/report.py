"""One-shot experiment reports.

:func:`build_report` runs the full technique matrix on one trace —
baseline, DMA-TA, PL, DMA-TA-PL at a list of CP-Limits — and renders a
markdown-ish text report with the energy table, the savings curves, the
breakdown comparison, and the guarantee audit. It is the programmatic
equivalent of reading Figures 5-7 for a single workload, and what the
``repro report`` CLI command prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import savings_chart
from repro.analysis.tables import format_breakdown, format_table
from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult
from repro.sim.run import simulate
from repro.traces.stats import characterize
from repro.traces.trace import Trace

DEFAULT_CP_LIMITS = (0.02, 0.05, 0.10, 0.20, 0.30)


@dataclass
class ExperimentReport:
    """The runs behind one report, for programmatic consumption."""

    trace: Trace
    baseline: SimulationResult
    by_technique: dict[str, dict[float, SimulationResult]] = field(
        default_factory=dict)

    def savings(self, technique: str) -> dict[float, float]:
        return {
            cp: result.energy_savings_vs(self.baseline)
            for cp, result in self.by_technique.get(technique, {}).items()
        }

    def best(self) -> tuple[str, float, float]:
        """``(technique, cp_limit, savings)`` of the best run."""
        best = ("baseline", 0.0, 0.0)
        for technique, runs in self.by_technique.items():
            for cp, result in runs.items():
                saving = result.energy_savings_vs(self.baseline)
                if saving > best[2]:
                    best = (technique, cp, saving)
        return best


def build_report(trace: Trace, config: SimulationConfig | None = None,
                 cp_limits: tuple[float, ...] = DEFAULT_CP_LIMITS,
                 techniques: tuple[str, ...] = ("dma-ta", "dma-ta-pl"),
                 ) -> ExperimentReport:
    """Run the matrix and return the structured report."""
    if not cp_limits:
        raise ConfigurationError("need at least one CP-Limit")
    baseline = simulate(trace, config=config, technique="baseline")
    report = ExperimentReport(trace=trace, baseline=baseline)
    for technique in techniques:
        runs = {}
        for cp in cp_limits:
            runs[cp] = simulate(trace, config=config, technique=technique,
                                cp_limit=cp)
        report.by_technique[technique] = runs
    return report


def render_report(report: ExperimentReport) -> str:
    """The report as displayable text."""
    trace = report.trace
    stats = characterize(trace)
    parts: list[str] = []

    parts.append(f"# Experiment report: {trace.name}")
    parts.append(format_table(
        ["metric", "value"],
        [
            ["duration", f"{stats.duration_ms:.1f} ms"],
            ["transfers", f"{stats.transfers} "
                          f"({stats.transfers_per_ms:.1f}/ms)"],
            ["processor accesses/ms", f"{stats.proc_accesses_per_ms:.0f}"],
            ["top-20% access share",
             f"{stats.top20_access_fraction:.0%}"],
            ["baseline energy",
             f"{report.baseline.energy_joules * 1e3:.3f} mJ"],
            ["baseline uf", f"{report.baseline.utilization_factor:.3f}"],
        ],
        title="Workload"))

    rows = []
    for technique, runs in report.by_technique.items():
        for cp, result in sorted(runs.items()):
            rows.append([
                technique,
                f"{cp:.0%}",
                f"{result.energy_savings_vs(report.baseline):+.1%}",
                f"{result.client_degradation_vs(report.baseline):+.2%}",
                f"{result.utilization_factor:.3f}",
                "VIOLATED" if result.guarantee_violated else "ok",
            ])
    parts.append(format_table(
        ["technique", "CP-Limit", "savings", "client degradation", "uf",
         "guarantee"],
        rows, title="Technique matrix"))

    for technique in report.by_technique:
        parts.append(savings_chart(
            report.savings(technique),
            title=f"{technique}: savings vs CP-Limit"))

    best_technique, best_cp, best_saving = report.best()
    if best_saving > 0:
        best_run = report.by_technique[best_technique][best_cp]
        parts.append(format_breakdown(
            [report.baseline, best_run],
            labels=["baseline", f"{best_technique}@{best_cp:.0%}"],
            title=f"Best run: {best_technique} at CP-Limit {best_cp:.0%} "
                  f"({best_saving:+.1%})"))

    return "\n\n".join(parts)
