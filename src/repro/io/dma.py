"""Runtime stream state and chip-capacity allocation.

A *stream* is work flowing through a chip at a (piecewise-constant) rate:

* a **DMA** stream is one released transfer — its nominal demand is its
  bus-bandwidth share divided by the chip bandwidth (1/3 of a chip for a
  full PCI-X bus against RDRAM-1600), because the bus cannot deliver
  DMA-memory requests any faster;
* a **PROC** stream is a burst of processor cache-line accesses served
  back-to-back (demand 1, highest priority per Section 4.1.3);
* a **MIGRATION** stream is a PL page-copy batch that soaks up whatever
  capacity is left (lowest priority, Section 4.2.2).

:func:`allocate_chip_capacity` performs priority-ordered water-filling of
one chip's capacity across its streams; the engine calls it at every
change-point.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.traces.records import DMATransfer, ProcessorBurst

_stream_ids = itertools.count()


class StreamKind(enum.Enum):
    """Stream categories in descending service priority."""

    PROC = 0
    DMA = 1
    MIGRATION = 2


@dataclass
class FluidStream:
    """One in-flight unit of chip work.

    Work is measured in *chip serving cycles*. A granted share ``g`` (a
    fraction of chip capacity) drains work at ``g`` cycles per cycle, so a
    stream with ``remaining_work`` finishes in ``remaining_work / g``.

    Attributes:
        kind: stream category (priority class).
        chip_id: chip the stream runs on.
        bus_id: bus carrying the stream (DMA streams only).
        total_work: total chip serving cycles the stream needs.
        demand: nominal fraction of chip capacity the stream can consume
            (bus-limited for DMA; 1.0 for PROC and MIGRATION).
        record: originating trace record, if any.
        arrival_time: when the transfer arrived at the controller.
        release_time: when service was allowed to begin (gathering and
            wake-up delays push this past ``arrival_time``).
        granted: current granted share of chip capacity.
    """

    kind: StreamKind
    chip_id: int
    total_work: float
    demand: float
    bus_id: int | None = None
    record: DMATransfer | ProcessorBurst | None = None
    arrival_time: float = 0.0
    release_time: float = 0.0
    #: DMA-memory requests this stream stands for (0 for PROC/MIGRATION);
    #: used by DMA-TA to size the stream's per-transfer slack budget.
    num_requests: int = 0
    #: Engine-assigned per-run transfer ordinal (deterministic, unlike
    #: ``stream_id``); keys the audit layer's per-transfer waterfall.
    seq: int = 0
    stream_id: int = field(default_factory=lambda: next(_stream_ids))

    # Dynamics (engine-managed).
    remaining_work: float = field(init=False)
    granted: float = 0.0
    last_sync: float = field(init=False)
    version: int = 0
    #: When the stream actually began serving at its chip (after the
    #: controller release, any bus queueing, and the chip wake-up).
    service_start: float = field(default=0.0, init=False)
    #: Extra per-request service cycles accumulated from chip-side
    #: throttling (processor priority, chip saturation). See DESIGN.md:
    #: a stream slowed from demand d to grant g for dt cycles delays its
    #: requests by (d - g) * dt serving cycles in total.
    extra_service_cycles: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.total_work <= 0:
            raise SimulationError("stream with non-positive work")
        if not 0 < self.demand <= 1.0 + 1e-12:
            raise SimulationError(f"stream demand {self.demand} out of (0,1]")
        self.remaining_work = self.total_work
        self.last_sync = self.release_time

    def __hash__(self) -> int:
        return self.stream_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FluidStream) and other.stream_id == self.stream_id

    # --- dynamics -------------------------------------------------------

    def sync(self, now: float) -> None:
        """Drain work for time elapsed since the last change-point."""
        if now < self.last_sync - 1e-9:
            raise SimulationError("stream time moved backwards")
        elapsed = max(0.0, now - self.last_sync)
        if not self.done and self.is_dma:
            self.extra_service_cycles += elapsed * max(
                0.0, self.demand - self.granted)
        self.remaining_work = max(
            0.0, self.remaining_work - elapsed * self.granted)
        self.last_sync = now

    def projected_completion(self, now: float) -> float:
        """When the stream finishes at its current granted share."""
        if self.remaining_work <= 1e-9:
            return now
        if self.granted <= 0:
            return math.inf
        return now + self.remaining_work / self.granted

    @property
    def done(self) -> bool:
        return self.remaining_work <= 1e-9

    @property
    def is_dma(self) -> bool:
        return self.kind is StreamKind.DMA

    # --- stats ------------------------------------------------------------

    @property
    def head_delay(self) -> float:
        """Delay imposed on the transfer's first request (gather + wake)."""
        return max(0.0, self.release_time - self.arrival_time)


def water_fill(demands: list[float], capacity: float) -> list[float]:
    """Max-min fair allocation of ``capacity`` across ``demands``.

    Every demand below the fair water level is fully granted; the rest
    split what remains equally. Returns grants in input order.
    """
    if capacity <= 0 or not demands:
        return [0.0] * len(demands)
    total = sum(demands)
    if total <= capacity + 1e-12:
        return list(demands)
    order = sorted(range(len(demands)), key=lambda i: demands[i])
    grants = [0.0] * len(demands)
    remaining = capacity
    active = len(demands)
    for position, index in enumerate(order):
        fair = remaining / active
        grant = min(demands[index], fair)
        grants[index] = grant
        remaining -= grant
        active -= 1
    return grants


def allocate_chip_capacity(streams: list[FluidStream]) -> None:
    """Set each stream's ``granted`` share of one chip's capacity.

    Priority order PROC > DMA > MIGRATION (Section 4.1.3 solution 1 and
    Section 4.2.2): each class water-fills whatever capacity the classes
    above it left. Callers must have synced the streams to the current
    time first; grants apply from now until the next change-point.
    """
    capacity = 1.0
    for kind in (StreamKind.PROC, StreamKind.DMA, StreamKind.MIGRATION):
        group = [s for s in streams if s.kind is kind and not s.done]
        if not group:
            continue
        grants = water_fill([s.demand for s in group], capacity)
        for stream, grant in zip(group, grants):
            stream.granted = grant
        capacity = max(0.0, capacity - sum(grants))
    for stream in streams:
        if stream.done:
            stream.granted = 0.0
