"""The I/O bus model.

A :class:`FluidBus` carries the DMA streams flowing over one physical bus
(PCI-X by default). Two sharing disciplines are provided:

* ``"fifo"`` (default, the paper's model) — the bus serves one transfer
  at a time at the full bus rate; later transfers queue. This matches the
  paper's timing analysis throughout: Figure 2(a)'s fixed request period
  set by "the transfer rate of the I/O bus", Figure 3's lockstep
  interleaving of one stream per bus, and the service bound
  ``U = m * T * ceil(r/k)``, which serves each bus's ``m`` pending
  requests *sequentially*. Under FIFO a transfer's request stream always
  runs at full rate, so a chip aligned with ``k`` buses reaches 100%
  utilisation and an unaligned chip sits at exactly ``Rb/Rm``.
* ``"fair"`` — round-robin arbitration at request granularity, modelled
  as an equal bandwidth split among all in-flight transfers. Provided as
  an ablation: it lets concurrency on a bus *stretch* every transfer on
  it, which dilutes DMA-TA's benefit (see the ablation bench).

Either way the bus is the resource whose mismatch with the memory device
(1.064 GB/s against 3.2 GB/s) creates the active-idle waste the paper
attacks.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.energy.states import PowerModel
from repro.errors import ConfigurationError, SimulationError
from repro.io.dma import FluidStream, StreamKind
from repro.obs.events import bus_track

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer

SHARING_MODES = ("fifo", "fair")


class FluidBus:
    """One I/O bus and the DMA streams it carries."""

    def __init__(self, bus_id: int, bandwidth_bytes_per_s: float,
                 memory_model: PowerModel, sharing: str = "fifo") -> None:
        if bandwidth_bytes_per_s <= 0:
            raise SimulationError("bus bandwidth must be positive")
        if sharing not in SHARING_MODES:
            raise ConfigurationError(
                f"unknown bus sharing mode {sharing!r}; "
                f"expected one of {SHARING_MODES}")
        self.bus_id = bus_id
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.sharing = sharing
        self._memory_model = memory_model

        # FIFO state: the transfer currently owning the bus + the queue.
        self.current: FluidStream | None = None
        self.queue: deque[FluidStream] = deque()
        # Fair state: all in-flight transfers share equally.
        self.members: set[FluidStream] = set()

        self.transfers_carried = 0
        self.max_queue_depth = 0
        #: Set by the engine when tracing: queue-depth counter samples
        #: are emitted on the bus track (``None`` = no tracing).
        self.tracer: "Tracer | None" = None
        self._track = bus_track(bus_id)

    @property
    def full_share_demand(self) -> float:
        """Chip-capacity demand of a stream owning the whole bus.

        This is the paper's ``Rb / Rm`` (1/3 for PCI-X against RDRAM-1600),
        capped at 1.0 for buses faster than the memory device.
        """
        return min(
            1.0,
            self.bandwidth_bytes_per_s / self._memory_model.bandwidth_bytes_per_s)

    # ------------------------------------------------------------------
    # FIFO discipline
    # ------------------------------------------------------------------

    def enqueue(self, stream: FluidStream, now: float = 0.0) -> bool:
        """Admit a released transfer; True if it owns the bus immediately."""
        self._check(stream)
        self.transfers_carried += 1
        if self.sharing == "fair":
            self.members.add(stream)
            if self.tracer is not None:
                self.tracer.counter(now, "queue_depth", self._track,
                                    float(len(self.members)))
            return True
        if self.current is None:
            self.current = stream
            if self.tracer is not None:
                self.tracer.counter(now, "queue_depth", self._track, 0.0)
            return True
        self.queue.append(stream)
        self.max_queue_depth = max(self.max_queue_depth, len(self.queue))
        if self.tracer is not None:
            self.tracer.counter(now, "queue_depth", self._track,
                                float(len(self.queue)))
        return False

    def finish(self, stream: FluidStream,
               now: float = 0.0) -> FluidStream | None:
        """Retire a completed transfer; returns the next granted stream.

        In fair mode there is no grant hand-off (everything already
        runs), so the return value is always None.
        """
        if self.sharing == "fair":
            self.members.discard(stream)
            if self.tracer is not None:
                self.tracer.counter(now, "queue_depth", self._track,
                                    float(len(self.members)))
            return None
        if self.current is stream:
            self.current = self.queue.popleft() if self.queue else None
            if self.tracer is not None:
                self.tracer.counter(now, "queue_depth", self._track,
                                    float(len(self.queue)))
            return self.current
        # A stream that never reached the head (e.g. retired at drain).
        try:
            self.queue.remove(stream)
        except ValueError:
            pass
        return None

    # ------------------------------------------------------------------
    # Demand bookkeeping
    # ------------------------------------------------------------------

    def member_demand(self) -> float:
        """Per-stream chip demand under the current occupancy."""
        if self.sharing == "fifo":
            return self.full_share_demand
        count = max(1, len(self.members))
        return self.full_share_demand / count

    def refresh_demands(self) -> set[int]:
        """Recompute member demands after a membership change (fair mode).

        Returns the chip ids whose allocations must be redone. FIFO mode
        never changes a granted stream's demand, so this is a no-op there.
        """
        if self.sharing == "fifo":
            return set()
        demand = self.member_demand()
        touched: set[int] = set()
        for stream in self.members:
            if stream.demand != demand:
                stream.demand = demand
                stream.version += 1
            touched.add(stream.chip_id)
        return touched

    def _check(self, stream: FluidStream) -> None:
        if stream.kind is not StreamKind.DMA:
            raise SimulationError("only DMA streams ride buses")
        if stream.bus_id != self.bus_id:
            raise SimulationError(
                f"stream bound to bus {stream.bus_id}, not {self.bus_id}")
