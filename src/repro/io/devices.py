"""I/O devices and the transfer-to-bus assignment.

High-end servers hang several DMA-capable devices (NICs toward the SAN,
disk host-bus adapters toward the array) off several I/O buses. A trace
record may pin its bus explicitly; otherwise the :class:`BusAssigner`
routes it to a device of the matching source, round-robin, which spreads
concurrent transfers across buses — the concurrency resource DMA-TA
aligns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import cycle

from repro.errors import ConfigurationError
from repro.traces.records import DMATransfer, SOURCE_DISK, SOURCE_NETWORK


@dataclass(frozen=True)
class Device:
    """A DMA-capable I/O device bound to one bus.

    Attributes:
        name: human-readable identifier ("nic0", "hba1", ...).
        source: the trace source tag this device serves.
        bus: the I/O bus the device sits on.
    """

    name: str
    source: str
    bus: int

    def __post_init__(self) -> None:
        if self.source not in (SOURCE_NETWORK, SOURCE_DISK):
            raise ConfigurationError(f"unknown device source {self.source!r}")
        if self.bus < 0:
            raise ConfigurationError("device bus must be non-negative")


def default_topology(num_buses: int) -> list[Device]:
    """One NIC and one disk HBA on every bus.

    This mirrors chipsets like the Intel E8870/E7500 (Section 3) where
    several PCI segments each host both network and storage adapters, and
    it gives every source full spread across the buses.
    """
    if num_buses <= 0:
        raise ConfigurationError("need at least one bus")
    devices: list[Device] = []
    for bus in range(num_buses):
        devices.append(Device(name=f"nic{bus}", source=SOURCE_NETWORK, bus=bus))
        devices.append(Device(name=f"hba{bus}", source=SOURCE_DISK, bus=bus))
    return devices


class BusAssigner:
    """Routes each DMA transfer to a bus.

    Records with an explicit ``bus`` keep it (clamped into range);
    the rest go to the next device of their source, round-robin.
    """

    def __init__(self, num_buses: int, devices: list[Device] | None = None) -> None:
        if num_buses <= 0:
            raise ConfigurationError("need at least one bus")
        self.num_buses = num_buses
        self.devices = devices if devices is not None else default_topology(num_buses)
        for device in self.devices:
            if device.bus >= num_buses:
                raise ConfigurationError(
                    f"device {device.name} on bus {device.bus} "
                    f"but only {num_buses} buses exist")
        self._cycles: dict[str, cycle] = {}
        for source in (SOURCE_NETWORK, SOURCE_DISK):
            members = [d for d in self.devices if d.source == source]
            if members:
                self._cycles[source] = cycle(members)

    def assign(self, record: DMATransfer) -> int:
        """The bus that will carry ``record``."""
        if record.bus is not None:
            return record.bus % self.num_buses
        source_cycle = self._cycles.get(record.source)
        if source_cycle is None:
            # No device of this source: fall back to any device.
            all_cycle = self._cycles.get(SOURCE_NETWORK) or self._cycles.get(SOURCE_DISK)
            if all_cycle is None:
                raise ConfigurationError("no devices configured")
            return next(all_cycle).bus
        return next(source_cycle).bus
