"""I/O-side models: buses, DMA streams, and the devices that drive them.

The bus is the resource whose bandwidth mismatch with the memory device
creates the paper's energy waste; :class:`~repro.io.bus.FluidBus` shares
each bus's bandwidth among its in-flight transfers, and
:class:`~repro.io.dma.FluidStream` is the runtime state of one transfer
(or processor burst / migration copy) as seen by a chip.
"""

from repro.io.bus import FluidBus
from repro.io.dma import FluidStream, StreamKind, allocate_chip_capacity
from repro.io.devices import Device, BusAssigner, default_topology

__all__ = [
    "FluidBus",
    "FluidStream",
    "StreamKind",
    "allocate_chip_capacity",
    "Device",
    "BusAssigner",
    "default_topology",
]
