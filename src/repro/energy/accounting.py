"""Energy and time accounting with the paper's Figure 2(b)/Figure 6 buckets.

Every joule a simulated chip consumes lands in exactly one bucket:

* ``serving_dma``    — actively moving DMA data ("Active Serving").
* ``serving_proc``   — actively serving processor cache-line accesses.
* ``idle_dma``       — active but idle *between* DMA-memory requests of
  in-flight transfers ("Active Idle DMA"); the waste the paper attacks.
* ``idle_threshold`` — active and idle with no transfer in progress, waiting
  out the dynamic policy's idleness threshold ("Active Idle Threshold").
* ``transition``     — power-mode transitions, both directions.
* ``low_power``      — residency in standby/nap/powerdown.
* ``migration``      — page-migration copies performed by the PL technique.

:class:`TimeBreakdown` mirrors the same buckets in chip-cycles so that the
utilization factor ``uf = T_useful / T_tot`` of Section 5.3 falls straight
out of the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import SimulationError

#: Tolerance used when checking that buckets sum to the recorded total.
_REL_TOL = 1e-9


@dataclass
class EnergyBreakdown:
    """Per-category energy (joules). Mutable accumulator."""

    serving_dma: float = 0.0
    serving_proc: float = 0.0
    idle_dma: float = 0.0
    idle_threshold: float = 0.0
    transition: float = 0.0
    low_power: float = 0.0
    migration: float = 0.0

    @property
    def serving(self) -> float:
        """Total active-serving energy (DMA plus processor)."""
        return self.serving_dma + self.serving_proc

    @property
    def total(self) -> float:
        """Sum of all buckets."""
        return sum(getattr(self, f.name) for f in fields(self))

    def add(self, other: "EnergyBreakdown") -> None:
        """Accumulate ``other`` into this breakdown in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        result = EnergyBreakdown()
        result.add(self)
        result.add(other)
        return result

    def fractions(self) -> dict[str, float]:
        """Each bucket as a fraction of the total (empty dict if total is 0)."""
        total = self.total
        if total <= 0:
            return {}
        return {f.name: getattr(self, f.name) / total for f in fields(self)}

    def validate(self) -> None:
        """Raise :class:`SimulationError` if any bucket is negative."""
        for f in fields(self):
            value = getattr(self, f.name)
            if value < -_REL_TOL * max(1.0, abs(self.total)):
                raise SimulationError(
                    f"negative energy bucket {f.name}={value!r}")

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (bucket name -> joules), including the total."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["total"] = self.total
        return out

    def copy(self) -> "EnergyBreakdown":
        return EnergyBreakdown(**{f.name: getattr(self, f.name) for f in fields(self)})


@dataclass
class TimeBreakdown:
    """Per-category chip time (memory cycles). Mutable accumulator.

    ``active_dma_total`` is the paper's ``T_tot``: cycles during which some
    DMA transfer to the chip is in progress (chip active). ``serving_dma``
    is ``T_useful``. Their ratio is the utilization factor.
    """

    serving_dma: float = 0.0
    serving_proc: float = 0.0
    idle_dma: float = 0.0
    idle_threshold: float = 0.0
    transition: float = 0.0
    low_power: float = 0.0
    migration: float = 0.0

    @property
    def active_dma_total(self) -> float:
        """T_tot of Section 5.3: transfer-in-progress active cycles."""
        return self.serving_dma + self.idle_dma

    @property
    def total(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    def add(self, other: "TimeBreakdown") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        result = TimeBreakdown()
        result.add(self)
        result.add(other)
        return result

    def utilization_factor(self) -> float:
        """``uf = T_useful / T_tot`` (Section 5.3); 0.0 when no DMA ran.

        Processor accesses served while transfers are in flight count as
        useful cycles, matching the paper's observation that they "consume
        some of the idle cycles when the memory is active between
        DMA-memory requests".
        """
        t_tot = self.active_dma_total + self.serving_proc
        if t_tot <= 0:
            return 0.0
        return (self.serving_dma + self.serving_proc) / t_tot

    def validate(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value < -_REL_TOL * max(1.0, abs(self.total)):
                raise SimulationError(f"negative time bucket {f.name}={value!r}")

    def as_dict(self) -> dict[str, float]:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["total"] = self.total
        return out

    def copy(self) -> "TimeBreakdown":
        return TimeBreakdown(**{f.name: getattr(self, f.name) for f in fields(self)})
