"""Concrete device power models.

:func:`rdram_1600_model` is a direct transcription of the paper's Table 1
(512-Mb 1600-MHz RDRAM), the model every experiment in the paper uses.
:func:`ddr_sdram_model` provides the DDR-SDRAM variant Section 3 mentions
(same state powers, 2.1 GB/s peak bandwidth) for sensitivity studies, and
:func:`scaled_bus_model` supports the Figure 10 bandwidth-ratio sweep.
"""

from __future__ import annotations

from repro import units
from repro.energy.states import PowerModel, PowerState, make_power_model

#: Table 1 steady-state powers, milliwatts.
TABLE1_STATE_POWER_MW = {
    PowerState.ACTIVE: 300.0,
    PowerState.STANDBY: 180.0,
    PowerState.NAP: 30.0,
    PowerState.POWERDOWN: 3.0,
}

#: Table 1 downward transitions: state -> (power mW, time in memory cycles).
TABLE1_DOWNWARD_MW_CYCLES = {
    PowerState.STANDBY: (240.0, 1.0),
    PowerState.NAP: (160.0, 8.0),
    PowerState.POWERDOWN: (15.0, 8.0),
}

#: Table 1 upward transitions: state -> (power mW, resync time in ns).
TABLE1_UPWARD_MW_NS = {
    PowerState.STANDBY: (240.0, 6.0),
    PowerState.NAP: (160.0, 60.0),
    PowerState.POWERDOWN: (15.0, 6000.0),
}


def rdram_1600_model() -> PowerModel:
    """The 512-Mb 1600-MHz RDRAM model of Table 1 (3.2 GB/s peak)."""
    return make_power_model(
        name="RDRAM-1600",
        frequency_hz=units.RDRAM_FREQUENCY_HZ,
        bytes_per_cycle=2.0,
        state_power_mw=TABLE1_STATE_POWER_MW,
        downward_mw_cycles=TABLE1_DOWNWARD_MW_CYCLES,
        upward_mw_ns=TABLE1_UPWARD_MW_NS,
    )


def ddr_sdram_model() -> PowerModel:
    """A DDR-SDRAM-like variant: same Table 1 powers, 2.1 GB/s peak.

    Section 3 notes the analysis for DDR SDRAM is the same with different
    absolute numbers because the device bandwidth is 2.1 GB/s rather than
    3.2 GB/s. We keep the memory clock and scale bytes/cycle accordingly.
    """
    bytes_per_cycle = units.DDR_SDRAM_BANDWIDTH / units.RDRAM_FREQUENCY_HZ
    return make_power_model(
        name="DDR-SDRAM-2100",
        frequency_hz=units.RDRAM_FREQUENCY_HZ,
        bytes_per_cycle=bytes_per_cycle,
        state_power_mw=TABLE1_STATE_POWER_MW,
        downward_mw_cycles=TABLE1_DOWNWARD_MW_CYCLES,
        upward_mw_ns=TABLE1_UPWARD_MW_NS,
    )


def scaled_bus_model(memory_bandwidth_bytes_per_s: float) -> PowerModel:
    """An RDRAM-like model with an arbitrary peak memory bandwidth.

    Used by the Figure 10 sweep, which keeps the memory at 3.2 GB/s and
    varies the I/O bus; the converse (varying memory) is also occasionally
    useful, so this constructor is provided.
    """
    bytes_per_cycle = memory_bandwidth_bytes_per_s / units.RDRAM_FREQUENCY_HZ
    return make_power_model(
        name=f"RDRAM-{memory_bandwidth_bytes_per_s / units.GIGA:.1f}GBps",
        frequency_hz=units.RDRAM_FREQUENCY_HZ,
        bytes_per_cycle=bytes_per_cycle,
        state_power_mw=TABLE1_STATE_POWER_MW,
        downward_mw_cycles=TABLE1_DOWNWARD_MW_CYCLES,
        upward_mw_ns=TABLE1_UPWARD_MW_NS,
    )
