"""Power states and the chip power model (the paper's Table 1).

An RDRAM chip can be independently set to one of four power states. It must
be *active* to serve a read or write; entering or leaving a low-power state
costs both time and energy. :class:`PowerModel` holds the per-state power
draw and the transition table, and exposes the derived quantities the rest
of the simulator needs (wake latency, round-trip transition energy,
break-even idle times).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError


class PowerState(enum.Enum):
    """Operating states of a memory chip, ordered from hottest to coldest."""

    ACTIVE = "active"
    STANDBY = "standby"
    NAP = "nap"
    POWERDOWN = "powerdown"

    @property
    def depth(self) -> int:
        """0 for ACTIVE, increasing with how deep the low-power state is."""
        return _DEPTH[self]

    def next_lower(self) -> "PowerState | None":
        """The next lower-power state, or None if already in POWERDOWN."""
        order = list(PowerState)
        index = order.index(self)
        if index + 1 < len(order):
            return order[index + 1]
        return None


_DEPTH = {
    PowerState.ACTIVE: 0,
    PowerState.STANDBY: 1,
    PowerState.NAP: 2,
    PowerState.POWERDOWN: 3,
}

#: The low-power states, in the order a dynamic policy steps through them.
LOW_POWER_STATES = (PowerState.STANDBY, PowerState.NAP, PowerState.POWERDOWN)


@dataclass(frozen=True)
class Transition:
    """Cost of one power-mode transition.

    Attributes:
        power_watts: power drawn while the transition is in progress.
        time_cycles: duration of the transition in memory cycles.
    """

    power_watts: float
    time_cycles: float

    @property
    def energy_joules_per_hz(self) -> float:
        """Energy of the transition per unit memory frequency.

        Multiply by ``1 / frequency_hz`` is already folded in by callers via
        :meth:`PowerModel.transition_energy`; this raw product is exposed for
        testing the Table 1 numbers directly.
        """
        return self.power_watts * self.time_cycles


@dataclass(frozen=True)
class PowerModel:
    """A complete chip power model: state powers plus the transition table.

    Attributes:
        name: human-readable model name (e.g. ``"RDRAM-1600"``).
        frequency_hz: memory clock; all ``time_cycles`` are in this clock.
        bytes_per_cycle: peak transfer rate of the device per cycle
            (2.0 for RDRAM-1600, giving 3.2 GB/s).
        state_power_watts: steady-state power draw per state.
        downward: transition from ACTIVE into each low-power state.
        upward: transition from each low-power state back to ACTIVE
            (the resynchronisation delay: +6 ns / +60 ns / +6000 ns).
    """

    name: str
    frequency_hz: float
    bytes_per_cycle: float
    state_power_watts: Mapping[PowerState, float]
    downward: Mapping[PowerState, Transition]
    upward: Mapping[PowerState, Transition]

    def __post_init__(self) -> None:
        for state in PowerState:
            if state not in self.state_power_watts:
                raise ConfigurationError(f"missing power for state {state}")
        for state in LOW_POWER_STATES:
            if state not in self.downward:
                raise ConfigurationError(f"missing downward transition to {state}")
            if state not in self.upward:
                raise ConfigurationError(f"missing upward transition from {state}")
        powers = [self.state_power_watts[s] for s in PowerState]
        if any(p < 0 for p in powers):
            raise ConfigurationError("state power must be non-negative")
        if powers != sorted(powers, reverse=True):
            raise ConfigurationError(
                "state powers must decrease from ACTIVE to POWERDOWN")

    # --- steady-state -------------------------------------------------

    def power(self, state: PowerState) -> float:
        """Steady-state power draw (watts) in ``state``."""
        return self.state_power_watts[state]

    @property
    def active_power(self) -> float:
        return self.state_power_watts[PowerState.ACTIVE]

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Peak device bandwidth implied by the clock and width."""
        return self.bytes_per_cycle * self.frequency_hz

    # --- transitions ---------------------------------------------------

    def wake_time_cycles(self, state: PowerState) -> float:
        """Cycles to resynchronise from ``state`` back to ACTIVE."""
        if state is PowerState.ACTIVE:
            return 0.0
        return self.upward[state].time_cycles

    def sleep_time_cycles(self, state: PowerState) -> float:
        """Cycles to transition from ACTIVE down into ``state``."""
        if state is PowerState.ACTIVE:
            return 0.0
        return self.downward[state].time_cycles

    def transition_energy(self, transition: Transition) -> float:
        """Energy (joules) of one transition under this model's clock."""
        return transition.power_watts * transition.time_cycles / self.frequency_hz

    def wake_energy(self, state: PowerState) -> float:
        """Energy (joules) to return from ``state`` to ACTIVE."""
        if state is PowerState.ACTIVE:
            return 0.0
        return self.transition_energy(self.upward[state])

    def sleep_energy(self, state: PowerState) -> float:
        """Energy (joules) to drop from ACTIVE into ``state``."""
        if state is PowerState.ACTIVE:
            return 0.0
        return self.transition_energy(self.downward[state])

    def round_trip_energy(self, state: PowerState) -> float:
        """Energy of a full ACTIVE -> state -> ACTIVE excursion."""
        return self.sleep_energy(state) + self.wake_energy(state)

    def round_trip_time_cycles(self, state: PowerState) -> float:
        """Cycles spent in transit for a full excursion to ``state``."""
        return self.sleep_time_cycles(state) + self.wake_time_cycles(state)

    # --- derived geometry ----------------------------------------------

    def serve_cycles(self, request_bytes: float) -> float:
        """Cycles the chip is busy serving one request of this size."""
        return request_bytes / self.bytes_per_cycle

    def replace(self, **overrides) -> "PowerModel":
        """A copy of this model with the given fields replaced."""
        import dataclasses

        return dataclasses.replace(self, **overrides)


def make_power_model(
    name: str,
    frequency_hz: float,
    bytes_per_cycle: float,
    state_power_mw: Mapping[PowerState, float],
    downward_mw_cycles: Mapping[PowerState, tuple[float, float]],
    upward_mw_ns: Mapping[PowerState, tuple[float, float]],
) -> PowerModel:
    """Build a :class:`PowerModel` from Table 1-style units.

    Args:
        state_power_mw: per-state power in milliwatts.
        downward_mw_cycles: ``state -> (power_mw, time_cycles)`` for
            ACTIVE -> state transitions.
        upward_mw_ns: ``state -> (power_mw, time_ns)`` for state -> ACTIVE
            transitions (the paper quotes these in nanoseconds).
    """
    state_power = {s: mw / 1e3 for s, mw in state_power_mw.items()}
    downward = {
        s: Transition(power_watts=mw / 1e3, time_cycles=cycles)
        for s, (mw, cycles) in downward_mw_cycles.items()
    }
    upward = {
        s: Transition(power_watts=mw / 1e3, time_cycles=ns * 1e-9 * frequency_hz)
        for s, (mw, ns) in upward_mw_ns.items()
    }
    return PowerModel(
        name=name,
        frequency_hz=frequency_hz,
        bytes_per_cycle=bytes_per_cycle,
        state_power_watts=state_power,
        downward=downward,
        upward=upward,
    )
