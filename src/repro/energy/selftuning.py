"""A self-tuning dynamic policy (the Li et al. scheme the paper tried).

Section 3 notes: "We have also tried other schemes, such as the
self-tuning dynamic schemes proposed in our previous work [18], but the
results were similar since the large size of DMA transfers makes memory
energy consumption almost insensitive to the threshold setting."

This module provides such a scheme so that claim can be checked: a
:class:`SelfTuningPolicy` starts from the break-even thresholds and
periodically rescales them from observed behaviour — if wake-ups happen
too soon after a descent (the chip guessed wrong), thresholds grow; if
chips linger active-idle without being re-referenced, thresholds shrink.
Because the policy interface is consulted when a chip *enters* idleness,
adaptation is epoch-based: the simulator's chips pick up the new
schedule at their next idle period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.policies import PowerPolicy, Schedule, break_even_cycles
from repro.energy.states import LOW_POWER_STATES, PowerModel
from repro.errors import ConfigurationError


@dataclass
class SelfTuningPolicy(PowerPolicy):
    """Threshold policy that rescales itself from observed outcomes.

    Attributes:
        scale: current multiplier over the break-even thresholds.
        min_scale / max_scale: adaptation clamps.
        grow / shrink: multiplicative adjustment steps.
        premature_wake_cycles: a wake within this many cycles of the
            first descent counts as a mis-prediction (the idle period
            was short; sleeping cost a wake penalty for little gain).
    """

    scale: float = 1.0
    min_scale: float = 0.25
    max_scale: float = 16.0
    grow: float = 1.5
    shrink: float = 0.8
    premature_wake_cycles: float = 200.0

    #: Adaptation counters since the last adjustment.
    premature_wakes: int = field(default=0, init=False)
    long_sleeps: int = field(default=0, init=False)
    adjustments: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0 < self.min_scale <= self.scale <= self.max_scale:
            raise ConfigurationError(
                "need 0 < min_scale <= scale <= max_scale")
        if self.grow <= 1.0 or not 0 < self.shrink < 1.0:
            raise ConfigurationError("grow must be >1 and shrink in (0,1)")

    def schedule(self, model: PowerModel) -> Schedule:
        return tuple(
            (self.scale * break_even_cycles(model, state), state)
            for state in LOW_POWER_STATES
        )

    # --- feedback --------------------------------------------------------

    def observe_idle_period(self, idle_cycles: float,
                            model: PowerModel) -> None:
        """Record the outcome of one completed idle period."""
        first = break_even_cycles(model, LOW_POWER_STATES[0]) * self.scale
        if idle_cycles < first + self.premature_wake_cycles:
            self.premature_wakes += 1
        elif idle_cycles > 10 * first:
            self.long_sleeps += 1

    def adapt(self) -> float:
        """Apply one adaptation step from the gathered counters.

        Returns the new scale. Mis-predictions dominate -> thresholds
        grow (sleep later); long sleeps dominate -> thresholds shrink
        (sleep sooner, the idle periods are comfortably long).
        """
        if self.premature_wakes > 2 * self.long_sleeps:
            self.scale = min(self.max_scale, self.scale * self.grow)
        elif self.long_sleeps > 2 * self.premature_wakes:
            self.scale = max(self.min_scale, self.scale * self.shrink)
        self.premature_wakes = 0
        self.long_sleeps = 0
        self.adjustments += 1
        return self.scale
