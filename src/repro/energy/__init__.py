"""Memory power modelling: states, device models, accounting, and policies.

This subpackage transcribes the paper's Table 1 (RDRAM power states and
transition costs) into an executable :class:`~repro.energy.states.PowerModel`,
provides the static and dynamic-threshold low-level management policies of
Lebeck et al. that the paper uses as its baseline, and defines the
:class:`~repro.energy.accounting.EnergyBreakdown` whose categories match
Figure 2(b) / Figure 6.
"""

from repro.energy.states import PowerState, Transition, PowerModel
from repro.energy.rdram import rdram_1600_model, ddr_sdram_model, scaled_bus_model
from repro.energy.accounting import EnergyBreakdown, TimeBreakdown
from repro.energy.policies import (
    AlwaysOnPolicy,
    PowerPolicy,
    StaticPolicy,
    DynamicThresholdPolicy,
    break_even_cycles,
    default_dynamic_policy,
)
from repro.energy.selftuning import SelfTuningPolicy

__all__ = [
    "AlwaysOnPolicy",
    "SelfTuningPolicy",
    "PowerState",
    "Transition",
    "PowerModel",
    "rdram_1600_model",
    "ddr_sdram_model",
    "scaled_bus_model",
    "EnergyBreakdown",
    "TimeBreakdown",
    "PowerPolicy",
    "StaticPolicy",
    "DynamicThresholdPolicy",
    "break_even_cycles",
    "default_dynamic_policy",
]
