"""Low-level memory power-management policies.

These are the policies of prior work (Lebeck et al., ASPLOS'00) that the
paper layers its DMA-aware techniques on top of:

* **Static** policies park a chip in one fixed low-power state whenever it
  is idle and wake it on demand.
* **Dynamic threshold** policies walk a chip down through
  standby -> nap -> powerdown as idleness accumulates past per-state
  thresholds. The break-even thresholds derived from Table 1 land around
  20-60 cycles for the first two steps, matching the paper's remark that
  the best active->low-power threshold is "usually around 20-30 memory
  cycles" — far shorter than a DMA transfer but far longer than the 8-cycle
  gap between two DMA-memory requests, which is exactly why transfers pin
  chips in the active state.
* **Always-on** keeps the chip active forever; it is the reference system
  used to measure the undisturbed service time ``T`` and to calibrate
  CP-Limit into the per-request parameter ``mu``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.energy.states import LOW_POWER_STATES, PowerModel, PowerState

#: A policy schedule: sorted (cumulative idle cycles, state to enter) steps.
Schedule = tuple[tuple[float, PowerState], ...]


def break_even_cycles(model: PowerModel, state: PowerState) -> float:
    """Idle time (cycles) at which an excursion into ``state`` pays off.

    Staying active for ``t`` cycles costs ``P_active * t``. Taking the
    excursion costs the downward transition, residency at the low-power
    draw for the remainder, and the wake-up transition afterwards::

        P_active * t = E_down + P_state * (t - t_down) + E_up

    Solving for ``t`` gives the break-even point. For the Table 1 RDRAM
    numbers this yields roughly 20 cycles (standby), 61 cycles (nap), and
    485 cycles (powerdown).
    """
    if state is PowerState.ACTIVE:
        return 0.0
    p_active = model.active_power
    p_state = model.power(state)
    if p_active <= p_state:
        raise ConfigurationError(
            f"state {state} draws no less power than ACTIVE; no break-even")
    e_down = model.sleep_energy(state) * model.frequency_hz
    e_up = model.wake_energy(state) * model.frequency_hz
    t_down = model.sleep_time_cycles(state)
    return (e_down + e_up - p_state * t_down) / (p_active - p_state)


class PowerPolicy(abc.ABC):
    """Decides how a chip descends through power states while idle."""

    @abc.abstractmethod
    def schedule(self, model: PowerModel) -> Schedule:
        """The descent schedule for ``model``.

        Returns a tuple of ``(idle_cycles, state)`` pairs, sorted by
        ``idle_cycles``: once the chip has been idle for ``idle_cycles``
        (measured from the end of its last access), it transitions into
        ``state``. An empty schedule means the chip never leaves ACTIVE.
        """

    def first_threshold(self, model: PowerModel) -> float:
        """Idle cycles before the chip leaves ACTIVE (inf if it never does)."""
        steps = self.schedule(model)
        if not steps:
            return float("inf")
        return steps[0][0]


@dataclass(frozen=True)
class AlwaysOnPolicy(PowerPolicy):
    """No power management: the chip stays ACTIVE forever."""

    def schedule(self, model: PowerModel) -> Schedule:
        return ()


@dataclass(frozen=True)
class StaticPolicy(PowerPolicy):
    """Drop straight into one fixed low-power state when idle.

    Attributes:
        state: the parking state.
        delay_cycles: grace period before parking (0 = immediately after
            the last access completes, the classical static scheme).
    """

    state: PowerState
    delay_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.state is PowerState.ACTIVE:
            raise ConfigurationError("static policy needs a low-power state")
        if self.delay_cycles < 0:
            raise ConfigurationError("delay_cycles must be non-negative")

    def schedule(self, model: PowerModel) -> Schedule:
        return ((self.delay_cycles, self.state),)


@dataclass(frozen=True)
class DynamicThresholdPolicy(PowerPolicy):
    """Step down standby -> nap -> powerdown at cumulative idle thresholds.

    Attributes:
        thresholds_cycles: mapping from low-power state to the *cumulative*
            idle time (cycles since the last access) at which the chip
            enters that state. States may be omitted to skip them.
    """

    thresholds_cycles: tuple[tuple[PowerState, float], ...]

    def __post_init__(self) -> None:
        seen: list[float] = []
        depth = -1
        for state, cycles in self.thresholds_cycles:
            if state is PowerState.ACTIVE:
                raise ConfigurationError("ACTIVE cannot be a threshold target")
            if cycles < 0:
                raise ConfigurationError("thresholds must be non-negative")
            if state.depth <= depth:
                raise ConfigurationError(
                    "threshold states must strictly deepen")
            if seen and cycles < seen[-1]:
                raise ConfigurationError(
                    "cumulative thresholds must be non-decreasing")
            seen.append(cycles)
            depth = state.depth

    def schedule(self, model: PowerModel) -> Schedule:
        return tuple((cycles, state) for state, cycles in self.thresholds_cycles)

    @classmethod
    def from_mapping(cls, thresholds: dict[PowerState, float]) -> "DynamicThresholdPolicy":
        ordered = sorted(thresholds.items(), key=lambda item: item[0].depth)
        return cls(thresholds_cycles=tuple(ordered))


def default_dynamic_policy(model: PowerModel, scale: float = 1.0) -> DynamicThresholdPolicy:
    """The baseline dynamic policy with break-even thresholds.

    This is the scheme of Lebeck et al. that the paper uses as its
    low-level policy: each step's threshold is the break-even idle time for
    the target state, optionally scaled (``scale`` > 1 is more conservative,
    < 1 more aggressive). Section 3 notes DMA results are almost insensitive
    to this setting because transfers dwarf the thresholds.
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    thresholds = {
        state: scale * break_even_cycles(model, state)
        for state in LOW_POWER_STATES
    }
    return DynamicThresholdPolicy.from_mapping(thresholds)
