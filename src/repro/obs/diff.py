"""Differential observability: epoch digests, first-divergence bisection,
and root-cause reports.

The repo's correctness story is a stack of bit-exactness guarantees
(precise vs ``precise-scalar``, telemetered vs untelemetered, fleet vs
serial). When one of them breaks, an end-of-run assertion says *that*
two runs disagree but not *where*. This module answers the "where":

* :class:`DigestRecorder` — a read-only per-epoch sampler (same event
  discipline as :class:`~repro.obs.telemetry.TelemetrySampler`) that
  folds the run's observable state — per-chip residency buckets,
  energy-to-date and instantaneous power, the slack account, bus
  queues, degradation-to-date — into a rolling **blake2b chain**. Two
  runs evolve identical chains for exactly as long as their observable
  state is identical, so the first chain mismatch brackets the first
  divergent epoch.
* :class:`DigestStore` — a bounded ring of ``(tick, ts, chain)`` rows
  with the same deterministic 2:1 downsampling as ``TelemetryStore``:
  O(capacity) memory regardless of trace length, and the retained ticks
  stay an evenly spaced subsample, so chain comparison still brackets
  the divergence after compaction.
* :func:`diff_runs` — compares two runs' chains, binary-searches the
  retained ticks for the first mismatch (chains have the prefix
  property: once diverged, forever diverged), re-runs both sides with
  full per-epoch state capture across the bracket, and reports the
  first divergent **field** (chip bucket / slack / bus / degradation),
  the two values, and the trace-event causes active in that window.
* :class:`SimRunSpec` — a declarative run description whose
  :meth:`~SimRunSpec.runner` drives :func:`repro.sim.run.simulate` with
  digests attached; the ``repro diff`` CLI and the exactness tests both
  build on it.
* :func:`result_delta` — field-by-field first differences of two
  :class:`~repro.sim.results.SimulationResult` objects, for failure
  messages that name the disagreeing quantity instead of dumping two
  giant dicts.

The recorder is strictly observational (it samples via ``chip.observe``
and never touches accrual), rides a dedicated event kind that both
engines exclude from their progress horizon, and cuts the array-timeline
kernel's batching windows exactly like telemetry does — so a
digest-enabled run is bit-identical in energy/time/duration to a
disabled one (gated by ``tests/integration/test_digest_equivalence.py``).

Fault injection: ``DigestConfig(inject_skew_epoch=N)`` adds phantom
cycles to the *observed* degradation at digest epoch ``N`` only (the
simulation is untouched, like telemetry's ``inject_spike``) — tests and
the CI divergence drill use it to prove the bisection localises a
perturbation to exactly the injected epoch.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError, DiffError

#: Bump when the trail serialisation layout changes incompatibly.
TRAIL_VERSION = 1

#: Chip residency buckets, in digest column order (matches
#: :data:`repro.obs.telemetry.RESIDENCY_BUCKETS`).
RESIDENCY_BUCKETS = ("serving_dma", "serving_proc", "idle_dma",
                     "idle_threshold", "transition", "low_power",
                     "migration")

#: Run-wide scalar fields, in digest order (per-chip and per-bus blocks
#: follow them; see :meth:`DigestRecorder.bind`).
SCALAR_FIELDS = ("ts", "requests", "degradation_cycles", "slack_balance",
                 "slack_pending", "migrations")


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DigestConfig:
    """Recorder parameters.

    Attributes:
        epoch_cycles: digest period in memory cycles. ``None`` (the
            default) uses the run's DMA-TA epoch length when the
            controller has one, else ``config.alignment.epoch_cycles``
            — so "per-epoch" is literal under DMA-TA and
            epoch-equivalent otherwise.
        capacity: ring rows kept; on overflow every other row is
            dropped and the acceptance stride doubles (the
            ``TelemetryStore`` discipline).
        capture_range: inclusive ``(lo, hi)`` digest-tick range over
            which the recorder keeps a **full** field-by-field
            :class:`EpochCapture` per epoch (every tick in range, not
            just retained ones). The bisection re-run uses this to turn
            a chain bracket into a named field.
        inject_skew_epoch: fault injection — add
            :attr:`inject_skew_cycles` phantom cycles to the *observed*
            degradation at exactly this digest tick (the simulation is
            untouched). ``None`` disables.
        inject_skew_cycles: size of the injected skew.
    """

    epoch_cycles: float | None = None
    capacity: int = 4096
    capture_range: tuple[int, int] | None = None
    inject_skew_epoch: int | None = None
    inject_skew_cycles: float = 1.0

    def __post_init__(self) -> None:
        if self.epoch_cycles is not None and self.epoch_cycles <= 0:
            raise ConfigurationError("epoch_cycles must be positive")
        if self.capacity < 8 or self.capacity % 2:
            raise ConfigurationError("capacity must be an even number >= 8")
        if self.capture_range is not None:
            lo, hi = self.capture_range
            if lo < 0 or hi < lo:
                raise ConfigurationError(
                    f"capture_range {self.capture_range} must satisfy "
                    "0 <= lo <= hi")
        if self.inject_skew_epoch is not None and self.inject_skew_epoch < 0:
            raise ConfigurationError("inject_skew_epoch must be >= 0")


# ---------------------------------------------------------------------------
# Bounded chain store
# ---------------------------------------------------------------------------

class DigestStore:
    """Bounded ring of ``(tick, ts, chain)`` rows.

    Same deterministic 2:1 downsampling as
    :class:`~repro.obs.telemetry.TelemetryStore`: row ``i`` always holds
    the digest whose tick index is ``i * stride``; when the ring fills,
    every other row is compacted away and the acceptance stride doubles.
    The stride evolution depends only on the tick count, so two runs
    with equal epoch counts retain exactly the same tick subset —
    chain comparison stays aligned after compaction.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 8 or capacity % 2:
            raise ConfigurationError("capacity must be an even number >= 8")
        self.capacity = int(capacity)
        self._rows: list[tuple[int, float, str]] = []
        self._stride = 1
        self._ticks = 0
        self._dropped = 0

    @property
    def stride(self) -> int:
        return self._stride

    @property
    def ticks(self) -> int:
        return self._ticks

    @property
    def dropped(self) -> int:
        return self._dropped

    def append(self, ts: float, chain: str) -> bool:
        """Offer one digest; returns True if the row was retained."""
        tick = self._ticks
        self._ticks += 1
        if tick % self._stride:
            self._dropped += 1
            return False
        if len(self._rows) == self.capacity:
            # Keep ticks 0, 2s, 4s, ...; the triggering tick is
            # stride * capacity — a multiple of the doubled stride
            # (capacity is even), so the layout invariant survives.
            self._rows = self._rows[0::2]
            self._stride *= 2
        self._rows.append((tick, ts, chain))
        return True

    def rows(self) -> list[tuple[int, float, str]]:
        return list(self._rows)


# ---------------------------------------------------------------------------
# Trails and captures
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EpochCapture:
    """One epoch's full field vector (bisection re-runs only)."""

    tick: int
    ts: float
    fields: dict[str, float]
    chain: str


@dataclass
class DigestTrail:
    """The digest output of one run (plain data, picklable).

    Attached to :attr:`repro.sim.results.SimulationResult.digests` when
    the run carried a recorder, and serialisable to JSON for
    ``repro diff --save`` / ``--against``.
    """

    label: str
    epoch_cycles: float
    fields: tuple[str, ...]
    ticks: int
    stride: int
    chain_tip: str
    rows: list[tuple[int, float, str]]
    captures: list[EpochCapture] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "version": TRAIL_VERSION,
            "label": self.label,
            "epoch_cycles": self.epoch_cycles,
            "fields": list(self.fields),
            "ticks": self.ticks,
            "stride": self.stride,
            "chain_tip": self.chain_tip,
            "rows": [[tick, ts, chain] for tick, ts, chain in self.rows],
        }

    @classmethod
    def from_dict(cls, obj: Any, where: str = "trail") -> "DigestTrail":
        if not isinstance(obj, Mapping):
            raise DiffError(f"{where}: not a JSON object")
        if obj.get("version") != TRAIL_VERSION:
            raise DiffError(
                f"{where}: trail version {obj.get('version')!r} is not "
                f"the supported version {TRAIL_VERSION}")
        rows_raw = obj.get("rows")
        if not isinstance(rows_raw, list):
            raise DiffError(f"{where}: rows is not an array")
        rows: list[tuple[int, float, str]] = []
        for index, entry in enumerate(rows_raw):
            if (not isinstance(entry, Sequence) or len(entry) != 3
                    or isinstance(entry, (str, bytes))):
                raise DiffError(f"{where}: rows[{index}] is not a "
                                "[tick, ts, chain] triple")
            tick, ts, chain = entry
            if not isinstance(tick, int) or not isinstance(chain, str) \
                    or not isinstance(ts, (int, float)):
                raise DiffError(f"{where}: rows[{index}] has bad types")
            rows.append((tick, float(ts), chain))
        try:
            return cls(
                label=str(obj.get("label", "")),
                epoch_cycles=float(obj["epoch_cycles"]),
                fields=tuple(str(f) for f in obj.get("fields", [])),
                ticks=int(obj["ticks"]),
                stride=int(obj.get("stride", 1)),
                chain_tip=str(obj.get("chain_tip", "")),
                rows=rows,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DiffError(f"{where}: malformed trail ({exc})") from exc


def write_trail(trail: DigestTrail, path: str | Path) -> Path:
    """Serialise a trail to JSON (for later ``repro diff --against``)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(trail.as_dict(), handle)
    return path


def read_trail(path: str | Path) -> DigestTrail:
    """Load a trail written by :func:`write_trail`."""
    path = Path(path)
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DiffError(f"{path}: not valid JSON ({exc})") from exc
    return DigestTrail.from_dict(obj, where=str(path))


# ---------------------------------------------------------------------------
# The recorder
# ---------------------------------------------------------------------------

class DigestRecorder:
    """Per-epoch state-digest recorder attached to one engine run.

    Pass an instance as ``simulate(..., digests=recorder)``; the engine
    calls :meth:`bind` at construction and :meth:`sample` at each
    digest event plus once at the end of the run. Single-use — bind a
    fresh one per run.
    """

    def __init__(self, config: DigestConfig | None = None) -> None:
        self.config = config or DigestConfig()
        self.store: DigestStore | None = None
        self.fields: tuple[str, ...] = ()
        self.captures: list[EpochCapture] = []
        self.label = ""
        self.sample_cycles = 0.0
        self._engine = None
        self._slack = None
        self._chips: list = []
        self._read_requests: Callable[[], float] | None = None
        self._read_bus: Callable[[int], tuple[float, float]] | None = None
        self._n_buses = 0
        self._chain = b""
        self._chain_hex = ""
        self._last_ts = -math.inf

    # --- binding ----------------------------------------------------------

    def bind(self, engine) -> None:
        """Attach to an engine (fluid or precise) before its run starts."""
        if self._engine is not None:
            raise DiffError(
                "DigestRecorder is single-use: already bound to a run")
        self._engine = engine
        self._slack = getattr(engine.controller, "slack", None)

        period = self.config.epoch_cycles
        if period is None:
            period = (engine.controller.epoch_cycles()
                      or engine.config.alignment.epoch_cycles)
        self.sample_cycles = float(period)

        if hasattr(engine, "memory"):  # fluid
            self.label = "fluid"
            self._chips = list(engine.memory.chips)
            self._read_requests = engine._served_requests
            buses = engine.buses

            def read_bus(bus_id: int) -> tuple[float, float]:
                bus = buses[bus_id]
                busy = 1.0 if (bus.current is not None or bus.members) else 0.0
                return busy, float(len(bus.queue))
        else:  # precise
            self.label = "precise"
            self._chips = list(engine.chips)
            self._read_requests = engine._arrived_requests
            current, fifo = engine._bus_current, engine._bus_fifo

            def read_bus(bus_id: int) -> tuple[float, float]:
                busy = 1.0 if current[bus_id] is not None else 0.0
                return busy, float(len(fifo[bus_id]))
        self._read_bus = read_bus
        self._n_buses = engine.config.buses.count

        fields = list(SCALAR_FIELDS)
        for chip in self._chips:
            fields.append(f"chip{chip.chip_id}.energy_j")
            fields.append(f"chip{chip.chip_id}.power_w")
            fields.extend(f"chip{chip.chip_id}.{bucket}"
                          for bucket in RESIDENCY_BUCKETS)
        for bus_id in range(self._n_buses):
            fields.append(f"bus{bus_id}.busy")
            fields.append(f"bus{bus_id}.queue_depth")
        self.fields = tuple(fields)
        self.store = DigestStore(capacity=self.config.capacity)

    # --- sampling ---------------------------------------------------------

    def sample(self, now: float, final: bool = False) -> None:
        """Digest one read-only snapshot of the bound engine at ``now``."""
        engine = self._engine
        store = self.store
        if engine is None or store is None:
            raise DiffError("sample() before bind(): attach the recorder "
                            "via simulate(digests=...)")
        if final and now <= self._last_ts:
            return  # the last periodic digest already covered the end
        self._last_ts = now
        tick = store.ticks

        values: list[float] = [now]
        requests = self._read_requests()
        values.append(float(requests))
        degradation = engine.head_delay_total + engine.extra_service_total
        if self.config.inject_skew_epoch is not None \
                and tick == self.config.inject_skew_epoch:
            # Observed-series fault only: the simulation is untouched.
            degradation += self.config.inject_skew_cycles
        values.append(float(degradation))
        values.append(float(self._slack.slack(requests))
                      if self._slack is not None else 0.0)
        values.append(float(engine.controller.pending_count()))
        values.append(float(engine.migrations))
        for chip in self._chips:
            buckets, power = chip.observe(now)
            values.append(float(chip.energy.total))
            values.append(float(power))
            values.extend(float(buckets[bucket])
                          for bucket in RESIDENCY_BUCKETS)
        for bus_id in range(self._n_buses):
            busy, depth = self._read_bus(bus_id)
            values.append(busy)
            values.append(depth)

        # repr() of a float is shortest-round-trip exact, so the payload
        # encodes the bit pattern: any ULP of state difference flips the
        # chain from this epoch onward.
        payload = "|".join(repr(v) for v in values).encode("ascii")
        digest = hashlib.blake2b(self._chain + payload, digest_size=16)
        self._chain = digest.digest()
        self._chain_hex = digest.hexdigest()
        store.append(now, self._chain_hex)

        capture = self.config.capture_range
        if capture is not None and capture[0] <= tick <= capture[1]:
            self.captures.append(EpochCapture(
                tick=tick, ts=now,
                fields=dict(zip(self.fields, values)),
                chain=self._chain_hex))

    def close(self) -> None:  # symmetry with TelemetrySampler
        pass

    def trail(self) -> DigestTrail:
        """The run's trail (call after the run completed)."""
        if self.store is None:
            raise DiffError("trail() before bind()")
        return DigestTrail(
            label=self.label,
            epoch_cycles=self.sample_cycles,
            fields=self.fields,
            ticks=self.store.ticks,
            stride=self.store.stride,
            chain_tip=self._chain_hex,
            rows=self.store.rows(),
            captures=list(self.captures),
        )


# ---------------------------------------------------------------------------
# Chain comparison (the bisection)
# ---------------------------------------------------------------------------

def first_divergent_bracket(
        trail_a: DigestTrail,
        trail_b: DigestTrail) -> tuple[int, int] | None:
    """Tick bracket ``(lo, hi)`` containing the first divergence.

    ``None`` means the trails are identical (same epoch count, same
    chain tip — the tip transitively covers every epoch). Otherwise the
    first divergent epoch lies in ``[lo, hi]`` where ``hi`` is the first
    *retained* tick whose chains differ; the binary search exploits the
    chain prefix property (equal chain at tick t ⇒ equal state at every
    epoch ≤ t).
    """
    chains_a = {tick: chain for tick, _ts, chain in trail_a.rows}
    chains_b = {tick: chain for tick, _ts, chain in trail_b.rows}
    common = sorted(chains_a.keys() & chains_b.keys())

    def diverged(tick: int) -> bool:
        return chains_a[tick] != chains_b[tick]

    if not common or not diverged(common[-1]):
        # Every retained common chain agrees (or none are comparable).
        if (trail_a.ticks == trail_b.ticks
                and trail_a.chain_tip == trail_b.chain_tip
                and trail_a.ticks > 0):
            return None
        lo = common[-1] + 1 if common else 0
        hi = max(trail_a.ticks, trail_b.ticks) - 1
        return (lo, max(lo, hi))
    lo_i, hi_i = 0, len(common) - 1
    while lo_i < hi_i:
        mid = (lo_i + hi_i) // 2
        if diverged(common[mid]):
            hi_i = mid
        else:
            lo_i = mid + 1
    first_bad = common[lo_i]
    lo = common[lo_i - 1] + 1 if lo_i > 0 else 0
    return (lo, first_bad)


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FieldDivergence:
    """The first divergent (epoch, field) pair of a capture re-run."""

    tick: int
    ts_a: float
    ts_b: float
    name: str
    value_a: float | None
    value_b: float | None


@dataclass
class DivergenceReport:
    """Everything one diff pass established."""

    identical: bool
    label_a: str
    label_b: str
    ticks_a: int
    ticks_b: int
    epoch_cycles: float
    #: "field" (full attribution), "chain" (bracket only — e.g. when
    #: diffing against a saved trail that cannot be re-run), or
    #: "identical".
    mode: str
    bracket: tuple[int, int] | None = None
    divergence: FieldDivergence | None = None
    chain_tip: str = ""
    causes_a: dict[str, int] = field(default_factory=dict)
    causes_b: dict[str, int] = field(default_factory=dict)

    @property
    def epoch(self) -> int | None:
        """The first divergent epoch, when it is exactly known."""
        if self.divergence is not None:
            return self.divergence.tick
        if self.bracket is not None and self.bracket[0] == self.bracket[1]:
            return self.bracket[0]
        return None

    def summary_line(self) -> str:
        """The one-line greppable verdict (``diff.divergence:`` /
        ``diff.identical:``), mirroring ``fleet.stall:``."""
        if self.identical:
            return (f"diff.identical: epochs={self.ticks_a} "
                    f"chain={self.chain_tip}")
        if self.divergence is not None:
            d = self.divergence
            return (f"diff.divergence: epoch={d.tick} field={d.name} "
                    f"a={_fmt(d.value_a)} b={_fmt(d.value_b)} "
                    f"ts={d.ts_a:g}")
        lo, hi = self.bracket or (0, 0)
        return (f"diff.divergence: epoch={hi} bracket={lo}..{hi} "
                "field=unresolved (chain-level comparison)")

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"digest diff: {self.label_a} vs {self.label_b} "
                 f"(epoch = {self.epoch_cycles:g} cycles)"]
        lines.append(f"  epochs: a={self.ticks_a} b={self.ticks_b}")
        if self.identical:
            lines.append(f"  chains identical (tip {self.chain_tip})")
            return "\n".join(lines)
        if self.bracket is not None:
            lo, hi = self.bracket
            lines.append(f"  chains first diverge in epoch bracket "
                         f"[{lo}, {hi}]")
        if self.divergence is not None:
            d = self.divergence
            lines.append(f"  first divergent epoch: {d.tick} "
                         f"(ts a={d.ts_a:g}, b={d.ts_b:g})")
            delta = ""
            if d.value_a is not None and d.value_b is not None:
                delta = f"  (delta {d.value_b - d.value_a:+g})"
            lines.append(f"  first divergent field: {d.name}  "
                         f"a={_fmt(d.value_a)}  b={_fmt(d.value_b)}"
                         f"{delta}")
        else:
            lines.append("  field attribution unavailable (chain-level "
                         "comparison only — re-run both sides to "
                         "attribute)")
        for label, causes in ((self.label_a, self.causes_a),
                              (self.label_b, self.causes_b)):
            if causes:
                top = sorted(causes.items(), key=lambda kv: (-kv[1], kv[0]))
                summary = ", ".join(f"{name} x{count}"
                                    for name, count in top[:8])
                lines.append(f"  window causes ({label}): {summary}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "identical": self.identical,
            "mode": self.mode,
            "label_a": self.label_a,
            "label_b": self.label_b,
            "ticks_a": self.ticks_a,
            "ticks_b": self.ticks_b,
            "epoch_cycles": self.epoch_cycles,
            "epoch": self.epoch,
        }
        if self.bracket is not None:
            out["bracket"] = list(self.bracket)
        if self.divergence is not None:
            d = self.divergence
            out["divergence"] = {
                "epoch": d.tick, "ts_a": d.ts_a, "ts_b": d.ts_b,
                "field": d.name, "value_a": d.value_a,
                "value_b": d.value_b,
            }
        if self.chain_tip:
            out["chain_tip"] = self.chain_tip
        if self.causes_a:
            out["causes_a"] = dict(self.causes_a)
        if self.causes_b:
            out["causes_b"] = dict(self.causes_b)
        return out


def _fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:g}"


def _first_capture_divergence(
        captures_a: Sequence[EpochCapture],
        captures_b: Sequence[EpochCapture],
        fields: Sequence[str]) -> FieldDivergence | None:
    by_tick_a = {c.tick: c for c in captures_a}
    by_tick_b = {c.tick: c for c in captures_b}
    for tick in sorted(by_tick_a.keys() | by_tick_b.keys()):
        cap_a = by_tick_a.get(tick)
        cap_b = by_tick_b.get(tick)
        if cap_a is None or cap_b is None:
            # One run ran out of epochs inside the bracket.
            present = cap_a or cap_b
            return FieldDivergence(
                tick=tick,
                ts_a=cap_a.ts if cap_a else math.nan,
                ts_b=cap_b.ts if cap_b else math.nan,
                name="(epoch missing: runs have different lengths)",
                value_a=cap_a.ts if cap_a else None,
                value_b=cap_b.ts if cap_b else None)
        for name in fields:
            va = cap_a.fields.get(name)
            vb = cap_b.fields.get(name)
            if va != vb:
                return FieldDivergence(tick=tick, ts_a=cap_a.ts,
                                       ts_b=cap_b.ts, name=name,
                                       value_a=va, value_b=vb)
    return None


def _window_causes(tracer, lo_ts: float, hi_ts: float) -> dict[str, int]:
    """Event-name counts inside the divergence window ``(lo, hi]``."""
    if tracer is None:
        return {}
    counts: dict[str, int] = {}
    for event in tracer.events:
        if lo_ts < event.ts <= hi_ts:
            counts[event.name] = counts.get(event.name, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# The diff driver
# ---------------------------------------------------------------------------

#: A runner takes a DigestConfig (and an optional tracer) and produces
#: the run's DigestTrail. See :meth:`SimRunSpec.runner`.
Runner = Callable[..., DigestTrail]


def diff_runs(run_a: Runner | None,
              run_b: Runner | None = None,
              *,
              label_a: str = "run A",
              label_b: str = "run B",
              epoch_cycles: float | None = None,
              capacity: int = 4096,
              trail_a: DigestTrail | None = None,
              trail_b: DigestTrail | None = None,
              collect_causes: bool = True,
              tracer_a=None,
              tracer_b=None) -> DivergenceReport:
    """Compare two runs' digest chains and localise the divergence.

    Either side may be supplied as an already-computed ``trail``
    (``repro diff --against``); sides without a runner can only be
    compared at chain level (no field attribution without re-running).

    Args:
        run_a / run_b: runner callables (``run(config, tracer=None) ->
            DigestTrail``), or ``None`` when the matching ``trail_*`` is
            given.
        epoch_cycles / capacity: forwarded into the
            :class:`DigestConfig` of every run.
        collect_causes: trace the capture re-runs with a
            :class:`~repro.obs.tracer.RingTracer` and count the event
            names inside the divergence window.
        tracer_a / tracer_b: optional tracers attached to the *initial*
            runs (the CLI uses this for the aligned Perfetto export).
    """
    base = DigestConfig(epoch_cycles=epoch_cycles, capacity=capacity)
    if trail_a is None:
        if run_a is None:
            raise DiffError("diff_runs needs run_a or trail_a")
        trail_a = run_a(base, tracer=tracer_a)
    if trail_b is None:
        if run_b is None:
            raise DiffError("diff_runs needs run_b or trail_b")
        trail_b = run_b(base, tracer=tracer_b)

    common = dict(label_a=label_a, label_b=label_b,
                  ticks_a=trail_a.ticks, ticks_b=trail_b.ticks,
                  epoch_cycles=trail_a.epoch_cycles)
    bracket = first_divergent_bracket(trail_a, trail_b)
    if bracket is None:
        return DivergenceReport(identical=True, mode="identical",
                                chain_tip=trail_a.chain_tip, **common)
    if run_a is None or run_b is None:
        return DivergenceReport(identical=False, mode="chain",
                                bracket=bracket, **common)

    # Re-run both sides with full state capture across the bracket
    # (one epoch earlier as the known-good anchor) and attribute the
    # first divergent field.
    lo, hi = bracket
    capture_config = replace(base, capture_range=(max(0, lo - 1), hi))
    ring_a = ring_b = None
    if collect_causes:
        from repro.obs.tracer import RingTracer

        ring_a, ring_b = RingTracer(), RingTracer()
    capture_a = run_a(capture_config, tracer=ring_a)
    capture_b = run_b(capture_config, tracer=ring_b)
    divergence = _first_capture_divergence(
        capture_a.captures, capture_b.captures, capture_a.fields)
    if divergence is None:
        # Retained chains disagreed but every captured field matches —
        # only possible when the runs were not reproduced faithfully.
        return DivergenceReport(identical=False, mode="chain",
                                bracket=bracket, **common)
    prior = [c.ts for c in capture_a.captures
             if c.tick < divergence.tick]
    window_lo = max(prior) if prior else 0.0
    window_hi = max(v for v in (divergence.ts_a, divergence.ts_b)
                    if not math.isnan(v))
    return DivergenceReport(
        identical=False, mode="field", bracket=bracket,
        divergence=divergence,
        causes_a=_window_causes(ring_a, window_lo, window_hi),
        causes_b=_window_causes(ring_b, window_lo, window_hi),
        **common)


# ---------------------------------------------------------------------------
# Simulation run specs (CLI + test harness glue)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SimRunSpec:
    """A declarative simulation run for :func:`diff_runs`.

    ``runner()`` closes over the spec and drives
    :func:`repro.sim.run.simulate` with a fresh
    :class:`DigestRecorder` per invocation — ``diff_runs`` calls it
    twice (trail pass, then capture pass). The skew-injection fields
    live on the spec (not the shared :class:`DigestConfig`) so a fault
    can be injected into one side only.
    """

    trace: Any
    config: Any = None
    technique: str = "baseline"
    engine: str = "fluid"
    mu: float | None = None
    cp_limit: float | None = None
    seed: int = 0
    inject_skew_epoch: int | None = None
    inject_skew_cycles: float = 1.0

    @property
    def label(self) -> str:
        knob = ""
        if self.cp_limit is not None:
            knob = f" cp={self.cp_limit:g}"
        elif self.mu is not None:
            knob = f" mu={self.mu:g}"
        skew = (f" +skew@{self.inject_skew_epoch}"
                if self.inject_skew_epoch is not None else "")
        return f"{self.engine}/{self.technique}{knob} seed={self.seed}{skew}"

    def runner(self) -> Runner:
        def run(config: DigestConfig, tracer=None) -> DigestTrail:
            from repro.sim.run import simulate

            recorder = DigestRecorder(replace(
                config,
                inject_skew_epoch=self.inject_skew_epoch,
                inject_skew_cycles=self.inject_skew_cycles))
            simulate(self.trace, config=self.config,
                     technique=self.technique, engine=self.engine,
                     mu=self.mu, cp_limit=self.cp_limit, seed=self.seed,
                     tracer=tracer, digests=recorder)
            return recorder.trail()
        return run


def diff_specs(spec_a: SimRunSpec, spec_b: SimRunSpec,
               **kwargs) -> DivergenceReport:
    """Diff two declarative runs (labels derived from the specs)."""
    kwargs.setdefault("label_a", spec_a.label)
    kwargs.setdefault("label_b", spec_b.label)
    return diff_runs(spec_a.runner(), spec_b.runner(), **kwargs)


# ---------------------------------------------------------------------------
# Result deltas (exactness-test failure messages)
# ---------------------------------------------------------------------------

def result_delta(a, b, limit: int = 12) -> list[str]:
    """First field-by-field differences of two results (or plain data).

    Walks the two objects structurally (dataclasses via ``__dict__``,
    mappings, sequences) and returns up to ``limit`` human-readable
    ``path: a=<x> b=<y>`` lines — the failure-message companion of
    :func:`diff_runs` for end-of-run comparisons.
    """
    lines: list[str] = []

    def walk(path: str, va, vb) -> None:
        if len(lines) >= limit:
            return
        if va is vb:
            return
        if isinstance(va, Mapping) and isinstance(vb, Mapping):
            for key in sorted(set(va) | set(vb), key=str):
                walk(f"{path}[{key!r}]", va.get(key), vb.get(key))
            return
        if (isinstance(va, (list, tuple)) and isinstance(vb, (list, tuple))):
            if len(va) != len(vb):
                lines.append(f"{path}: lengths differ a={len(va)} "
                             f"b={len(vb)}")
                return
            for index, (xa, xb) in enumerate(zip(va, vb)):
                walk(f"{path}[{index}]", xa, xb)
            return
        if hasattr(va, "__dict__") and hasattr(vb, "__dict__") \
                and type(va) is type(vb):
            for key in va.__dict__:
                walk(f"{path}.{key}" if path else key,
                     va.__dict__[key], vb.__dict__.get(key))
            return
        if va != vb:
            lines.append(f"{path}: a={va!r} b={vb!r}")

    walk("", a, b)
    return lines


def render_result_delta(a, b, label_a: str = "a", label_b: str = "b",
                        limit: int = 12) -> str:
    """Failure-message text naming the first disagreeing result fields."""
    lines = result_delta(a, b, limit=limit)
    if not lines:
        return f"results of {label_a} and {label_b} are identical"
    head = (f"results diverged ({label_a} vs {label_b}); first "
            f"{len(lines)} differing field(s):")
    return "\n".join([head] + [f"  {line}" for line in lines])


__all__ = [
    "TRAIL_VERSION", "RESIDENCY_BUCKETS", "SCALAR_FIELDS",
    "DigestConfig", "DigestStore", "DigestRecorder",
    "DigestTrail", "EpochCapture", "write_trail", "read_trail",
    "first_divergent_bracket", "FieldDivergence", "DivergenceReport",
    "diff_runs", "SimRunSpec", "diff_specs",
    "result_delta", "render_result_delta",
]
