"""Cross-process observability for the exec fan-out.

:func:`repro.exec.run_many` workers normally run blind: their traces and
audit results die at the process boundary, and a stalled worker is a
silent deadlock. This module closes that gap with three pieces:

* **Worker side** — :func:`fleet_worker_init` (a pool initializer) hands
  every worker the collector's queue; :func:`fleet_timed_call` wraps the
  job body and streams structured progress events back over it:
  ``job.started``, periodic ``job.heartbeat`` (from a tiny daemon
  thread), and ``job.finished`` carrying the job's ring-buffered trace
  spans, its audit-violation rollup, and an optional telemetry summary.
  Messages are plain picklable dicts; a worker that cannot post (parent
  gone) drops the message rather than failing the job.

* **Collector** — :class:`FleetCollector` owns the queue and drains it
  on a daemon thread in the submitting process. It tracks per-worker and
  per-job state, and a watchdog on the heartbeat stream detects stalled
  workers: no heartbeat for a bound derived from observed job wall-times
  flags the job, logs a ``fleet.stall`` diagnosis naming it, and hands
  the key back to the runner (:meth:`take_stalled`) for cancellation and
  serial requeue. Live state fans out through an owned
  :class:`~repro.obs.telemetry.SseBroker` so ``repro sweep --watch`` can
  serve a fleet dashboard (:mod:`repro.obs.serve`).

* **Outputs** — :meth:`FleetCollector.report` aggregates everything into
  a :class:`FleetReport` (attached to bench records), and
  :meth:`FleetCollector.chrome_trace` merges the per-job spans into one
  fleet-wide Perfetto trace: a sweep lane with scheduling/queueing/cache
  annotations plus one track per worker, with each job's simulation
  spans rebased onto its wall-clock interval and stalled jobs flagged.

Span capture attaches a :class:`~repro.obs.tracer.RingTracer` to the
default job body — traced runs are bit-identical (a tier-1 gated
guarantee), so fleet-observed sweeps return byte-identical results to
serial ones. Per-job telemetry sampling is **opt-in**
(``sample_telemetry``): the sampler can perturb the fluid engine's
head-delay float rounding at ULP scale, which would break that
byte-identity.

Timestamps ride ``time.monotonic()``: on Linux ``CLOCK_MONOTONIC`` is
system-wide, so worker and parent clocks are directly comparable.
"""

from __future__ import annotations

import json
import logging
import math
import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError
from repro.obs.events import (
    PH_INSTANT,
    PH_SPAN,
    TRACK_FLEET,
    Event,
    worker_track,
)
from repro.obs.telemetry import SseBroker

logger = logging.getLogger(__name__)

#: The fleet trace's clock: events carry microsecond timestamps, so the
#: exporter's cycles->us conversion must be the identity.
FLEET_TRACE_HZ = 1e6


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FleetConfig:
    """Knobs for the worker emitters and the collector watchdog.

    Attributes:
        heartbeat_s: period of the per-job worker heartbeat thread.
        poll_s: collector queue-poll period (bounds watchdog latency).
        stall_after_s: absolute no-heartbeat bound before a job is
            declared stalled; ``None`` derives one from observed job
            wall-times (see :meth:`FleetCollector.stall_bound`).
        stall_floor_s: lower bound of the derived stall bound.
        stall_wall_factor: derived bound = this factor times the largest
            finished job wall-time (never below the floor or 20
            heartbeats).
        capture_spans: attach a ring tracer to default job bodies and
            ship the retained spans in ``job.finished``.
        span_capacity: ring capacity per job (and the shipped-span cap).
        sample_telemetry: also attach a per-job
            :class:`~repro.obs.telemetry.TelemetrySampler` and ship a
            summary. Off by default: sampling can perturb fluid-engine
            float rounding at ULP scale, breaking sweep byte-identity.
        inject_stall_tag: fault injection — a worker whose job tag
            equals this freezes (sleeps without heartbeats) for
            ``inject_stall_s`` before running, so tests and CI can prove
            the watchdog detects, attributes, and recovers the stall.
        inject_stall_s: how long the injected freeze lasts.
    """

    heartbeat_s: float = 0.25
    poll_s: float = 0.2
    stall_after_s: float | None = None
    stall_floor_s: float = 5.0
    stall_wall_factor: float = 8.0
    capture_spans: bool = True
    span_capacity: int = 512
    sample_telemetry: bool = False
    inject_stall_tag: str = ""
    inject_stall_s: float = 0.0

    def __post_init__(self) -> None:
        if self.heartbeat_s <= 0 or self.poll_s <= 0:
            raise ConfigurationError(
                "heartbeat_s and poll_s must be positive")
        if self.stall_after_s is not None and self.stall_after_s <= 0:
            raise ConfigurationError("stall_after_s must be positive")
        if self.stall_floor_s <= 0 or self.stall_wall_factor <= 0:
            raise ConfigurationError(
                "stall_floor_s and stall_wall_factor must be positive")
        if self.span_capacity < 1:
            raise ConfigurationError("span_capacity must be at least 1")
        if self.inject_stall_s < 0:
            raise ConfigurationError("inject_stall_s must be >= 0")


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: (queue, opts) installed by the pool initializer in each worker.
_WORKER_CTX: tuple[Any, dict[str, Any]] | None = None


def fleet_worker_init(fleet_queue, opts: Mapping[str, Any]) -> None:
    """Process-pool initializer: bind this worker to the collector."""
    global _WORKER_CTX
    _WORKER_CTX = (fleet_queue, dict(opts))


def _post(fleet_queue, payload: dict[str, Any]) -> None:
    """Ship one event; observability must never fail the job."""
    try:
        fleet_queue.put(payload)
    except Exception:  # parent gone / queue closed
        pass


def _heartbeat_loop(fleet_queue, pid: int, key: str,
                    stop: threading.Event, period_s: float) -> None:
    started = time.monotonic()
    while not stop.wait(period_s):
        _post(fleet_queue, {
            "kind": "job.heartbeat", "worker": pid, "key": key,
            "mono": time.monotonic(),
            "busy_s": time.monotonic() - started,
        })


def _observed_body(job, opts: Mapping[str, Any]):
    """Run the default job body with a ring tracer (and optional
    telemetry sampler) attached; returns (result, spans_payload)."""
    from repro.obs.tracer import RingTracer
    from repro.sim.run import simulate

    capacity = int(opts.get("span_capacity", 512))
    tracer = RingTracer(capacity=capacity)
    sampler = None
    if opts.get("sample_telemetry"):
        from repro.obs.telemetry import TelemetrySampler

        sampler = TelemetrySampler()
    result = simulate(job.trace, config=job.config,
                      technique=job.technique, engine=job.engine,
                      mu=job.mu, cp_limit=job.cp_limit, seed=job.seed,
                      tracer=tracer, telemetry=sampler)
    payload: dict[str, Any] = {
        "spans": [event.as_dict() for event in tracer.events],
        "spans_dropped": tracer.dropped,
        "duration_cycles": float(result.duration_cycles),
    }
    if sampler is not None:
        payload["telemetry"] = {
            "samples": sampler.samples_captured,
            "anomalies": len(sampler.anomalies),
        }
    return result, payload


def fleet_timed_call(worker: Callable, job, key: str,
                     default_body: bool):
    """The fleet-instrumented pool job body: run, time, and report.

    Mirrors :func:`repro.exec.runner._timed_call` (returns ``(result,
    wall_s)`` and re-raises job exceptions unchanged) while streaming
    ``job.started`` / ``job.heartbeat`` / ``job.finished`` to the
    collector. ``default_body`` marks the stock simulate() body, which
    is re-run with a ring tracer attached so spans can be shipped.
    """
    ctx = _WORKER_CTX
    if ctx is None:  # pool built without the fleet initializer
        start = time.perf_counter()
        result = worker(job)
        return result, time.perf_counter() - start
    fleet_queue, opts = ctx
    pid = os.getpid()
    tag = getattr(job, "label", None) or job.technique
    _post(fleet_queue, {
        "kind": "job.started", "worker": pid, "key": key, "tag": tag,
        "technique": job.technique, "mono": time.monotonic(),
    })
    stall_s = float(opts.get("inject_stall_s", 0.0))
    if stall_s > 0 and tag == opts.get("inject_stall_tag"):
        # Freeze *without* heartbeats so the watchdog sees a dead worker.
        time.sleep(stall_s)
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(fleet_queue, pid, key, stop,
              float(opts.get("heartbeat_s", 0.25))),
        name="fleet-heartbeat", daemon=True)
    beat.start()
    start = time.perf_counter()
    try:
        if default_body and opts.get("capture_spans", True):
            result, observed = _observed_body(job, opts)
        else:
            result = worker(job)
            observed = {}
        wall = time.perf_counter() - start
    except BaseException as exc:
        stop.set()
        _post(fleet_queue, {
            "kind": "job.finished", "worker": pid, "key": key,
            "mono": time.monotonic(), "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "wall_s": time.perf_counter() - start,
        })
        raise
    stop.set()
    from repro.obs.audit import audit_result

    violations: dict[str, int] = {}
    for violation in audit_result(result):
        violations[violation.kind] = violations.get(violation.kind, 0) + 1
    finished: dict[str, Any] = {
        "kind": "job.finished", "worker": pid, "key": key,
        "mono": time.monotonic(), "ok": True, "error": None,
        "wall_s": wall, "violations": violations,
        "energy_j": float(result.energy_joules),
        "requests": float(result.requests),
    }
    finished.update(observed)
    _post(fleet_queue, finished)
    return result, wall


# ---------------------------------------------------------------------------
# Collector state
# ---------------------------------------------------------------------------

@dataclass
class JobRecord:
    """Everything the collector knows about one unique job key."""

    key: str
    tag: str = ""
    technique: str = ""
    submitted_mono: float | None = None
    started_mono: float | None = None
    finished_mono: float | None = None
    last_seen_mono: float | None = None
    worker: int | None = None  # worker slot, 0 = serial parent
    ok: bool | None = None
    error: str | None = None
    wall_s: float = 0.0
    cached: bool = False
    serial: bool = False
    requeued: bool = False
    stalled: bool = False
    spans: list[dict[str, Any]] = field(default_factory=list)
    spans_dropped: int = 0
    duration_cycles: float = 0.0
    violations: dict[str, int] = field(default_factory=dict)
    energy_j: float | None = None
    requests: float | None = None
    telemetry: dict[str, Any] | None = None

    @property
    def running(self) -> bool:
        return (self.started_mono is not None
                and self.finished_mono is None
                and not self.serial and not self.stalled)


@dataclass
class _WorkerState:
    slot: int
    pid: int
    jobs_done: int = 0
    wall_s: float = 0.0
    busy_key: str | None = None
    last_seen_mono: float = 0.0
    stalled: bool = False


@dataclass(frozen=True)
class FleetStall:
    """One detected worker stall, attributed to its job."""

    key: str
    tag: str
    worker: int | None
    silent_s: float
    bound_s: float
    diagnosis: str

    def as_dict(self) -> dict[str, Any]:
        return {"key": self.key, "tag": self.tag, "worker": self.worker,
                "silent_s": self.silent_s, "bound_s": self.bound_s,
                "diagnosis": self.diagnosis}


@dataclass(frozen=True)
class FleetReport:
    """Sweep-level rollup of one fleet-observed ``run_many`` call."""

    total: int
    computed: int
    cached: int
    failed: int
    serial: int
    requeued: int
    wall_s: float
    jobs_per_s: float
    cache_hit_rate: float
    violations: dict[str, int]
    stalls: tuple[FleetStall, ...]
    workers: tuple[dict[str, Any], ...]
    spans_merged: int
    events_received: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "total": self.total, "computed": self.computed,
            "cached": self.cached, "failed": self.failed,
            "serial": self.serial, "requeued": self.requeued,
            "wall_s": self.wall_s, "jobs_per_s": self.jobs_per_s,
            "cache_hit_rate": self.cache_hit_rate,
            "violations": dict(self.violations),
            "stalls": [stall.as_dict() for stall in self.stalls],
            "workers": [dict(row) for row in self.workers],
            "spans_merged": self.spans_merged,
            "events_received": self.events_received,
        }

    def render(self) -> str:
        """Human-readable rollup; stall lines carry the greppable
        ``fleet.stall:`` prefix CI keys on."""
        lines = [
            f"fleet: {self.total} job(s) — {self.computed} computed, "
            f"{self.cached} cached, {self.failed} failed, "
            f"{self.serial} serial, {self.requeued} requeued — in "
            f"{self.wall_s:.2f}s ({self.jobs_per_s:.2f} jobs/s, cache "
            f"hit rate {self.cache_hit_rate:.0%})"
        ]
        for row in self.workers:
            lines.append(
                f"  worker {row['slot']}"
                f"{' (serial parent)' if row['slot'] == 0 else ''}: "
                f"{row['jobs_done']} job(s), {row['wall_s']:.2f}s busy"
                f"{' [stalled]' if row.get('stalled') else ''}")
        if self.violations:
            detail = ", ".join(f"{kind}: {count}" for kind, count
                               in sorted(self.violations.items()))
            lines.append(f"  violations: {detail}")
        else:
            lines.append("  violations: none")
        for stall in self.stalls:
            lines.append(stall.diagnosis)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The collector
# ---------------------------------------------------------------------------

class FleetCollector:
    """Parent-side aggregator for the worker event stream.

    Create one per ``run_many`` fan-out and pass it as ``fleet=``. The
    runner calls :meth:`start`, the submission hooks, and
    :meth:`quiesce`; the dashboard reads :meth:`snapshot` and subscribes
    to :attr:`broker`; callers pull :meth:`report` /
    :meth:`chrome_trace` afterwards.

    ``clock`` is injectable for deterministic watchdog tests.
    """

    def __init__(self, config: FleetConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or FleetConfig()
        self._clock = clock
        from repro.exec.runner import executor_mp_context
        import multiprocessing

        context = executor_mp_context() or multiprocessing.get_context()
        self.queue = context.Queue()
        self.broker = SseBroker()
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.jobs: dict[str, JobRecord] = {}
        self._job_order: list[str] = []
        self._workers: dict[int, _WorkerState] = {}  # pid -> state
        self.stalls: list[FleetStall] = []
        self._stalled_pending: list[str] = []
        self._max_wall_s = 0.0
        self.total_expected = 0
        self.started_mono = self._clock()
        self.finished_mono: float | None = None
        self.events_received = 0
        self._last_published = 0.0

    # --- pool wiring ------------------------------------------------------

    def worker_opts(self) -> dict[str, Any]:
        """The picklable knob dict shipped to every worker."""
        return {
            "heartbeat_s": self.config.heartbeat_s,
            "capture_spans": self.config.capture_spans,
            "span_capacity": self.config.span_capacity,
            "sample_telemetry": self.config.sample_telemetry,
            "inject_stall_tag": self.config.inject_stall_tag,
            "inject_stall_s": self.config.inject_stall_s,
        }

    def initargs(self) -> tuple:
        """``(initializer args)`` for the pool's :func:`fleet_worker_init`."""
        return (self.queue, self.worker_opts())

    # --- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Start the drain thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._drain, name="fleet-collector", daemon=True)
            self._thread.start()

    def _drain(self) -> None:
        while not self._stop.is_set():
            try:
                message = self.queue.get(timeout=self.config.poll_s)
            except queue_module.Empty:
                message = None
            except (EOFError, OSError):  # queue torn down under us
                break
            if message is not None:
                self.handle(message)
                while True:  # drain bursts without watchdog latency
                    try:
                        self.handle(self.queue.get_nowait())
                    except queue_module.Empty:
                        break
                    except (EOFError, OSError):
                        return
            self.check_stalls()

    def quiesce(self, wait_s: float = 2.0) -> None:
        """Flush and stop the drain thread at the end of a run.

        Waits up to ``wait_s`` for started-but-unfinished jobs to report
        in (the runner has already collected every result, so this only
        covers queue latency), drains whatever is left synchronously,
        and stops the thread. The collector stays readable — report,
        snapshot, and trace all keep working — and the broker stays open
        for a lingering dashboard.
        """
        deadline = self._clock() + wait_s
        while self._clock() < deadline:
            with self._lock:
                inflight = any(record.running
                               for record in self.jobs.values())
            if not inflight:
                break
            time.sleep(min(0.05, self.config.poll_s))
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(1.0, 4 * self.config.poll_s))
            self._thread = None
        while True:
            try:
                self.handle(self.queue.get_nowait())
            except (queue_module.Empty, EOFError, OSError):
                break
        with self._lock:
            if self.finished_mono is None:
                self.finished_mono = self._clock()
        self._publish_snapshot(force=True)

    def close(self) -> None:
        """Tear down: quiesce, wake SSE subscribers, drop the queue."""
        self.quiesce(wait_s=0.0)
        self.broker.close()
        try:
            self.queue.close()
        except (OSError, AttributeError):  # pragma: no cover
            pass

    # --- runner hooks (submitting process) --------------------------------

    def _record(self, key: str) -> JobRecord:
        record = self.jobs.get(key)
        if record is None:
            record = JobRecord(key=key)
            self.jobs[key] = record
            self._job_order.append(key)
        return record

    def expect(self, total: int) -> None:
        with self._lock:
            self.total_expected = int(total)

    def note_submitted(self, key: str, job) -> None:
        with self._lock:
            record = self._record(key)
            record.submitted_mono = self._clock()
            record.tag = getattr(job, "label", None) or job.technique
            record.technique = job.technique

    def note_cache_hit(self, key: str, job) -> None:
        now = self._clock()
        with self._lock:
            record = self._record(key)
            record.tag = record.tag \
                or getattr(job, "label", None) or job.technique
            record.technique = record.technique or job.technique
            if record.submitted_mono is None:
                record.submitted_mono = now
            record.cached = True
            record.ok = True
            record.finished_mono = now
        self._publish_snapshot()

    def note_serial_start(self, key: str) -> None:
        now = self._clock()
        with self._lock:
            record = self._record(key)
            record.serial = True
            record.worker = 0
            state = self._workers.setdefault(
                0, _WorkerState(slot=0, pid=os.getpid()))
            state.busy_key = key
            state.last_seen_mono = now
            if record.started_mono is None:
                record.started_mono = now
            record.last_seen_mono = now
        self._publish_snapshot()

    def note_serial_finish(self, key: str, ok: bool,
                           error: str | None, wall_s: float) -> None:
        now = self._clock()
        with self._lock:
            record = self._record(key)
            record.serial = True
            record.finished_mono = now
            record.ok = ok
            record.error = error
            record.wall_s = wall_s
            if wall_s > 0:
                self._max_wall_s = max(self._max_wall_s, wall_s)
            state = self._workers.get(0)
            if state is not None:
                state.busy_key = None
                state.jobs_done += 1
                state.wall_s += wall_s
                state.last_seen_mono = now
        self._publish_snapshot()

    def note_requeued(self, key: str) -> None:
        with self._lock:
            record = self._record(key)
            record.requeued = True

    def note_failed(self, key: str, error: str) -> None:
        """A job the runner gave up on (explicit timeout, abandoned)."""
        now = self._clock()
        with self._lock:
            record = self._record(key)
            record.finished_mono = now
            record.ok = False
            record.error = error
        self._publish_snapshot()

    # --- worker message handling ------------------------------------------

    def handle(self, message: Mapping[str, Any]) -> None:
        """Apply one worker event (public so tests can drive it)."""
        if not isinstance(message, Mapping):
            return
        kind = message.get("kind")
        key = message.get("key")
        if not isinstance(key, str):
            return
        now = float(message.get("mono", self._clock()))
        with self._lock:
            self.events_received += 1
            state = self._worker_state(message.get("worker"))
            if state is not None:
                state.last_seen_mono = max(state.last_seen_mono, now)
            record = self._record(key)
            record.last_seen_mono = max(record.last_seen_mono or 0.0, now)
            if kind == "job.started":
                record.started_mono = now
                record.tag = message.get("tag", record.tag) or record.tag
                record.technique = (message.get("technique")
                                    or record.technique)
                if state is not None:
                    record.worker = state.slot
                    state.busy_key = key
            elif kind == "job.heartbeat":
                pass  # last_seen bookkeeping above is the payload
            elif kind == "job.finished":
                record.finished_mono = now
                record.ok = bool(message.get("ok"))
                record.error = message.get("error")
                record.wall_s = float(message.get("wall_s", 0.0))
                if record.ok and record.wall_s > 0:
                    self._max_wall_s = max(self._max_wall_s,
                                           record.wall_s)
                spans = message.get("spans")
                if isinstance(spans, list):
                    record.spans = spans
                record.spans_dropped = int(
                    message.get("spans_dropped", 0))
                record.duration_cycles = float(
                    message.get("duration_cycles", 0.0))
                violations = message.get("violations")
                if isinstance(violations, Mapping):
                    record.violations = {str(k): int(v)
                                         for k, v in violations.items()}
                record.energy_j = message.get("energy_j")
                record.requests = message.get("requests")
                telemetry = message.get("telemetry")
                if isinstance(telemetry, Mapping):
                    record.telemetry = dict(telemetry)
                if state is not None:
                    if state.busy_key == key:
                        state.busy_key = None
                    state.jobs_done += 1
                    state.wall_s += record.wall_s
        self._publish_snapshot()

    def _worker_state(self, pid) -> _WorkerState | None:
        if not isinstance(pid, int):
            return None
        state = self._workers.get(pid)
        if state is None:
            slot = 1 + sum(1 for s in self._workers.values() if s.slot > 0)
            state = _WorkerState(slot=slot, pid=pid)
            self._workers[pid] = state
        return state

    # --- watchdog ---------------------------------------------------------

    def stall_bound(self) -> float:
        """Seconds of heartbeat silence before a running job is stalled.

        Either the configured absolute bound, or one derived from the
        observed job wall-times: generous (8x the slowest finished job)
        but never below the floor or 20 heartbeat periods, so a cold
        fleet with no finished jobs yet still has a sane bound.
        """
        if self.config.stall_after_s is not None:
            return self.config.stall_after_s
        return max(self.config.stall_floor_s,
                   20.0 * self.config.heartbeat_s,
                   self.config.stall_wall_factor * self._max_wall_s)

    def check_stalls(self) -> list[FleetStall]:
        """Scan running jobs for heartbeat silence; returns new stalls."""
        fresh: list[FleetStall] = []
        now = self._clock()
        with self._lock:
            bound = self.stall_bound()
            for record in self.jobs.values():
                if not record.running:
                    continue
                last = record.last_seen_mono or record.started_mono
                silent = now - last
                if silent <= bound:
                    continue
                record.stalled = True
                diagnosis = (
                    f"fleet.stall: job {record.tag or record.key[:12]} "
                    f"(key {record.key[:12]}) on worker "
                    f"{record.worker if record.worker is not None else '?'}"
                    f" went silent for {silent:.1f}s (bound {bound:.1f}s)"
                    " — cancelling and requeueing onto the serial path")
                stall = FleetStall(
                    key=record.key, tag=record.tag, worker=record.worker,
                    silent_s=silent, bound_s=bound, diagnosis=diagnosis)
                self.stalls.append(stall)
                self._stalled_pending.append(record.key)
                fresh.append(stall)
                if record.worker is not None:
                    for state in self._workers.values():
                        if state.slot == record.worker:
                            state.stalled = True
                            if state.busy_key == record.key:
                                state.busy_key = None
        for stall in fresh:
            logger.warning("%s", stall.diagnosis)
            self.broker.publish("stall", json.dumps(stall.as_dict()))
        if fresh:
            self._publish_snapshot(force=True)
        return fresh

    def take_stalled(self) -> list[str]:
        """Job keys newly declared stalled (each returned exactly once);
        the runner cancels their futures and retries them serially."""
        with self._lock:
            out = self._stalled_pending
            self._stalled_pending = []
            return out

    # --- live snapshot / dashboard ----------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The live fleet state the dashboard renders."""
        now = self._clock()
        with self._lock:
            records = list(self.jobs.values())
            finished = [r for r in records if r.finished_mono is not None]
            computed = [r for r in finished
                        if r.ok and not r.cached]
            cached = sum(1 for r in finished if r.cached)
            failed = sum(1 for r in finished
                         if r.ok is False and not r.requeued)
            running = [r for r in records if r.running]
            walls = [r.wall_s for r in computed if r.wall_s > 0]
            mean_wall = (math.fsum(walls) / len(walls)) if walls else 0.0
            busy = sum(1 for s in self._workers.values()
                       if s.busy_key is not None and not s.stalled)
            active = max(busy,
                         sum(1 for s in self._workers.values()
                             if s.slot > 0 and not s.stalled), 1)
            total = max(self.total_expected, len(records))
            remaining = max(0, total - len(finished))
            eta_s = (remaining * mean_wall / active) if walls else None
            end = self.finished_mono or now
            elapsed = max(end - self.started_mono, 1e-9)
            violations = sum(sum(r.violations.values()) for r in records)
            workers = [{
                "slot": s.slot, "pid": s.pid, "jobs_done": s.jobs_done,
                "wall_s": s.wall_s,
                "state": ("stalled" if s.stalled else
                          "busy" if s.busy_key else "idle"),
                "busy_tag": (self.jobs[s.busy_key].tag
                             if s.busy_key in self.jobs else None),
                "idle_s": max(0.0, now - s.last_seen_mono),
            } for s in sorted(self._workers.values(),
                              key=lambda s: s.slot)]
            stragglers = sorted(
                ({"tag": r.tag, "key": r.key[:12], "worker": r.worker,
                  "running_s": now - (r.started_mono or now)}
                 for r in running),
                key=lambda row: -row["running_s"])[:8]
            return {
                "elapsed_s": elapsed,
                "total": total,
                "done": len(finished),
                "computed": len(computed),
                "cached": cached,
                "failed": failed,
                "running": len(running),
                "jobs_per_s": len(finished) / elapsed,
                "cache_hit_rate": (cached / len(finished)
                                   if finished else 0.0),
                "mean_wall_s": mean_wall,
                "eta_s": eta_s,
                "violations": violations,
                "stall_bound_s": self.stall_bound(),
                "stalls": [s.as_dict() for s in self.stalls],
                "workers": workers,
                "stragglers": stragglers,
                "events_received": self.events_received,
                "finished": self.finished_mono is not None,
            }

    def _publish_snapshot(self, force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last_published < 0.2:
            return
        self._last_published = now
        if self.broker.closed:
            return
        self.broker.publish("fleet", json.dumps(self.snapshot()))

    # --- report -----------------------------------------------------------

    def report(self) -> FleetReport:
        """The sweep-level rollup (call after the run has quiesced)."""
        with self._lock:
            records = list(self.jobs.values())
            finished = [r for r in records if r.finished_mono is not None]
            computed = sum(1 for r in finished if r.ok and not r.cached)
            cached = sum(1 for r in finished if r.cached)
            failed = sum(1 for r in finished if r.ok is False)
            serial = sum(1 for r in records if r.serial)
            requeued = sum(1 for r in records if r.requeued)
            end = self.finished_mono or self._clock()
            wall = max(end - self.started_mono, 1e-9)
            violations: dict[str, int] = {}
            for record in records:
                for kind, count in record.violations.items():
                    violations[kind] = violations.get(kind, 0) + count
            workers = tuple({
                "slot": s.slot, "pid": s.pid,
                "jobs_done": s.jobs_done, "wall_s": s.wall_s,
                "stalled": s.stalled,
            } for s in sorted(self._workers.values(),
                              key=lambda s: s.slot))
            return FleetReport(
                total=max(self.total_expected, len(records)),
                computed=computed, cached=cached, failed=failed,
                serial=serial, requeued=requeued, wall_s=wall,
                jobs_per_s=len(finished) / wall,
                cache_hit_rate=(cached / len(finished)
                                if finished else 0.0),
                violations=violations,
                stalls=tuple(self.stalls),
                workers=workers,
                spans_merged=sum(len(r.spans) for r in records),
                events_received=self.events_received,
            )

    # --- merged Perfetto trace --------------------------------------------

    def fleet_events(self) -> list[Event]:
        """The merged fleet timeline as obs events (ts/dur in us).

        A sweep lane carries scheduling annotations — submit instants,
        queue-wait spans, cache hits, requeues, and ``fleet.stall``
        markers — and each worker slot's track carries its job spans
        with the job's simulation spans rebased proportionally onto the
        wall-clock interval. Stalled jobs are flagged (``STALLED`` name
        prefix + ``args.stalled``) so the freeze is visible in Perfetto.
        """
        with self._lock:
            records = [self.jobs[key] for key in self._job_order]
            end_mono = self.finished_mono or self._clock()
        t0 = self.started_mono

        def us(mono: float) -> float:
            return max(0.0, (mono - t0) * 1e6)

        events: list[Event] = []
        for record in records:
            label = record.tag or record.key[:12]
            base_args = {"key": record.key[:12], "tag": record.tag}
            if record.submitted_mono is not None:
                events.append(Event(
                    ts=us(record.submitted_mono), name="job.submitted",
                    track=TRACK_FLEET, ph=PH_INSTANT, args=base_args))
                queued_until = record.started_mono or record.finished_mono
                if queued_until is not None and \
                        queued_until > record.submitted_mono:
                    events.append(Event(
                        ts=us(record.submitted_mono),
                        name=f"queued {label}", track=TRACK_FLEET,
                        ph=PH_SPAN,
                        dur=us(queued_until) - us(record.submitted_mono),
                        args=base_args))
            if record.cached:
                events.append(Event(
                    ts=us(record.finished_mono or record.submitted_mono
                          or t0),
                    name="cache.hit", track=TRACK_FLEET, ph=PH_INSTANT,
                    args=base_args))
                continue
            if record.requeued:
                events.append(Event(
                    ts=us(record.finished_mono or end_mono),
                    name="job.requeued", track=TRACK_FLEET,
                    ph=PH_INSTANT, args=base_args))
            if record.started_mono is None:
                continue
            slot = record.worker if record.worker is not None else 0
            start_us = us(record.started_mono)
            end_us = us(record.finished_mono
                        or record.last_seen_mono or end_mono)
            job_args: dict[str, Any] = dict(base_args)
            job_args.update({
                "wall_s": record.wall_s, "serial": record.serial,
                "ok": record.ok,
            })
            if record.error:
                job_args["error"] = record.error
            if record.violations:
                job_args["violations"] = dict(record.violations)
            name = label
            if record.stalled:
                name = f"STALLED {label}"
                job_args["stalled"] = True
                stall = next((s for s in self.stalls
                              if s.key == record.key), None)
                if stall is not None:
                    job_args["diagnosis"] = stall.diagnosis
                events.append(Event(
                    ts=us(record.last_seen_mono or record.started_mono),
                    name="fleet.stall", track=TRACK_FLEET, ph=PH_INSTANT,
                    args=base_args))
            events.append(Event(
                ts=start_us, name=name, track=worker_track(slot),
                ph=PH_SPAN, dur=max(end_us - start_us, 0.0),
                args=job_args))
            # Rebase the job's simulation spans (cycles within the run)
            # proportionally onto its wall-clock slice so they nest
            # under the job span in the viewer.
            if record.spans and record.duration_cycles > 0:
                scale = (end_us - start_us) / record.duration_cycles
                for span in record.spans:
                    if span.get("ph") != PH_SPAN:
                        continue
                    args = dict(span.get("args") or {})
                    args["fleet.job"] = label
                    args["fleet.track"] = span.get("track", "")
                    events.append(Event(
                        ts=start_us + float(span.get("ts", 0.0)) * scale,
                        name=str(span.get("name", "span")),
                        track=worker_track(slot), ph=PH_SPAN,
                        dur=float(span.get("dur", 0.0)) * scale,
                        args=args))
        return events

    def chrome_trace(self, label: str | None = None) -> dict[str, Any]:
        """The merged fleet Perfetto/Chrome-trace JSON object."""
        from repro.obs.export import chrome_trace as export_chrome_trace

        return export_chrome_trace(self.fleet_events(),
                                   frequency_hz=FLEET_TRACE_HZ,
                                   label=label)

    def write_chrome_trace(self, path, label: str | None = None) -> Path:
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(label=label), handle)
        return path


__all__ = [
    "FLEET_TRACE_HZ", "FleetConfig", "FleetCollector", "FleetReport",
    "FleetStall", "JobRecord", "fleet_worker_init", "fleet_timed_call",
]
