"""Stdlib HTTP servers for live observability.

All three servers share one lifecycle base,
:class:`ObservabilityServer`: a ``ThreadingHTTPServer`` run in a daemon
thread with ``start()``/``stop()``, an ephemeral port via ``port=0``,
and a cooperative ``stopping`` flag the SSE streams poll.

A :class:`TelemetryServer` (``repro watch``) serves, off one bound
:class:`~repro.obs.telemetry.TelemetrySampler`:

* ``/`` — the self-contained HTML dashboard shell,
* ``/panels`` — the server-rendered SVG panel fragment the page polls,
* ``/data.json`` — the retained columnar snapshot as JSON,
* ``/metrics`` — Prometheus text exposition (latest sample),
* ``/events`` — Server-Sent-Events feed of samples and anomalies.

A :class:`FleetServer` (``repro sweep --watch``) serves the same shape
off a :class:`~repro.obs.fleet.FleetCollector`: ``/`` (fleet dashboard
shell), ``/panels`` (worker/straggler tables), ``/fleet.json`` (the raw
snapshot), and ``/events`` (SSE feed of fleet snapshots and
``fleet.stall`` diagnoses).

A :class:`DiffServer` (``repro diff --serve``) serves a finished
:class:`~repro.obs.diff.DivergenceReport`: ``/`` (the rendered report)
and ``/report.json`` (the structured verdict).

No third-party dependency: the whole thing is ``http.server`` +
``threading``, matching the repo's stdlib-only constraint.
"""

from __future__ import annotations

import json
import logging
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.obs.dashboard import (
    render_fleet_page,
    render_fleet_panels,
    render_page,
    render_panels,
)
from repro.obs.telemetry import (
    PrometheusExporter,
    SseBroker,
    TelemetrySampler,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.diff import DivergenceReport
    from repro.obs.fleet import FleetCollector

logger = logging.getLogger("repro.obs.serve")

#: Seconds between SSE keep-alive comments when no samples flow.
_SSE_PING_S = 1.0


class ObservabilityServer(ThreadingHTTPServer):
    """Lifecycle base of the dashboard servers.

    Subclasses set :attr:`_thread_name` and :attr:`_what` (for the
    startup log line), pass their request-handler class to
    ``__init__``, and may override :meth:`_on_stop` (extra teardown
    before the HTTP shutdown) and :meth:`_extra_stopping` (additional
    stop conditions the SSE streams should honour).

    Pass ``port=0`` for an ephemeral port (read the actual one from
    :attr:`port`).
    """

    daemon_threads = True
    _thread_name = "obs-http"
    _what = "dashboard"

    def __init__(self, handler_class, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None
        super().__init__((host, port), handler_class)

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def start(self) -> None:
        self._thread = threading.Thread(target=self.serve_forever,
                                        name=self._thread_name, daemon=True)
        self._thread.start()
        logger.info("%s at %s", self._what, self.url)

    def stop(self) -> None:
        """Shut down: run subclass teardown, stop accepting, join."""
        self._stopping.set()
        self._on_stop()
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _on_stop(self) -> None:
        """Subclass hook run before the HTTP shutdown (e.g. closing an
        SSE broker so blocked streams wake up)."""

    def _extra_stopping(self) -> bool:
        """Subclass hook: additional conditions that end SSE streams."""
        return False

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set() or self._extra_stopping()


class TelemetryServer(ObservabilityServer):
    """Threaded HTTP server bound to one telemetry sampler.

    The server owns a :class:`PrometheusExporter` and an
    :class:`SseBroker`; register both on the sampler via
    :attr:`exporters` before the run starts.
    """

    _thread_name = "telemetry-http"
    _what = "telemetry dashboard"

    def __init__(self, sampler: TelemetrySampler, host: str = "127.0.0.1",
                 port: int = 0, title: str = "simulation",
                 refresh_ms: int = 1000) -> None:
        self.sampler = sampler
        self.title = title
        self.refresh_ms = refresh_ms
        self.prometheus = PrometheusExporter()
        self.sse = SseBroker()
        super().__init__(_TelemetryHandler, host=host, port=port)

    @property
    def exporters(self) -> list:
        """Exporters to register on the sampler (order is irrelevant)."""
        return [self.prometheus, self.sse]

    def _on_stop(self) -> None:
        self.sse.close()  # wake SSE subscribers before shutdown


class _BaseHandler(BaseHTTPRequestHandler):
    """Shared plumbing of the dashboard handlers (send + SSE stream)."""

    # Route BaseHTTPRequestHandler's stderr chatter through the module
    # logger, so --log-format json captures access lines too.
    def log_message(self, format: str, *args) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(payload)

    def _stream_sse(self, broker: SseBroker) -> None:
        """Stream one SSE subscription until the server stops."""
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        subscriber = broker.subscribe()
        try:
            while not self.server.stopping:
                try:
                    item = subscriber.get(timeout=_SSE_PING_S)
                except queue.Empty:
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                if item is None:  # close() sentinel
                    break
                event, payload = item
                self.wfile.write(
                    f"event: {event}\ndata: {payload}\n\n".encode("utf-8"))
                self.wfile.flush()
        finally:
            broker.unsubscribe(subscriber)


class _TelemetryHandler(_BaseHandler):
    server: TelemetryServer  # narrowed for the route handlers

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler name)
        try:
            path = self.path.split("?", 1)[0]
            if path == "/":
                self._send(200, "text/html; charset=utf-8",
                           render_page(self.server.title,
                                       self.server.refresh_ms))
            elif path == "/panels":
                self._send(200, "text/html; charset=utf-8",
                           self._render_panels())
            elif path == "/data.json":
                self._send(200, "application/json", self._render_data())
            elif path == "/metrics":
                self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                           self.server.prometheus.render())
            elif path == "/events":
                self._stream_sse(self.server.sse)
            else:
                self._send(404, "text/plain; charset=utf-8", "not found\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    def _render_panels(self) -> str:
        sampler = self.server.sampler
        if sampler.store is None:
            return ('<div id="panels"><p class="meta">sampler not bound '
                    'yet</p></div>')
        return render_panels(sampler.store.snapshot(),
                             list(sampler.anomalies))

    def _render_data(self) -> str:
        sampler = self.server.sampler
        if sampler.store is None:
            return json.dumps({"columns": [], "rows": [], "ticks": 0})
        snapshot = sampler.store.snapshot()
        return json.dumps({
            "columns": list(snapshot.columns),
            "rows": snapshot.data.tolist(),
            "stride": snapshot.stride,
            "ticks": snapshot.ticks,
            "dropped": snapshot.dropped,
            "anomalies": [a.as_dict() for a in sampler.anomalies],
        })


class FleetServer(ObservabilityServer):
    """Threaded HTTP server bound to one fleet collector.

    The ``repro sweep --watch`` counterpart of :class:`TelemetryServer`:
    same lifecycle, but rendering the collector's live fleet snapshot
    and relaying its SSE broker. The server does not own the collector —
    the sweep creates and closes it.
    """

    _thread_name = "fleet-http"
    _what = "fleet dashboard"

    def __init__(self, collector: "FleetCollector",
                 host: str = "127.0.0.1", port: int = 0,
                 title: str = "sweep", refresh_ms: int = 1000) -> None:
        self.collector = collector
        self.title = title
        self.refresh_ms = refresh_ms
        super().__init__(_FleetHandler, host=host, port=port)

    def _extra_stopping(self) -> bool:
        return self.collector.broker.closed


class _FleetHandler(_BaseHandler):
    server: FleetServer  # narrowed for the route handlers

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler name)
        try:
            path = self.path.split("?", 1)[0]
            if path == "/":
                self._send(200, "text/html; charset=utf-8",
                           render_fleet_page(self.server.title,
                                             self.server.refresh_ms))
            elif path == "/panels":
                self._send(200, "text/html; charset=utf-8",
                           render_fleet_panels(
                               self.server.collector.snapshot()))
            elif path == "/fleet.json":
                self._send(200, "application/json",
                           json.dumps(self.server.collector.snapshot()))
            elif path == "/events":
                self._stream_sse(self.server.collector.broker)
            else:
                self._send(404, "text/plain; charset=utf-8", "not found\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up


class DiffServer(ObservabilityServer):
    """Threaded HTTP server presenting one finished divergence report.

    The ``repro diff --serve`` panel: ``/`` renders the report text
    (side-by-side window causes included), ``/report.json`` the
    structured verdict. Static content — no SSE feed.
    """

    _thread_name = "diff-http"
    _what = "diff report"

    def __init__(self, report: "DivergenceReport",
                 host: str = "127.0.0.1", port: int = 0,
                 title: str = "repro diff") -> None:
        self.report = report
        self.title = title
        super().__init__(_DiffHandler, host=host, port=port)


class _DiffHandler(_BaseHandler):
    server: DiffServer  # narrowed for the route handlers

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler name)
        try:
            path = self.path.split("?", 1)[0]
            if path == "/":
                self._send(200, "text/html; charset=utf-8",
                           self._render_page())
            elif path == "/report.json":
                self._send(200, "application/json",
                           json.dumps(self.server.report.as_dict()))
            else:
                self._send(404, "text/plain; charset=utf-8", "not found\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    def _render_page(self) -> str:
        report = self.server.report
        verdict = "identical" if report.identical else "DIVERGED"
        body = (report.render()
                .replace("&", "&amp;").replace("<", "&lt;"))
        return (
            "<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>{self.server.title}</title>"
            "<style>body{font-family:monospace;margin:2em;}"
            "pre{background:#f6f6f6;padding:1em;}"
            ".diverged{color:#b00;} .identical{color:#070;}</style>"
            "</head><body>"
            f"<h1>{self.server.title} — "
            f"<span class='{verdict.lower()}'>{verdict}</span></h1>"
            f"<pre>{body}</pre>"
            f"<pre>{report.summary_line()}</pre>"
            "<p><a href='/report.json'>report.json</a></p>"
            "</body></html>")


__all__ = ["ObservabilityServer", "TelemetryServer", "FleetServer",
           "DiffServer"]
