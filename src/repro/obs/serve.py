"""Stdlib HTTP servers for live observability.

A :class:`TelemetryServer` (``repro watch``) wraps
``http.server.ThreadingHTTPServer`` in a daemon thread and serves, off
one bound :class:`~repro.obs.telemetry.TelemetrySampler`:

* ``/`` — the self-contained HTML dashboard shell,
* ``/panels`` — the server-rendered SVG panel fragment the page polls,
* ``/data.json`` — the retained columnar snapshot as JSON,
* ``/metrics`` — Prometheus text exposition (latest sample),
* ``/events`` — Server-Sent-Events feed of samples and anomalies.

A :class:`FleetServer` (``repro sweep --watch``) serves the same shape
off a :class:`~repro.obs.fleet.FleetCollector`: ``/`` (fleet dashboard
shell), ``/panels`` (worker/straggler tables), ``/fleet.json`` (the raw
snapshot), and ``/events`` (SSE feed of fleet snapshots and
``fleet.stall`` diagnoses).

No third-party dependency: the whole thing is ``http.server`` +
``threading``, matching the repo's stdlib-only constraint.
"""

from __future__ import annotations

import json
import logging
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.obs.dashboard import (
    render_fleet_page,
    render_fleet_panels,
    render_page,
    render_panels,
)
from repro.obs.telemetry import (
    PrometheusExporter,
    SseBroker,
    TelemetrySampler,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.fleet import FleetCollector

logger = logging.getLogger("repro.obs.serve")

#: Seconds between SSE keep-alive comments when no samples flow.
_SSE_PING_S = 1.0


class TelemetryServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one telemetry sampler.

    Pass ``port=0`` for an ephemeral port (read the actual one from
    :attr:`port`). The server owns a :class:`PrometheusExporter` and an
    :class:`SseBroker`; register both on the sampler via
    :attr:`exporters` before the run starts.
    """

    daemon_threads = True

    def __init__(self, sampler: TelemetrySampler, host: str = "127.0.0.1",
                 port: int = 0, title: str = "simulation",
                 refresh_ms: int = 1000) -> None:
        self.sampler = sampler
        self.title = title
        self.refresh_ms = refresh_ms
        self.prometheus = PrometheusExporter()
        self.sse = SseBroker()
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None
        super().__init__((host, port), _TelemetryHandler)

    @property
    def exporters(self) -> list:
        """Exporters to register on the sampler (order is irrelevant)."""
        return [self.prometheus, self.sse]

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def start(self) -> None:
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="telemetry-http", daemon=True)
        self._thread.start()
        logger.info("telemetry dashboard at %s", self.url)

    def stop(self) -> None:
        """Shut down: wake SSE subscribers, stop accepting, join."""
        self._stopping.set()
        self.sse.close()
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()


class _BaseHandler(BaseHTTPRequestHandler):
    """Shared plumbing of the dashboard handlers (send + SSE stream)."""

    # Route BaseHTTPRequestHandler's stderr chatter through the module
    # logger, so --log-format json captures access lines too.
    def log_message(self, format: str, *args) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(payload)

    def _stream_sse(self, broker: SseBroker) -> None:
        """Stream one SSE subscription until the server stops."""
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        subscriber = broker.subscribe()
        try:
            while not self.server.stopping:
                try:
                    item = subscriber.get(timeout=_SSE_PING_S)
                except queue.Empty:
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                if item is None:  # close() sentinel
                    break
                event, payload = item
                self.wfile.write(
                    f"event: {event}\ndata: {payload}\n\n".encode("utf-8"))
                self.wfile.flush()
        finally:
            broker.unsubscribe(subscriber)


class _TelemetryHandler(_BaseHandler):
    server: TelemetryServer  # narrowed for the route handlers

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler name)
        try:
            path = self.path.split("?", 1)[0]
            if path == "/":
                self._send(200, "text/html; charset=utf-8",
                           render_page(self.server.title,
                                       self.server.refresh_ms))
            elif path == "/panels":
                self._send(200, "text/html; charset=utf-8",
                           self._render_panels())
            elif path == "/data.json":
                self._send(200, "application/json", self._render_data())
            elif path == "/metrics":
                self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                           self.server.prometheus.render())
            elif path == "/events":
                self._stream_sse(self.server.sse)
            else:
                self._send(404, "text/plain; charset=utf-8", "not found\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    def _render_panels(self) -> str:
        sampler = self.server.sampler
        if sampler.store is None:
            return ('<div id="panels"><p class="meta">sampler not bound '
                    'yet</p></div>')
        return render_panels(sampler.store.snapshot(),
                             list(sampler.anomalies))

    def _render_data(self) -> str:
        sampler = self.server.sampler
        if sampler.store is None:
            return json.dumps({"columns": [], "rows": [], "ticks": 0})
        snapshot = sampler.store.snapshot()
        return json.dumps({
            "columns": list(snapshot.columns),
            "rows": snapshot.data.tolist(),
            "stride": snapshot.stride,
            "ticks": snapshot.ticks,
            "dropped": snapshot.dropped,
            "anomalies": [a.as_dict() for a in sampler.anomalies],
        })


class FleetServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one fleet collector.

    The ``repro sweep --watch`` counterpart of :class:`TelemetryServer`:
    same lifecycle (``start()``/``stop()``, ephemeral port via
    ``port=0``), but rendering the collector's live fleet snapshot and
    relaying its SSE broker. The server does not own the collector — the
    sweep creates and closes it.
    """

    daemon_threads = True

    def __init__(self, collector: "FleetCollector",
                 host: str = "127.0.0.1", port: int = 0,
                 title: str = "sweep", refresh_ms: int = 1000) -> None:
        self.collector = collector
        self.title = title
        self.refresh_ms = refresh_ms
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None
        super().__init__((host, port), _FleetHandler)

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def start(self) -> None:
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="fleet-http", daemon=True)
        self._thread.start()
        logger.info("fleet dashboard at %s", self.url)

    def stop(self) -> None:
        """Shut down: stop accepting, wake SSE streams, join."""
        self._stopping.set()
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set() or self.collector.broker.closed


class _FleetHandler(_BaseHandler):
    server: FleetServer  # narrowed for the route handlers

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler name)
        try:
            path = self.path.split("?", 1)[0]
            if path == "/":
                self._send(200, "text/html; charset=utf-8",
                           render_fleet_page(self.server.title,
                                             self.server.refresh_ms))
            elif path == "/panels":
                self._send(200, "text/html; charset=utf-8",
                           render_fleet_panels(
                               self.server.collector.snapshot()))
            elif path == "/fleet.json":
                self._send(200, "application/json",
                           json.dumps(self.server.collector.snapshot()))
            elif path == "/events":
                self._stream_sse(self.server.collector.broker)
            else:
                self._send(404, "text/plain; charset=utf-8", "not found\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up


__all__ = ["TelemetryServer", "FleetServer"]
