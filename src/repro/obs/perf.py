"""Opt-in profiling hooks around engine runs.

Set ``REPRO_PROFILE=1`` (or pass ``--profile`` to the CLI verbs /
``profile=True`` to :func:`repro.simulate`) and every engine run is
wrapped in :mod:`cProfile`. The folded top-N cumulative hot paths are
attached to the run's :class:`~repro.sim.results.SimulationResult`
(``result.profile``), flow into bench JSON records, and can be appended
to the Perfetto export as a dedicated ``profile`` track
(:func:`profile_events`).

Profiling is strictly opt-in: when off, the only cost is one boolean
check per :func:`repro.simulate` call. The folded entries are plain
dicts (``func``/``ncalls``/``tot_s``/``cum_s``) so they pickle through
the executor's worker processes and serialise to JSON unchanged.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from typing import Any, Callable, TypeVar

from repro import units
from repro.obs.events import PH_SPAN, TRACK_PROFILE, Event

T = TypeVar("T")

#: Environment variable that switches profiling on globally.
PROFILE_ENV = "REPRO_PROFILE"

#: How many hot paths a folded profile keeps by default.
DEFAULT_TOP_N = 20


def profiling_enabled(override: bool | None = None) -> bool:
    """Whether engine runs should be profiled.

    ``override`` (a CLI/API flag) wins when not ``None``; otherwise the
    :data:`PROFILE_ENV` environment variable decides — which is how the
    setting reaches executor worker processes.
    """
    if override is not None:
        return override
    return os.environ.get(PROFILE_ENV, "").lower() not in (
        "", "0", "no", "false")


def fold_profile(profiler: cProfile.Profile,
                 top_n: int = DEFAULT_TOP_N) -> list[dict[str, Any]]:
    """The top-N cumulative hot paths of a finished profiler, as dicts.

    Each entry: ``func`` (``file:line:name``, stdlib paths shortened),
    ``ncalls`` (primitive calls), ``tot_s`` (self time), ``cum_s``
    (cumulative time). Sorted by ``cum_s`` descending.
    """
    stats = pstats.Stats(profiler)
    entries: list[dict[str, Any]] = []
    for (filename, line, name), (cc, _nc, tt, ct, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        entries.append({
            "func": _pretty_func(filename, line, name),
            "ncalls": int(cc),
            "tot_s": float(tt),
            "cum_s": float(ct),
        })
    entries.sort(key=lambda e: (-e["cum_s"], e["func"]))
    return entries[:top_n]


def _pretty_func(filename: str, line: int, name: str) -> str:
    if filename == "~":  # builtins
        return name
    parts = filename.replace(os.sep, "/").split("/")
    # Shorten to the package-relative tail: .../repro/sim/fluid.py.
    for anchor in ("repro", "benchmarks", "site-packages"):
        if anchor in parts[:-1]:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-2:]
    return f"{'/'.join(parts)}:{line}:{name}"


def run_profiled(fn: Callable[[], T],
                 top_n: int = DEFAULT_TOP_N) -> tuple[T, list[dict[str, Any]]]:
    """Run ``fn`` under cProfile; returns ``(result, hot_paths)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    return result, fold_profile(profiler, top_n=top_n)


def merge_profiles(profiles: list[list[dict[str, Any]]],
                   top_n: int = DEFAULT_TOP_N) -> list[dict[str, Any]]:
    """Fold several runs' hot-path lists into one, summed by function.

    Used by the bench layer: one bench executes many simulate() calls
    (possibly in worker processes); the record carries one merged view.
    """
    merged: dict[str, dict[str, Any]] = {}
    for entries in profiles:
        for entry in entries:
            slot = merged.setdefault(entry["func"], {
                "func": entry["func"], "ncalls": 0,
                "tot_s": 0.0, "cum_s": 0.0})
            slot["ncalls"] += int(entry.get("ncalls", 0))
            slot["tot_s"] += float(entry.get("tot_s", 0.0))
            slot["cum_s"] += float(entry.get("cum_s", 0.0))
    out = sorted(merged.values(), key=lambda e: (-e["cum_s"], e["func"]))
    return out[:top_n]


def profile_events(hot_paths: list[dict[str, Any]],
                   frequency_hz: float = units.RDRAM_FREQUENCY_HZ,
                   t0_cycles: float = 0.0) -> list[Event]:
    """Hot paths as span events on the ``profile`` track.

    The spans are laid end to end in hot-path order, each as wide as its
    cumulative time (converted to memory cycles so the exporter's single
    clock applies) — a folded flame summary, not a timeline. ``args``
    carries the real numbers for the Perfetto detail pane.
    """
    events: list[Event] = []
    cursor = t0_cycles
    for entry in hot_paths:
        cum_s = float(entry.get("cum_s", 0.0))
        dur_cycles = max(cum_s, 0.0) * frequency_hz
        events.append(Event(
            ts=cursor, name=str(entry.get("func", "?")),
            track=TRACK_PROFILE, ph=PH_SPAN, dur=dur_cycles,
            args={"ncalls": entry.get("ncalls", 0),
                  "tot_s": entry.get("tot_s", 0.0),
                  "cum_s": cum_s}))
        cursor += dur_cycles
    return events


__all__ = [
    "PROFILE_ENV", "DEFAULT_TOP_N", "profiling_enabled", "fold_profile",
    "run_profiled", "merge_profiles", "profile_events",
]
