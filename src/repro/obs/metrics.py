"""A lightweight metrics registry and its serialisable report.

Three instrument kinds, deliberately minimal (no labels, no time
windows — a simulation run is one window):

* :class:`Counter` — a monotonically increasing count.
* :class:`Gauge` — a last-write-wins value.
* :class:`Histogram` — raw-sample distribution with exact percentiles
  (simulation-scale cardinalities make reservoir tricks unnecessary).

A :class:`MetricsRegistry` hands instruments out by name and snapshots
into a :class:`MetricsReport` — a plain-data object that is attached to
:class:`~repro.sim.results.SimulationResult`, pickles cheaply (the
cache stores it), and renders to text for the ``repro stats`` CLI verb.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins sampled value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Raw-sample distribution with exact quantiles."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: list[float] = []

    def record(self, value: float) -> None:
        self._values.append(value)

    def record_many(self, values: list[float]) -> None:
        """Append a batch of samples (the summary is order-insensitive,
        so batched recording is equivalent to repeated :meth:`record`)."""
        self._values.extend(values)

    @property
    def count(self) -> int:
        return len(self._values)

    def summary(self) -> "HistogramSummary":
        return HistogramSummary.from_values(self._values)


@dataclass(frozen=True)
class HistogramSummary:
    """The distribution digest stored on a :class:`MetricsReport`."""

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0
    mean: float = 0.0
    p50: float = 0.0
    p90: float = 0.0
    p99: float = 0.0

    @classmethod
    def from_values(cls, values: list[float]) -> "HistogramSummary":
        if not values:
            return cls()
        ordered = sorted(values)
        total = math.fsum(ordered)
        return cls(
            count=len(ordered), total=total,
            min=ordered[0], max=ordered[-1],
            mean=total / len(ordered),
            p50=percentile(ordered, 0.50),
            p90=percentile(ordered, 0.90),
            p99=percentile(ordered, 0.99),
        )


def percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted list."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


class MetricsRegistry:
    """Named instruments for one run (or one executor invocation)."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            instrument = self._histograms[name] = Histogram()
            return instrument

    def report(self,
               chip_residency: dict[int, dict[str, float]] | None = None,
               transitions: dict[str, int] | None = None) -> "MetricsReport":
        """Snapshot every instrument into a plain-data report."""
        return MetricsReport(
            counters={k: c.value for k, c in sorted(self._counters.items())},
            gauges={k: g.value for k, g in sorted(self._gauges.items())},
            histograms={k: h.summary()
                        for k, h in sorted(self._histograms.items())},
            chip_residency=chip_residency or {},
            transitions=transitions or {},
        )


@dataclass
class MetricsReport:
    """Everything one run (or executor batch) measured about itself.

    Attributes:
        counters: name -> value.
        gauges: name -> last value.
        histograms: name -> distribution digest.
        chip_residency: ``chip_id -> {bucket: cycles}`` — the per-chip
            time breakdown (the Figure 2(b) buckets: serving_dma,
            serving_proc, idle_dma, idle_threshold, transition,
            low_power, migration).
        transitions: ``"from->to" -> count`` power-state transitions
            over all chips.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSummary] = field(default_factory=dict)
    chip_residency: dict[int, dict[str, float]] = field(default_factory=dict)
    transitions: dict[str, int] = field(default_factory=dict)

    def residency_shares(self, chip_id: int) -> dict[str, float]:
        """One chip's residency as fractions of its recorded time."""
        buckets = self.chip_residency.get(chip_id, {})
        total = sum(buckets.values())
        if total <= 0:
            return {k: 0.0 for k in buckets}
        return {k: v / total for k, v in buckets.items()}

    def merge_counters(self, other: dict[str, float]) -> None:
        """Fold external counters (e.g. cache stats) into this report."""
        for name, value in other.items():
            self.counters[name] = self.counters.get(name, 0.0) + value


def render_metrics(report: MetricsReport, title: str | None = None) -> str:
    """A human-readable multi-section dump of a report."""
    lines: list[str] = []
    if title:
        lines.append(title)
    if report.counters:
        lines.append("counters:")
        for name, value in report.counters.items():
            lines.append(f"  {name:<32} {value:g}")
    if report.gauges:
        lines.append("gauges:")
        for name, value in report.gauges.items():
            lines.append(f"  {name:<32} {value:g}")
    if report.histograms:
        lines.append("histograms:")
        for name, digest in report.histograms.items():
            if digest.count == 0:
                lines.append(f"  {name:<32} (empty)")
                continue
            lines.append(
                f"  {name:<32} n={digest.count} mean={digest.mean:.3g} "
                f"p50={digest.p50:.3g} p90={digest.p90:.3g} "
                f"p99={digest.p99:.3g} max={digest.max:.3g}")
    if report.transitions:
        lines.append("power transitions:")
        for edge, count in sorted(report.transitions.items()):
            lines.append(f"  {edge:<32} {count}")
    if report.chip_residency:
        lines.append("per-chip state residency (share of recorded time):")
        buckets = ("serving_dma", "serving_proc", "idle_dma",
                   "idle_threshold", "transition", "low_power", "migration")
        header = "  chip " + " ".join(f"{b[:9]:>9}" for b in buckets)
        lines.append(header)
        for chip_id in sorted(report.chip_residency):
            shares = report.residency_shares(chip_id)
            row = " ".join(f"{shares.get(b, 0.0) * 100:8.1f}%"
                           for b in buckets)
            lines.append(f"  {chip_id:>4} {row}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


__all__ = [
    "Counter", "Gauge", "Histogram", "HistogramSummary", "percentile",
    "MetricsRegistry", "MetricsReport", "render_metrics",
]
