"""The structured trace-event protocol.

One simulation run emits a stream of :class:`Event` records. The schema
deliberately mirrors the Chrome trace-event format (and therefore
Perfetto), so exporting is a near-identity mapping:

* ``ph`` is the Chrome *phase*: ``"X"`` for a complete span (has a
  duration), ``"i"`` for an instant, ``"C"`` for a counter sample.
* ``track`` names the timeline row the event belongs to — ``"chip:3"``,
  ``"bus:0"``, ``"controller"``, ``"sim"`` — and becomes the Chrome
  thread of the event.
* ``ts``/``dur`` are in **memory cycles**; the exporter converts to
  microseconds using the platform clock.
* ``args`` carries structured details (power-state bucket, batch size,
  slack amounts, ...) and surfaces in the Perfetto UI's detail pane.

Producers never build dicts in hot paths: an :class:`Event` is one slot
object, and every instrumentation site is guarded so that a disabled
tracer costs a single ``is None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Chrome trace-event phases used by this protocol.
PH_SPAN = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"

PHASES = (PH_SPAN, PH_INSTANT, PH_COUNTER)

#: Well-known track names (chips and buses append ":<id>").
TRACK_CHIP = "chip"
TRACK_BUS = "bus"
TRACK_CONTROLLER = "controller"
TRACK_SIM = "sim"
TRACK_PROFILE = "profile"
TRACK_AUDIT = "audit"
#: Fleet (cross-process sweep) tracks: the scheduling lane and one row
#: per pool worker (slot 0 is the parent's serial fallback path).
TRACK_FLEET = "fleet"
TRACK_WORKER = "worker"


@dataclass(slots=True)
class Event:
    """One structured trace event.

    Attributes:
        ts: event time in memory cycles.
        name: short event name (``"active"``, ``"ta.release"``, ...).
        track: timeline row (``"chip:0"``, ``"bus:1"``, ``"controller"``,
            ``"sim"``).
        ph: Chrome phase — span/instant/counter.
        dur: span duration in cycles (spans only).
        args: structured detail payload, or ``None``.
    """

    ts: float
    name: str
    track: str
    ph: str = PH_INSTANT
    dur: float = 0.0
    args: Mapping[str, Any] | None = None

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view (the JSONL sink's line payload)."""
        out: dict[str, Any] = {
            "ts": self.ts, "name": self.name,
            "track": self.track, "ph": self.ph,
        }
        if self.ph == PH_SPAN:
            out["dur"] = self.dur
        if self.args:
            out["args"] = dict(self.args)
        return out


def chip_track(chip_id: int) -> str:
    """The track name of one memory chip."""
    return f"{TRACK_CHIP}:{chip_id}"


def bus_track(bus_id: int) -> str:
    """The track name of one I/O bus."""
    return f"{TRACK_BUS}:{bus_id}"


def worker_track(slot: int) -> str:
    """The track name of one fleet worker slot (0 = serial fallback)."""
    return f"{TRACK_WORKER}:{slot}"
