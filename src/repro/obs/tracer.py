"""Tracers: where the event stream goes.

A tracer is a sink for :class:`~repro.obs.events.Event` records plus the
``span``/``instant``/``counter`` convenience constructors. Three sinks:

* :class:`NullTracer` — drops everything; ``enabled`` is False, so
  instrumentation sites skip event construction entirely. Passing it (or
  ``None``) to :func:`repro.simulate` costs one pointer comparison per
  instrumentation site — the "zero overhead when disabled" contract.
* :class:`RingTracer` — keeps the last ``capacity`` events in memory
  (unbounded by default). The exporter's usual source.
* :class:`JsonlTracer` — streams one JSON object per line to a file,
  for runs too big to hold in memory. Context-manager closeable.

Engines normalise their argument with :func:`active_tracer`, so internal
instrumentation only ever sees a live tracer or ``None``.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, IO, Iterable, Mapping

from repro.obs.events import PH_COUNTER, PH_INSTANT, PH_SPAN, Event


class Tracer:
    """Base tracer: builds events and hands them to :meth:`emit`."""

    #: Whether this tracer records anything. Instrumentation sites (via
    #: :func:`active_tracer`) skip all work when this is False.
    enabled: bool = True

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    # --- convenience constructors --------------------------------------

    def span(self, ts: float, dur: float, name: str, track: str,
             args: Mapping[str, Any] | None = None) -> None:
        """Record a complete span (``ph="X"``)."""
        self.emit(Event(ts=ts, name=name, track=track, ph=PH_SPAN,
                        dur=dur, args=args))

    def instant(self, ts: float, name: str, track: str,
                args: Mapping[str, Any] | None = None) -> None:
        """Record a point event (``ph="i"``)."""
        self.emit(Event(ts=ts, name=name, track=track, ph=PH_INSTANT,
                        args=args))

    def counter(self, ts: float, name: str, track: str,
                value: float) -> None:
        """Record a counter sample (``ph="C"``)."""
        self.emit(Event(ts=ts, name=name, track=track, ph=PH_COUNTER,
                        args={"value": value}))

    # --- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Flush and release resources (no-op for in-memory sinks)."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTracer(Tracer):
    """The do-nothing sink; safe to share (it holds no state)."""

    enabled = False

    def emit(self, event: Event) -> None:
        pass

    def span(self, *args, **kwargs) -> None:  # avoid Event construction
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass


#: Shared stateless null sink.
NULL_TRACER = NullTracer()


class RingTracer(Tracer):
    """In-memory sink keeping (up to) the most recent ``capacity`` events.

    Attributes:
        capacity: maximum retained events; ``None`` = unbounded.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._emitted = 0

    def emit(self, event: Event) -> None:
        self._events.append(event)
        self._emitted += 1

    @property
    def events(self) -> list[Event]:
        """The retained events, oldest first."""
        return list(self._events)

    @property
    def emitted(self) -> int:
        """Total events seen (retained + dropped)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by the capacity bound."""
        return self._emitted - len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._emitted = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)


class JsonlTracer(Tracer):
    """Streams events as JSON lines to ``path`` (or an open handle)."""

    def __init__(self, path: str | Path | IO[str]) -> None:
        if hasattr(path, "write"):
            self._handle: IO[str] = path  # type: ignore[assignment]
            self._owns_handle = False
            self.path = None
        else:
            self.path = Path(path)
            self._handle = self.path.open("w", encoding="utf-8")
            self._owns_handle = True
        self.emitted = 0

    def emit(self, event: Event) -> None:
        json.dump(event.as_dict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()


def read_jsonl_events(path: str | Path) -> list[Event]:
    """Load a :class:`JsonlTracer` file back into :class:`Event` objects."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            events.append(Event(
                ts=float(raw["ts"]), name=raw["name"], track=raw["track"],
                ph=raw.get("ph", PH_INSTANT), dur=float(raw.get("dur", 0.0)),
                args=raw.get("args")))
    return events


def active_tracer(tracer: Tracer | None) -> Tracer | None:
    """Normalise a tracer argument for instrumentation.

    Returns ``None`` for ``None`` or any disabled tracer, so hot paths
    can guard with a single ``is not None`` check.
    """
    if tracer is None or not getattr(tracer, "enabled", True):
        return None
    return tracer


def events_of(tracer: Tracer | None) -> list[Event]:
    """The in-memory events of ``tracer`` ([] for non-ring sinks)."""
    if isinstance(tracer, RingTracer):
        return tracer.events
    return []


__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "RingTracer", "JsonlTracer",
    "active_tracer", "events_of", "read_jsonl_events",
]
