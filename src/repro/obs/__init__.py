"""repro.obs — structured tracing, metrics, and trace export.

The observability layer of the simulator:

* **events + tracers** (:mod:`repro.obs.events`,
  :mod:`repro.obs.tracer`) — a structured trace-event protocol with a
  null sink (zero overhead when disabled), an in-memory ring, and a
  JSONL stream. Pass a tracer to :func:`repro.simulate` and the engines
  emit per-chip power-state residency spans, DMA-TA gather/release
  batches, slack-account charges, PL page-migration batches, and
  per-epoch progress counters.
* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and
  histograms snapshotted into the :class:`MetricsReport` attached to
  every :class:`~repro.sim.results.SimulationResult`.
* **export** (:mod:`repro.obs.export`) — Chrome-trace/Perfetto JSON
  (``repro trace --out trace.json``; load it at https://ui.perfetto.dev)
  and plain-text summaries (``repro stats``).
* **perf** (:mod:`repro.obs.perf`) — opt-in cProfile hooks around
  engine runs (``REPRO_PROFILE=1`` / ``--profile``): folded hot paths on
  every :class:`~repro.sim.results.SimulationResult` and an extra
  ``profile`` track in the Perfetto export.
* **audit** (:mod:`repro.obs.audit`) — an online :class:`Auditor` sink
  that maintains per-transfer latency waterfalls, an
  energy-conservation ledger cross-checked against
  :class:`~repro.energy.accounting.EnergyBreakdown`, and a live replay
  of the DMA-TA slack-guarantee machinery (``repro audit``).
* **telemetry** (:mod:`repro.obs.telemetry`) — a live per-epoch sampler
  (``simulate(..., telemetry=...)``) filling a bounded columnar store
  with residency/power/slack/migration/bus time series, streaming
  JSONL / Prometheus / SSE exporters, and online anomaly detectors;
  :mod:`repro.obs.serve` + :mod:`repro.obs.dashboard` put an HTTP
  dashboard on top (``repro watch``). Telemetry-enabled runs stay
  bit-identical in energy.
* **diff** (:mod:`repro.obs.diff`) — differential observability:
  per-epoch rolling state-digest chains (``simulate(..., digests=...)``,
  bit-identity preserving like telemetry), first-divergence bisection
  between two runs with field-level attribution and window causes
  (``repro diff``), and the machinery behind ``repro bench explain``.
* **fleet** (:mod:`repro.obs.fleet`) — cross-process observability for
  :func:`repro.exec.run_many` fan-outs: pool workers stream
  started/heartbeat/finished events, ring-buffered trace spans, and
  audit rollups to a parent-side :class:`FleetCollector`, whose
  heartbeat watchdog requeues stalled jobs onto the serial path and
  whose outputs are a merged fleet Perfetto trace, a sweep-level
  :class:`FleetReport`, and the live ``repro sweep --watch`` dashboard.

See ``docs/OBSERVABILITY.md`` for the event schema and a Perfetto
walkthrough.
"""

from repro.obs.audit import (
    AuditReport,
    AuditViolation,
    Auditor,
    audit_events,
    audit_result,
    audit_summary,
    write_audit_report,
)
from repro.obs.events import (
    PH_COUNTER,
    PH_INSTANT,
    PH_SPAN,
    TRACK_AUDIT,
    TRACK_BUS,
    TRACK_CHIP,
    TRACK_CONTROLLER,
    TRACK_FLEET,
    TRACK_PROFILE,
    TRACK_SIM,
    TRACK_WORKER,
    Event,
    bus_track,
    chip_track,
    worker_track,
)
from repro.obs.fleet import (
    FleetCollector,
    FleetConfig,
    FleetReport,
    FleetStall,
)
from repro.obs.perf import (
    PROFILE_ENV,
    fold_profile,
    merge_profiles,
    profile_events,
    profiling_enabled,
    run_profiled,
)
from repro.obs.diff import (
    DigestConfig,
    DigestRecorder,
    DigestStore,
    DigestTrail,
    DivergenceReport,
    SimRunSpec,
    diff_runs,
    diff_specs,
    first_divergent_bracket,
    read_trail,
    render_result_delta,
    result_delta,
    write_trail,
)
from repro.obs.export import (
    RESIDENCY_BUCKETS,
    chrome_trace,
    diff_chrome_trace,
    residency_from_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    MetricsReport,
    render_metrics,
)
from repro.obs.telemetry import (
    CusumDetector,
    JsonlExporter,
    PendingDriftDetector,
    PrometheusExporter,
    SseBroker,
    TelemetryAnomaly,
    TelemetryConfig,
    TelemetrySampler,
    TelemetrySnapshot,
    TelemetryStore,
)
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RingTracer,
    Tracer,
    active_tracer,
    events_of,
    read_jsonl_events,
)

__all__ = [
    # events
    "Event", "PH_SPAN", "PH_INSTANT", "PH_COUNTER",
    "TRACK_CHIP", "TRACK_BUS", "TRACK_CONTROLLER", "TRACK_SIM",
    "TRACK_PROFILE", "TRACK_AUDIT", "TRACK_FLEET", "TRACK_WORKER",
    "chip_track", "bus_track", "worker_track",
    # fleet (cross-process sweep observability; repro.obs.serve's
    # FleetServer stays lazy alongside the telemetry dashboard)
    "FleetCollector", "FleetConfig", "FleetReport", "FleetStall",
    # audit
    "Auditor", "AuditReport", "AuditViolation", "audit_events",
    "audit_result", "audit_summary", "write_audit_report",
    # perf
    "PROFILE_ENV", "profiling_enabled", "run_profiled", "fold_profile",
    "merge_profiles", "profile_events",
    # tracers
    "Tracer", "NullTracer", "NULL_TRACER", "RingTracer", "JsonlTracer",
    "active_tracer", "events_of", "read_jsonl_events",
    # metrics
    "Counter", "Gauge", "Histogram", "HistogramSummary",
    "MetricsRegistry", "MetricsReport", "render_metrics",
    # export
    "chrome_trace", "diff_chrome_trace", "write_chrome_trace",
    "validate_chrome_trace", "residency_from_events",
    "RESIDENCY_BUCKETS",
    # diff (differential observability)
    "DigestConfig", "DigestRecorder", "DigestStore", "DigestTrail",
    "DivergenceReport", "SimRunSpec", "diff_runs", "diff_specs",
    "first_divergent_bracket", "read_trail", "write_trail",
    "result_delta", "render_result_delta",
    # telemetry (repro.obs.serve/.dashboard stay lazy: they pull in the
    # bench report's SVG machinery, which repro watch alone needs)
    "TelemetrySampler", "TelemetryConfig", "TelemetryStore",
    "TelemetrySnapshot", "TelemetryAnomaly", "CusumDetector",
    "PendingDriftDetector", "JsonlExporter", "PrometheusExporter",
    "SseBroker",
]
