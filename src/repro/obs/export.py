"""Exporters: Chrome trace-event / Perfetto JSON and text summaries.

:func:`chrome_trace` maps a run's event stream onto the Chrome
trace-event JSON format (the JSON Perfetto, ``chrome://tracing``, and
``ui.perfetto.dev`` all load): one *thread* (track row) per memory chip,
one per I/O bus, plus controller and simulator rows, with power-state
residency spans as complete ("X") slices and policy decisions as
instants. Timestamps convert from memory cycles to microseconds using
the platform clock.

:func:`validate_chrome_trace` checks an exported object against the
format's structural rules — the CI smoke test runs it on the artifact it
uploads, so a malformed trace fails the build rather than failing
silently in the viewer.

:func:`residency_from_events` folds the span stream back into per-chip
time-bucket totals; the test suite uses it to assert the exported trace
agrees with the run's :class:`~repro.obs.metrics.MetricsReport` (the
acceptance criterion of the observability PR).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro import units
from repro.obs.events import (
    PH_COUNTER,
    PH_INSTANT,
    PH_SPAN,
    PHASES,
    TRACK_AUDIT,
    TRACK_BUS,
    TRACK_CHIP,
    TRACK_FLEET,
    TRACK_PROFILE,
    TRACK_WORKER,
    Event,
)

#: Process ids of the exported track groups.
_PID_MEMORY = 1
_PID_IO = 2
_PID_POLICY = 3
_PID_PROFILE = 4
_PID_AUDIT = 5
_PID_FLEET = 6

#: The time buckets a residency span may claim (TimeBreakdown fields).
RESIDENCY_BUCKETS = ("serving_dma", "serving_proc", "idle_dma",
                     "idle_threshold", "transition", "low_power",
                     "migration")


def _track_key(track: str) -> tuple[int, int, str]:
    """Deterministic (pid, tid-order, label) for a track name."""
    kind, _, index = track.partition(":")
    if kind == TRACK_CHIP and index.isdigit():
        return (_PID_MEMORY, int(index), f"chip {index}")
    if kind == TRACK_BUS and index.isdigit():
        return (_PID_IO, int(index), f"bus {index}")
    if kind == TRACK_PROFILE:
        return (_PID_PROFILE, 0, "hot paths (cProfile)")
    if kind == TRACK_AUDIT:
        rank = int(index) if index.isdigit() else 0
        return (_PID_AUDIT, rank, f"waterfall #{rank}" if index else "audit")
    if kind == TRACK_FLEET:
        return (_PID_FLEET, 0, "sweep lane")
    if kind == TRACK_WORKER and index.isdigit():
        slot = int(index)
        label = "serial (parent)" if slot == 0 else f"worker {slot}"
        return (_PID_FLEET, slot + 1, label)
    return (_PID_POLICY, 0, track)


def chrome_trace(events: Iterable[Event],
                 frequency_hz: float = units.RDRAM_FREQUENCY_HZ,
                 label: str | None = None) -> dict[str, Any]:
    """Convert an event stream to a Chrome trace-event JSON object.

    Args:
        events: the run's events (any order; the format is order-free).
        frequency_hz: memory clock used to convert cycles to
            microseconds.
        label: optional run label stored in ``otherData``.

    Returns:
        A JSON-serialisable dict with ``traceEvents`` (spans, instants,
        counters, and the thread/process metadata naming every track)
        and ``displayTimeUnit: "ms"``.
    """
    scale = 1e6 / frequency_hz  # cycles -> microseconds
    trace_events: list[dict[str, Any]] = []
    tracks: dict[str, tuple[int, int, str]] = {}

    def tid_of(track: str) -> tuple[int, int]:
        try:
            pid, order, _ = tracks[track]
        except KeyError:
            pid, order, label_ = _track_key(track)
            tracks[track] = (pid, order, label_)
        else:
            return pid, order
        return pid, order

    for event in events:
        pid, tid = tid_of(event.track)
        out: dict[str, Any] = {
            "name": event.name,
            "ph": event.ph,
            "ts": event.ts * scale,
            "pid": pid,
            "tid": tid,
        }
        if event.ph == PH_SPAN:
            out["dur"] = event.dur * scale
        if event.ph == PH_INSTANT:
            out["s"] = "t"  # instant scope: thread
        if event.args:
            out["args"] = dict(event.args)
        trace_events.append(out)

    process_names = {_PID_MEMORY: "memory chips", _PID_IO: "I/O buses",
                     _PID_POLICY: "policies", _PID_PROFILE: "profiler",
                     _PID_AUDIT: "audit waterfalls", _PID_FLEET: "fleet"}
    for pid in sorted({pid for pid, _, _ in tracks.values()}):
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process_names.get(pid, f"group {pid}")},
        })
    for _track, (pid, tid, label_) in sorted(tracks.items()):
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": label_},
        })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "frequency_hz": frequency_hz,
            **({"label": label} if label else {}),
        },
    }


#: PID offset applied to run B's tracks in :func:`diff_chrome_trace` so
#: the two runs render as separate, vertically aligned process groups.
_DIFF_PID_OFFSET = 100


def diff_chrome_trace(events_a: Iterable[Event],
                      events_b: Iterable[Event],
                      frequency_hz: float = units.RDRAM_FREQUENCY_HZ,
                      label_a: str = "run A",
                      label_b: str = "run B") -> dict[str, Any]:
    """Merge two runs' event streams into one aligned Chrome trace.

    Run A keeps the standard track layout; run B's process ids are
    shifted by a constant offset and its process names suffixed with the
    run label, so Perfetto shows ``memory chips — run A`` directly above
    ``memory chips — run B`` on a shared time axis. This is the visual
    companion of :func:`repro.obs.diff.diff_runs`: scroll to the
    reported divergence epoch and compare the two runs' spans in place.
    """
    merged = chrome_trace(events_a, frequency_hz=frequency_hz,
                          label=f"{label_a} vs {label_b}")
    trace_b = chrome_trace(events_b, frequency_hz=frequency_hz)
    for event in merged["traceEvents"]:
        if event["ph"] == "M" and event["name"] == "process_name":
            event["args"]["name"] += f" — {label_a}"
    for event in trace_b["traceEvents"]:
        event = dict(event)
        event["pid"] += _DIFF_PID_OFFSET
        if event["ph"] == "M" and event["name"] == "process_name":
            event["args"] = {"name": f"{event['args']['name']} — {label_b}"}
        merged["traceEvents"].append(event)
    return merged


def write_chrome_trace(events: Iterable[Event], path: str | Path,
                       frequency_hz: float = units.RDRAM_FREQUENCY_HZ,
                       label: str | None = None) -> Path:
    """Export ``events`` to ``path`` as Chrome trace JSON; returns path."""
    path = Path(path)
    payload = chrome_trace(events, frequency_hz=frequency_hz, label=label)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


def validate_chrome_trace(obj: Any) -> list[str]:
    """Structural problems of a Chrome trace-event object ([] if valid).

    Checks the rules the viewers actually enforce: a ``traceEvents``
    list whose members carry ``name``/``ph``/``pid``/``tid``, numeric
    non-negative ``ts`` on timed phases, a numeric non-negative ``dur``
    on every complete ("X") event, and ``args`` dicts where present.
    """
    problems: list[str] = []
    if not isinstance(obj, Mapping):
        return ["top level is not an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, Sequence) or isinstance(events, (str, bytes)):
        return ["traceEvents is missing or not an array"]
    known_phases = set(PHASES) | {"M", "B", "E", "b", "e", "n", "s", "t", "f"}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or ph not in known_phases:
            problems.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), (int, float)):
                problems.append(f"{where}: missing {key}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == PH_SPAN:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if "args" in event and not isinstance(event["args"], Mapping):
            problems.append(f"{where}: args is not an object")
    return problems


def residency_from_events(events: Iterable[Event]) -> dict[int, dict[str, float]]:
    """Per-chip time-bucket totals (cycles) recovered from span events.

    Spans carry either a single ``bucket`` arg (idle descent, wake
    transitions) or per-bucket cycle splits (busy spans, whose duration
    divides between serving and active-idle). The result is directly
    comparable to :attr:`~repro.obs.metrics.MetricsReport.chip_residency`.
    """
    residency: dict[int, dict[str, float]] = {}
    for event in events:
        if event.ph != PH_SPAN:
            continue
        kind, _, index = event.track.partition(":")
        if kind != TRACK_CHIP or not index.isdigit():
            continue
        chip = residency.setdefault(
            int(index), {bucket: 0.0 for bucket in RESIDENCY_BUCKETS})
        args = event.args or {}
        bucket = args.get("bucket")
        if bucket in chip:
            chip[bucket] += event.dur
            continue
        # Busy span: args carry explicit per-bucket cycle splits.
        for name in RESIDENCY_BUCKETS:
            value = args.get(name)
            if isinstance(value, (int, float)):
                chip[name] += value
    return residency


__all__ = [
    "RESIDENCY_BUCKETS", "chrome_trace", "diff_chrome_trace",
    "write_chrome_trace", "validate_chrome_trace",
    "residency_from_events",
]
