"""Self-contained HTML dashboard for ``repro watch``.

Pure render functions: the panel fragment is rebuilt server-side from a
:class:`~repro.obs.telemetry.TelemetrySnapshot` on every poll, reusing
the bench report's inline-SVG sparkline machinery, so the page needs no
JS framework and no external assets — a tiny inline script swaps the
``#panels`` fragment every refresh and mirrors the SSE feed into a log.
"""

from __future__ import annotations

import html

from repro.bench.report import sparkline
from repro.obs.telemetry import TelemetryAnomaly, TelemetrySnapshot

#: (column, title, stroke) for the run-wide scalar panels, in page order.
SCALAR_PANELS = (
    ("power_w", "Total power draw (W)", "#b3261e"),
    ("slack_balance", "Slack account balance (cycles)", "#1b6e3c"),
    ("slack_pending", "Pending (buffered) transfers", "#7a5b00"),
    ("migrations", "Cumulative PL page moves", "#3f51b5"),
    ("migration_waves", "Migration waves", "#6a1b9a"),
    ("degradation_cycles", "Degradation to date (cycles)", "#b3261e"),
    ("requests", "Arrived DMA-memory requests", "#00695c"),
)

#: Max points fed to one sparkline (decimated deterministically).
MAX_POINTS = 240


def decimate(values: list[float], limit: int = MAX_POINTS) -> list[float]:
    """Every k-th point so a long series stays readable (keeps the last)."""
    if len(values) <= limit:
        return values
    step = -(-len(values) // limit)  # ceil
    sampled = values[::step]
    if sampled[-1] != values[-1]:
        sampled.append(values[-1])
    return sampled


def _panel(title: str, values: list[float], stroke: str) -> str:
    latest = f"{values[-1]:,.3g}" if values else "&mdash;"
    svg = sparkline(decimate(values), width=260, height=56, stroke=stroke)
    return (f'<div class="panel"><h3>{html.escape(title)}</h3>'
            f'<div class="latest">{latest}</div>{svg}</div>')


def low_power_share(snapshot: TelemetrySnapshot) -> list[float]:
    """Fraction of all chip-cycles to date spent in low-power modes."""
    low = [name for name in snapshot.columns
           if name.startswith("chip") and name.endswith(".low_power")]
    if not low or not len(snapshot):
        return []
    ts = snapshot.column("ts")
    total = sum(snapshot.column(name) for name in low)
    out = []
    for t, cycles in zip(ts, total):
        denom = t * len(low)
        out.append(float(cycles / denom) if denom > 0 else 0.0)
    return out


def render_panels(snapshot: TelemetrySnapshot,
                  anomalies: list[TelemetryAnomaly]) -> str:
    """The auto-refreshed ``#panels`` fragment."""
    parts = ['<div id="panels">']
    if len(snapshot):
        ts = snapshot.column("ts")
        parts.append(
            f'<p class="meta">{snapshot.ticks} samples '
            f'({len(snapshot)} retained, stride {snapshot.stride}) '
            f'&middot; sim clock {ts[-1]:,.0f} cycles</p>')
    else:
        parts.append('<p class="meta">waiting for the first sample&hellip;'
                     '</p>')
    parts.append('<div class="grid">')
    for column, title, stroke in SCALAR_PANELS:
        if column not in snapshot.columns:
            continue
        values = (list(snapshot.column(column)) if len(snapshot) else [])
        parts.append(_panel(title, values, stroke))
    parts.append(_panel("Low-power residency share",
                        low_power_share(snapshot), "#1b6e3c"))
    bus_cols = [name for name in snapshot.columns
                if name.endswith(".queue_depth")]
    for name in bus_cols:
        values = (list(snapshot.column(name)) if len(snapshot) else [])
        parts.append(_panel(f"Bus {name[3:name.index('.')]} queue depth",
                            values, "#555"))
    parts.append('</div>')
    if anomalies:
        parts.append(f'<h3 class="alarm">Anomalies ({len(anomalies)})</h3>'
                     '<ul class="anomalies">')
        for anomaly in anomalies[-20:]:
            parts.append(
                f'<li><code>{html.escape(anomaly.kind)}</code> '
                f'@ {anomaly.ts:,.0f}: {html.escape(anomaly.message)}</li>')
        parts.append('</ul>')
    parts.append('</div>')
    return "".join(parts)


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "&mdash;"
    if seconds >= 90:
        return f"{seconds / 60:.1f} min"
    return f"{seconds:.0f} s"


def render_fleet_panels(snapshot: dict) -> str:
    """The auto-refreshed ``#panels`` fragment of the fleet dashboard.

    ``snapshot`` is :meth:`~repro.obs.fleet.FleetCollector.snapshot`:
    sweep totals, throughput, per-worker rows, stragglers, and stalls.
    """
    done, total = snapshot.get("done", 0), snapshot.get("total", 0)
    finished = snapshot.get("finished", False)
    parts = ['<div id="panels">']
    state = "finished" if finished else "running"
    parts.append(
        f'<p class="meta">{state} &middot; {done}/{total} jobs &middot; '
        f'elapsed {snapshot.get("elapsed_s", 0.0):.1f}s &middot; '
        f'ETA {_fmt_eta(snapshot.get("eta_s"))} &middot; '
        f'stall bound {snapshot.get("stall_bound_s", 0.0):.0f}s</p>')
    parts.append('<div class="grid">')
    cells = (
        ("Jobs done", f"{done} / {total}"),
        ("Running", f'{snapshot.get("running", 0)}'),
        ("Jobs / s", f'{snapshot.get("jobs_per_s", 0.0):.2f}'),
        ("Cache hit rate", f'{snapshot.get("cache_hit_rate", 0.0):.0%}'),
        ("Failed", f'{snapshot.get("failed", 0)}'),
        ("Audit violations", f'{snapshot.get("violations", 0)}'),
        ("Stalls", f'{len(snapshot.get("stalls", []))}'),
    )
    for title, value in cells:
        parts.append(f'<div class="panel"><h3>{html.escape(title)}</h3>'
                     f'<div class="latest">{value}</div></div>')
    parts.append('</div>')

    workers = snapshot.get("workers", [])
    parts.append('<h3>Workers</h3><table class="fleet">'
                 '<tr><th>slot</th><th>pid</th><th>state</th>'
                 '<th>jobs done</th><th>busy (s)</th><th>current job</th>'
                 '<th>idle (s)</th></tr>')
    for row in workers:
        cls = ' class="alarm"' if row.get("state") == "stalled" else ""
        label = "serial (parent)" if row.get("slot") == 0 \
            else f'worker {row.get("slot")}'
        parts.append(
            f'<tr{cls}><td>{html.escape(label)}</td>'
            f'<td>{row.get("pid", "")}</td>'
            f'<td>{html.escape(str(row.get("state", "")))}</td>'
            f'<td>{row.get("jobs_done", 0)}</td>'
            f'<td>{row.get("wall_s", 0.0):.2f}</td>'
            f'<td>{html.escape(str(row.get("busy_tag") or ""))}</td>'
            f'<td>{row.get("idle_s", 0.0):.1f}</td></tr>')
    if not workers:
        parts.append('<tr><td colspan="7" class="meta">no workers seen '
                     'yet</td></tr>')
    parts.append('</table>')

    stragglers = snapshot.get("stragglers", [])
    if stragglers:
        parts.append('<h3>Stragglers</h3><table class="fleet">'
                     '<tr><th>job</th><th>worker</th>'
                     '<th>running (s)</th></tr>')
        for row in stragglers:
            parts.append(
                f'<tr><td>{html.escape(str(row.get("tag") or row.get("key", "")))}</td>'
                f'<td>{row.get("worker", "?")}</td>'
                f'<td>{row.get("running_s", 0.0):.1f}</td></tr>')
        parts.append('</table>')

    stalls = snapshot.get("stalls", [])
    if stalls:
        parts.append(f'<h3 class="alarm">Stalls ({len(stalls)})</h3>'
                     '<ul class="anomalies">')
        for stall in stalls[-20:]:
            parts.append(
                f'<li>{html.escape(str(stall.get("diagnosis", "")))}</li>')
        parts.append('</ul>')
    parts.append('</div>')
    return "".join(parts)


_CSS = """
body { font-family: system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; color: #1f1f1f; }
h1 { font-size: 1.3em; } h3 { font-size: .85em; margin: 0 0 .2em; }
.grid { display: flex; flex-wrap: wrap; gap: 1em; }
.panel { border: 1px solid #ddd; border-radius: .5em; padding: .7em 1em;
         min-width: 17em; }
.latest { font-size: 1.2em; font-variant-numeric: tabular-nums; }
.meta { color: #666; font-size: .8em; }
.alarm { color: #b3261e; }
.anomalies { font-size: .85em; }
.spark { vertical-align: middle; }
#log { font-family: monospace; font-size: .75em; color: #555;
       white-space: pre-wrap; max-height: 10em; overflow-y: auto; }
footer { margin-top: 3em; color: #888; font-size: .75em; }
table.fleet { border-collapse: collapse; font-size: .85em; }
table.fleet th, table.fleet td { border: 1px solid #ddd;
       padding: .25em .6em; text-align: left;
       font-variant-numeric: tabular-nums; }
"""


def render_page(title: str, refresh_ms: int = 1000) -> str:
    """The dashboard shell served at ``/``.

    The inline script polls ``/panels`` (server-rendered fragment) at
    ``refresh_ms`` and tails the SSE feed into a small event log; both
    degrade gracefully when the run (and its server) has ended.
    """
    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>{_CSS}</style></head>
<body>
<h1>repro watch &mdash; {html.escape(title)}</h1>
<div id="panels"><p class="meta">loading&hellip;</p></div>
<h3>Event stream</h3>
<div id="log"></div>
<footer>Endpoints: <code>/panels</code> &middot; <code>/data.json</code>
&middot; <code>/metrics</code> (Prometheus) &middot; <code>/events</code>
(SSE). See docs/OBSERVABILITY.md.</footer>
<script>
async function poll() {{
  try {{
    const response = await fetch('/panels');
    if (response.ok) {{
      document.getElementById('panels').outerHTML = await response.text();
    }}
  }} catch (err) {{ /* server gone: run finished */ }}
}}
setInterval(poll, {refresh_ms});
poll();
const log = document.getElementById('log');
try {{
  const source = new EventSource('/events');
  const append = (line) => {{
    log.textContent += line + '\\n';
    log.scrollTop = log.scrollHeight;
  }};
  source.addEventListener('anomaly', (e) => append('anomaly ' + e.data));
  source.addEventListener('sample', (e) => {{
    const row = JSON.parse(e.data);
    append('sample ts=' + row.ts.toFixed(0) + ' power=' +
           row.power_w.toFixed(2) + 'W');
  }});
}} catch (err) {{ /* no SSE: polling still works */ }}
</script>
</body></html>
"""


def render_fleet_page(title: str, refresh_ms: int = 1000) -> str:
    """The fleet dashboard shell served at ``/`` by ``sweep --watch``.

    Same shape as :func:`render_page` — a polled server-rendered
    ``#panels`` fragment plus an SSE event log — but the log tails the
    fleet feed (snapshots and ``fleet.stall`` diagnoses).
    """
    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>{_CSS}</style></head>
<body>
<h1>repro sweep &mdash; {html.escape(title)}</h1>
<div id="panels"><p class="meta">loading&hellip;</p></div>
<h3>Event stream</h3>
<div id="log"></div>
<footer>Endpoints: <code>/panels</code> &middot; <code>/fleet.json</code>
&middot; <code>/events</code> (SSE). See docs/OBSERVABILITY.md.</footer>
<script>
async function poll() {{
  try {{
    const response = await fetch('/panels');
    if (response.ok) {{
      document.getElementById('panels').outerHTML = await response.text();
    }}
  }} catch (err) {{ /* server gone: sweep finished */ }}
}}
setInterval(poll, {refresh_ms});
poll();
const log = document.getElementById('log');
try {{
  const source = new EventSource('/events');
  const append = (line) => {{
    log.textContent += line + '\\n';
    log.scrollTop = log.scrollHeight;
  }};
  source.addEventListener('stall', (e) => append('stall ' + e.data));
  source.addEventListener('fleet', (e) => {{
    const snap = JSON.parse(e.data);
    append('fleet ' + snap.done + '/' + snap.total + ' jobs, ' +
           snap.jobs_per_s.toFixed(2) + ' jobs/s');
  }});
}} catch (err) {{ /* no SSE: polling still works */ }}
</script>
</body></html>
"""


__all__ = ["SCALAR_PANELS", "MAX_POINTS", "decimate", "low_power_share",
           "render_panels", "render_page", "render_fleet_panels",
           "render_fleet_page"]
